"""Quickstart: quantize a tensor with QUQ and inspect everything.

Runs in a few seconds with no model training: fits QUQ on synthetic
long-tailed data (the distribution shape that motivates the paper),
compares it against uniform quantization, and round-trips the result
through the hardware QUB encoding.

    python examples/quickstart.py
"""

import numpy as np

from repro.quant import (
    QUQQuantizer,
    UniformQuantizer,
    decode,
    encode,
    legalize_for_hardware,
    mse,
)


def main():
    rng = np.random.default_rng(0)
    # Long-tailed data: most mass near zero, outliers far out (Figure 3a/c).
    x = rng.standard_t(df=2.5, size=50_000) * 0.1

    for bits in (4, 6, 8):
        quq = QUQQuantizer(bits).fit(x)
        uniform = UniformQuantizer(bits).fit(x)
        err_quq = mse(x, quq.fake_quantize(x))
        err_uni = mse(x, uniform.fake_quantize(x))
        print(f"[{bits}-bit] {quq.params.describe()}")
        print(
            f"         MSE: QUQ {err_quq:.3e} vs uniform {err_uni:.3e} "
            f"({err_uni / err_quq:.1f}x better)"
        )

    # Hardware path: encode to QUBs, decode to (D, n_sh), verify exactness.
    quq = QUQQuantizer(6).fit(x)
    quq.params = legalize_for_hardware(quq.params)
    quantized = quq.quantize(x)
    qubs, registers = encode(quantized)
    d, n_sh = decode(qubs, registers, bits=6)
    reconstructed = d * (2.0**n_sh) * quq.params.base_delta

    print(f"\nQUB bytes: dtype={qubs.dtype}, fine register=0b{registers.fine.pack():08b}, "
          f"coarse register=0b{registers.coarse.pack():08b}")
    exact = np.allclose(reconstructed, quantized.dequantize(), rtol=1e-6)
    print(f"decode(encode(x)) bit-exact vs dequantized reference: {exact}")


if __name__ == "__main__":
    main()
