"""Drive the QUA accelerator model: integer datapath, area/power, memory.

Demonstrates the hardware half of the paper:

1. a GEMM through the bit-exact QUB pipeline (DU -> PE array -> QU),
2. the Table-4 area/power comparison of BaseQ vs QUQ accelerators,
3. the Figure-2 peak-memory argument for full quantization.

    python examples/accelerator_simulation.py
"""

import numpy as np

from repro.hw import (
    QUA,
    AcceleratorSpec,
    build_vit_block_dataflow,
    encode_tensor,
    evaluate,
    gemm_cycles,
    peak_memory_bytes,
)
from repro.models.configs import PAPER_CONFIGS
from repro.quant import progressive_relaxation


def integer_gemm_demo():
    print("=== 1. Bit-exact integer GEMM through QUBs ===")
    rng = np.random.default_rng(0)
    x = rng.standard_t(df=4, size=(197, 384)) * 0.4  # ViT-S token activations
    w = rng.normal(size=(384, 384)) * 0.03

    ex = encode_tensor(x, bits=6)
    ew = encode_tensor(w, bits=6)
    qua = QUA(array=16)

    acc = qua.integer_gemm(ex, ew)  # pure int64 arithmetic
    result = acc * ex.base_delta * ew.base_delta
    reference = ex.to_float() @ ew.to_float()
    print(f"accumulators: dtype={acc.dtype}, range [{acc.min()}, {acc.max()}]")
    print(f"bit-exact vs dequantized float GEMM: "
          f"{np.allclose(result, reference, rtol=1e-9, atol=1e-9)}")
    print(f"cycles on 16x16 array: {gemm_cycles(197, 384, 384, 16):,}")

    out_params = progressive_relaxation(result, 6)
    encoded_out = qua.gemm_requantized(ex, ew, out_params)
    print(f"requantized output: {encoded_out.shape} QUBs, "
          f"mode {out_params.mode.value}\n")


def area_power_demo():
    print("=== 2. Accelerator area/power (Table 4 model) ===")
    for bits in (6, 8):
        for array in (16, 64):
            base = evaluate(AcceleratorSpec("baseq", bits, array))
            quq = evaluate(AcceleratorSpec("quq", bits, array))
            print(
                f"{bits}-bit {array}x{array}: BaseQ {base.area_mm2:.3f} mm^2 / "
                f"{base.power_mw:.1f} mW -> QUQ {quq.area_mm2:.3f} mm^2 / "
                f"{quq.power_mw:.1f} mW "
                f"(+{100 * (quq.area_mm2 / base.area_mm2 - 1):.1f}% area)"
            )
    base8 = evaluate(AcceleratorSpec("baseq", 8, 64))
    quq6 = evaluate(AcceleratorSpec("quq", 6, 64))
    print(
        f"headline: 6-bit QUQ vs 8-bit BaseQ at 64x64 -> "
        f"{100 * (1 - quq6.area_mm2 / base8.area_mm2):.1f}% less area, "
        f"{100 * (1 - quq6.power_mw / base8.power_mw):.1f}% less power\n"
    )


def memory_demo():
    print("=== 3. Peak on-chip memory, PQ vs FQ (Figure 2 model) ===")
    for name in ("vit_s", "vit_l"):
        for batch in (1, 8):
            flow = build_vit_block_dataflow(PAPER_CONFIGS[name], batch)
            pq, pq_op = peak_memory_bytes(flow, "pq", bits=8)
            fq, _ = peak_memory_bytes(flow, "fq", bits=8)
            print(
                f"{name} batch {batch}: PQ {pq / 1024:8.0f} KiB (peak at {pq_op}) "
                f"vs FQ {fq / 1024:8.0f} KiB  (+{100 * (pq / fq - 1):.1f}%)"
            )


if __name__ == "__main__":
    integer_gemm_demo()
    area_power_demo()
    memory_demo()
