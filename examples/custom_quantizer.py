"""Extend the library with your own quantization scheme.

The PTQ pipeline works with any object implementing the
``repro.quant.Quantizer`` protocol (``fit`` + ``fake_quantize``; add
``scaled`` to opt into the Hessian-weighted grid search).  This example
plugs a simple percentile-clipped uniform quantizer into a full-coverage
pipeline by writing the pipeline's quantizer table directly, and compares
it against BaseQ and QUQ on a trained model.

    python examples/custom_quantizer.py
"""

import numpy as np

from repro.data import calibration_set, make_splits
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.quant import PTQPipeline, Quantizer, UniformQuantizer
from repro.training import evaluate_top1


class PercentileClippedUniform(Quantizer):
    """Symmetric uniform quantization clipped at the 99.9th percentile.

    A classic outlier-robust heuristic: give up exactness on the extreme
    tail to buy resolution for the bulk.
    """

    def __init__(self, bits: int, percentile: float = 99.9):
        super().__init__(bits)
        self._inner = UniformQuantizer(bits, percentile=percentile)

    def fit(self, x: np.ndarray) -> "PercentileClippedUniform":
        self._inner.fit(x)
        self.fitted = True
        return self

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._inner.fake_quantize(x)

    def scaled(self, factor: float) -> "PercentileClippedUniform":
        clone = PercentileClippedUniform(self.bits)
        clone._inner = self._inner.scaled(factor)
        clone.fitted = True
        return clone


def evaluate_with(model, calib, val, bits, build):
    """Calibrate a full-coverage pipeline, overriding every activation
    quantizer with ``build(bits).fit(observations)``."""
    pipeline = PTQPipeline(model, method="baseq", bits=bits, coverage="full")
    # Observe first (the baseq calibration also records nothing we cannot
    # redo), then refit each activation tap with the custom scheme.
    pipeline.calibrate(calib)
    env = pipeline.env
    env.phase = "observe"
    env.watched = set(pipeline.tap_names())
    env.clear_observations()
    from repro.autograd import Tensor, no_grad

    with no_grad():
        model(Tensor(calib))
    for name in list(env.quantizers):
        if name in env.records:
            env.quantizers[name] = build(bits).fit(env.observed(name))
    env.phase = "quantize"
    env.watched = None
    env.clear_observations()
    accuracy = evaluate_top1(model, val)
    pipeline.detach()
    return accuracy


def main():
    model, fp32 = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    val = val_set.subset(384, seed=0)

    print(f"FP32: {fp32:.2f}%")
    for bits in (6, 4):
        custom = evaluate_with(model, calib, val, bits, PercentileClippedUniform)
        print(f"{bits}-bit full, percentile-clipped uniform: {custom:.2f}%")

        from repro import quantize_model

        for method in ("baseq", "quq"):
            pipeline = quantize_model(model, calib, method=method, bits=bits,
                                      coverage="full", hessian=False)
            print(f"{bits}-bit full, {method}: {evaluate_top1(model, val):.2f}%")
            pipeline.detach()


if __name__ == "__main__":
    main()
