"""Classify images with the fully integer QUA pipeline.

Every GEMM runs on int64 accumulators over decoded QUB operands; the
special functions see only decoded integers.  The script compares the
integer path against the fake-quantized (float-simulated) model — they
should agree on essentially every prediction.

    python examples/integer_inference.py
"""

import numpy as np

from repro.data import calibration_set, make_splits
from repro.hw import ModelExecutor
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.quant import PTQPipeline
from repro.training import predict_logits


def main():
    model, fp32 = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    images, labels = val_set.images[:64], val_set.labels[:64]

    pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
    pipeline.calibrate(calib)
    fake = predict_logits(model, images)
    executor = ModelExecutor(model, pipeline, bits=8)
    pipeline.detach()

    integer = executor.run(images.astype(np.float64))
    agreement = np.mean(fake.argmax(-1) == integer.argmax(-1))
    print(f"FP32 top-1 (full val): {fp32:.2f}%")
    print(f"fake-quant top-1 (64 images): {100 * np.mean(fake.argmax(-1) == labels):.1f}%")
    print(f"integer-path top-1 (64 images): {100 * np.mean(integer.argmax(-1) == labels):.1f}%")
    print(f"argmax agreement fake vs integer: {agreement:.3f}")


if __name__ == "__main__":
    main()
