"""Figure 7 workflow: attention maps under quantization, in the terminal.

Loads the trained mini ViT-S, quantizes it fully at a sweep of bit-widths
with uniform quantization and QUQ, and renders attention-rollout heatmaps
plus fidelity metrics against the FP32 model.

    python examples/attention_visualization.py
"""

from repro.analysis import (
    ascii_heatmap,
    crucial_region_energy,
    rollout_correlation,
    rollout_for_images,
)
from repro import quantize_model
from repro.data import calibration_set, make_splits
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC


def main():
    model, _ = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    images = val_set.images[:8]

    reference = rollout_for_images(model, images)
    print("FP32 attention rollout (image 0):")
    print(ascii_heatmap(reference[0]))

    for bits in (8, 4):
        for method in ("baseq", "quq"):
            pipeline = quantize_model(model, calib, method=method, bits=bits,
                                      coverage="full")
            rollout = rollout_for_images(model, images)
            pipeline.detach()
            corr = rollout_correlation(reference, rollout)
            energy = crucial_region_energy(reference, rollout, quantile=0.9)
            print(f"\n{method} {bits}-bit: corr={corr:.3f} "
                  f"crucial-region energy={energy:.3f}")
            print(ascii_heatmap(rollout[0]))


if __name__ == "__main__":
    main()
