"""Fully quantize a trained vision transformer, the paper's Table 3 workflow.

Trains (or loads from cache) the mini ViT-S stand-in, calibrates QUQ and
the uniform baseline on 32 training images, applies the Hessian-weighted
grid search, and compares Top-1 accuracy at several bit-widths under
*full* quantization — every activation in the dataflow, not just GEMM
operands.

First run trains the model (~2-3 minutes on one core); later runs load
the cached checkpoint.

    python examples/full_model_quantization.py
"""

from repro import quantize_model
from repro.data import calibration_set, make_splits
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.training import evaluate_top1


def main():
    model, fp32_top1 = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)  # the paper's calibration budget
    val = val_set.subset(512, seed=0)

    print(f"\nFP32 Top-1: {fp32_top1:.2f}%\n")
    print(f"{'method':>8s} {'bits':>4s} {'Top-1':>8s}")
    for bits in (8, 6, 4):
        for method in ("baseq", "quq"):
            pipeline = quantize_model(
                model, calib, method=method, bits=bits, coverage="full"
            )
            accuracy = evaluate_top1(model, val)
            pipeline.detach()
            print(f"{method:>8s} {bits:>4d} {accuracy:>7.2f}%")
    print(
        "\nExpected shape (paper Table 3): QUQ tracks FP32 longest as the "
        "bit-width shrinks, while uniform quantization degrades first."
    )


if __name__ == "__main__":
    main()
