"""Numeric guardrails: never serve NaN/Inf/saturated logits.

Aggressive low-bit configs — the regime QUQ's quadruplet design exists to
tame — fail *numerically* before they fail loudly: a blown scale factor
turns one batch's logits into NaN/Inf or values saturated far beyond any
real logit, and ``argmax`` happily returns a label anyway.  The guard
scans every batch before results are completed; a failed scan makes the
engine fail over to the float path, and if that is bad too the batch is
failed with :class:`NumericGuardError` — counted, never served.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GuardVerdict", "NumericGuard", "NumericGuardError"]


class NumericGuardError(RuntimeError):
    """A batch's logits failed the numeric guard and were not served."""


@dataclass(frozen=True)
class GuardVerdict:
    """Scan outcome: element counts per failure class plus a summary."""

    nan: int
    inf: int
    saturated: int

    @property
    def ok(self) -> bool:
        return self.nan == 0 and self.inf == 0 and self.saturated == 0

    @property
    def reason(self) -> str:
        if self.ok:
            return "ok"
        parts = [
            f"{count} {label}"
            for label, count in (
                ("NaN", self.nan), ("Inf", self.inf), ("saturated", self.saturated)
            )
            if count
        ]
        return f"logits failed numeric guard: {', '.join(parts)} element(s)"


class NumericGuard:
    """Scans logit batches for NaN, Inf, and saturation past ``limit``."""

    def __init__(self, saturation_limit: float = 1e6):
        if saturation_limit <= 0:
            raise ValueError(f"saturation_limit must be > 0, got {saturation_limit}")
        self.saturation_limit = saturation_limit

    def scan(self, logits: np.ndarray) -> GuardVerdict:
        values = np.asarray(logits)
        nan = int(np.isnan(values).sum())
        inf = int(np.isinf(values).sum())
        finite = values[np.isfinite(values)] if nan or inf else values
        saturated = int((np.abs(finite) > self.saturation_limit).sum())
        return GuardVerdict(nan=nan, inf=inf, saturated=saturated)
