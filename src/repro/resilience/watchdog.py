"""Worker watchdog: detect stalled serving lanes via heartbeats.

Each lane's worker beats the watchdog on every scheduling loop and at the
start of every batch; a lane that is busy (a batch in flight) but whose
last beat is older than ``stall_after_s`` is *stalled* — its worker is
wedged inside batch execution.  The engine's ``check_watchdog`` restarts
such a lane by spawning a replacement worker thread (the wedged one is a
daemon and completes or dies on its own), so the lane keeps serving.

Clock-injected: stall detection is a pure function of the beat table and
``now``, so tests drive it with a fake clock.
"""

from __future__ import annotations

import threading
import time

__all__ = ["WorkerWatchdog"]


class WorkerWatchdog:
    """Heartbeat table with a staleness threshold."""

    def __init__(self, stall_after_s: float = 5.0, clock=time.monotonic):
        if stall_after_s <= 0:
            raise ValueError(f"stall_after_s must be > 0, got {stall_after_s}")
        self.stall_after_s = stall_after_s
        self.clock = clock
        self._lock = threading.Lock()
        self._beats: dict[str, float] = {}

    def beat(self, name: str, now: float | None = None) -> None:
        """Record liveness for ``name`` (a lane spec)."""
        with self._lock:
            self._beats[name] = self.clock() if now is None else now

    # A restart resets the staleness baseline; semantically identical to a
    # beat, kept separate so call sites read as what they mean.
    reset = beat

    def last_beat(self, name: str) -> float | None:
        with self._lock:
            return self._beats.get(name)

    def stalled(self, name: str, now: float | None = None) -> bool:
        """Has ``name`` gone ``stall_after_s`` without a beat?

        Never-seen names are not stalled — a lane registers by beating.
        """
        with self._lock:
            beat = self._beats.get(name)
            if beat is None:
                return False
            now = self.clock() if now is None else now
            return now - beat >= self.stall_after_s

    def snapshot(self, now: float | None = None) -> dict:
        with self._lock:
            beats = dict(self._beats)
        now = self.clock() if now is None else now
        return {
            "stall_after_s": self.stall_after_s,
            "ages_s": {name: round(now - beat, 4) for name, beat in beats.items()},
        }
