"""Bounded retry with exponential backoff for transient failures.

Built for the registry's model/artifact loads, where the survey-reported
failure mode is transient (a loader hiccup, a file mid-write): retry a
bounded number of times with exponential backoff, then re-raise.  The
sleep function is injected so tests assert the exact backoff schedule
without waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """``attempts`` tries total; sleep ``backoff_s * multiplier**n`` between."""

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    sleep: object = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_s < 0 or self.max_backoff_s < 0 or self.multiplier < 1:
            raise ValueError("backoff_s/max_backoff_s must be >= 0, multiplier >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based failure count)."""
        return min(self.backoff_s * self.multiplier**attempt, self.max_backoff_s)

    def call(self, fn, on_retry=None):
        """Run ``fn`` under the policy; ``on_retry(error, attempt, delay)``
        is invoked before each backoff sleep."""
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retry_on as error:
                if attempt == self.attempts - 1:
                    raise
                pause = self.delay(attempt)
                if on_retry is not None:
                    on_retry(error, attempt, pause)
                self.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover
