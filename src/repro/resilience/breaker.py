"""Per-lane circuit breaker: closed -> open -> half-open -> closed.

Protects the quantized predict path of one serving lane.  While *closed*,
batches run through the quantized artifact; after ``failure_threshold``
consecutive failures the breaker *opens* and the lane serves the float
model instead (degraded but available).  Once ``cooldown_s`` has elapsed
on the injected clock, the next :meth:`allow` admits exactly one
*half-open* probe batch back onto the quantized path: success closes the
breaker (the artifact is re-admitted), failure re-opens it and re-arms
the cooldown.

All transitions are driven by the injected clock, so the full state
machine is unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open recovery probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0  # closed/half-open -> open transitions
        self.probes = 0  # half-open batches admitted
        self.recoveries = 0  # half-open -> closed transitions

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self, now: float | None = None) -> bool:
        """May the protected (quantized) path run right now?

        In the open state this is where the cooldown expiry is noticed;
        at most one half-open probe is admitted until it reports back.
        """
        with self._lock:
            now = self.clock() if now is None else now
            if self._state == OPEN and now - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probe_in_flight = False
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self.recoveries += 1
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self, now: float | None = None) -> None:
        with self._lock:
            now = self.clock() if now is None else now
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip(now)
            elif self._state == CLOSED and (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._probe_in_flight = False
        self.trips += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "probes": self.probes,
                "recoveries": self.recoveries,
            }
