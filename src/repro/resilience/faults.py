"""Deterministic fault injection for the serving + PTQ stack.

A :class:`FaultPlan` is a list of :class:`FaultSpec` windows, each keyed by
an *event index* rather than wall-clock time: every injection site (a
``(kind, site)`` pair, e.g. ``("batch_exception", "vit_mini_s/quq/4/full")``)
keeps its own monotonically increasing event counter, and a spec fires when
that counter falls inside ``[start, start + count)``.  The same plan
therefore injects the same faults in the same order on every run — the
event-count analogue of the fake-clock pattern the scheduler tests use —
and :meth:`FaultPlan.seeded` derives a reproducible plan from one seed.

Fault classes (one constant per class, ``FAULT_KINDS`` lists them all):

* ``load_error`` — the registry's model loader raises (transient; the
  retry policy is expected to absorb a bounded window).
* ``corrupt_state`` — a serialized quantizer ``.npz`` is tampered with
  in place, so the checksum verifier must reject it and recalibrate.
* ``batch_exception`` — the quantized predict path raises mid-batch
  (drives the per-lane circuit breaker).
* ``numeric`` — batch logits are polluted with NaN/Inf/saturated values
  (drives the numeric guardrail).
* ``stall`` — the lane's worker blocks inside batch execution (drives
  the watchdog; bounded by ``stall_s`` real seconds or an explicit
  :meth:`FaultPlan.release_stalls`).
* ``queue_spike`` — the load source bursts extra submissions on one
  arrival (drives bounded-queue backpressure).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "LOAD_ERROR",
    "CORRUPT_STATE",
    "BATCH_EXCEPTION",
    "NUMERIC",
    "STALL",
    "QUEUE_SPIKE",
    "BIT_FLIP",
    "FAULT_KINDS",
    "HW_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "tamper_quantizer_state",
]

LOAD_ERROR = "load_error"
CORRUPT_STATE = "corrupt_state"
BATCH_EXCEPTION = "batch_exception"
NUMERIC = "numeric"
STALL = "stall"
QUEUE_SPIKE = "queue_spike"

FAULT_KINDS = (LOAD_ERROR, CORRUPT_STATE, BATCH_EXCEPTION, NUMERIC, STALL, QUEUE_SPIKE)

#: Hardware (datapath) fault kinds live in their own registry so the
#: serving-layer chaos soak's default plan (``kinds=FAULT_KINDS``) is
#: unchanged, while a :class:`FaultSpec` of kind ``bit_flip`` can share a
#: plan with serving faults (``repro.hw.faults`` consumes these windows).
BIT_FLIP = "bit_flip"
HW_FAULT_KINDS = (BIT_FLIP,)
ALL_FAULT_KINDS = FAULT_KINDS + HW_FAULT_KINDS

#: Numeric pollution modes: scattered NaNs, +-Inf extremes, or finite
#: values far beyond any plausible logit magnitude (saturation/overflow).
NUMERIC_MODES = ("nan", "inf", "overflow")


class FaultInjected(RuntimeError):
    """An error raised on purpose by a :class:`FaultPlan` window."""

    def __init__(self, kind: str, site: str, index: int):
        super().__init__(f"injected {kind} fault at {site or '<any>'} (event {index})")
        self.kind = kind
        self.site = site
        self.index = index


@dataclass(frozen=True)
class FaultSpec:
    """One injection window: fire ``kind`` for events ``start .. start+count-1``.

    ``site=None`` matches every injection site of that kind; a concrete
    site string (usually a model spec) restricts the window to one lane.
    """

    kind: str
    start: int = 0
    count: int = 1
    site: str | None = None
    mode: str = "nan"  # numeric pollution mode (nan | inf | overflow)
    stall_s: float = 0.25  # self-release bound for stall faults, real seconds
    spike: int = 32  # extra submissions injected on a queue_spike event

    def __post_init__(self):
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choices: {ALL_FAULT_KINDS}"
            )
        if self.start < 0 or self.count < 1:
            raise ValueError("start must be >= 0 and count >= 1")
        if self.mode not in NUMERIC_MODES:
            raise ValueError(f"mode must be one of {NUMERIC_MODES}, got {self.mode!r}")
        if self.stall_s <= 0 or self.spike < 1:
            raise ValueError("stall_s must be > 0 and spike >= 1")


class FaultPlan:
    """Deterministic schedule of faults, drivable without any clock.

    Thread-safe: injection sites live on worker threads while tests and
    the soak harness read counters from the main thread.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = (), seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._events: dict[tuple[str, str], int] = {}
        self._injected: dict[str, int] = {kind: 0 for kind in ALL_FAULT_KINDS}
        self._stall_gate = threading.Event()

    @classmethod
    def seeded(
        cls,
        seed: int = 0,
        kinds: tuple[str, ...] = FAULT_KINDS,
        horizon: int = 48,
        max_width: int = 3,
        stall_s: float = 0.4,
        spike: int = 32,
    ) -> "FaultPlan":
        """One reproducible window per fault kind inside ``horizon`` events.

        Load errors are pinned to the first load attempts (that is the only
        part of a lane's life where they can fire) and kept narrower than a
        default retry budget so the retry policy can absorb them; state
        corruption fires on the first reload, where the checksum check sits.
        """
        rng = np.random.default_rng(seed)
        specs = []
        for kind in kinds:
            width = int(rng.integers(1, max_width + 1))
            start = int(rng.integers(0, horizon))
            if kind == LOAD_ERROR:
                start, width = 0, min(width, 2)
            elif kind == CORRUPT_STATE:
                start, width = 0, 1
            specs.append(FaultSpec(
                kind,
                start=start,
                count=width,
                mode=str(rng.choice(NUMERIC_MODES)),
                stall_s=stall_s,
                spike=spike,
            ))
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------
    def _fire(self, kind: str, site: str) -> tuple[FaultSpec | None, int]:
        with self._lock:
            key = (kind, site)
            index = self._events.get(key, 0)
            self._events[key] = index + 1
            for spec in self.specs:
                if spec.kind != kind or spec.site not in (None, site):
                    continue
                if spec.start <= index < spec.start + spec.count:
                    self._injected[kind] += 1
                    return spec, index
            return None, index

    def fire(self, kind: str, site: str = "") -> FaultSpec | None:
        """Consume one event at ``(kind, site)``; return the window that fires.

        Every call advances the site's event counter, whether or not a
        spec matches — that is what makes schedules reproducible.
        """
        return self._fire(kind, site)[0]

    def advance(self, kind: str, site: str = "") -> tuple[FaultSpec | None, int]:
        """Like :meth:`fire`, but also return the event index consumed.

        Event-indexed injectors (the hardware bit-fault injector) key
        their per-event RNG streams on this index so the same plan + seed
        reproduces the same faulty bits.
        """
        return self._fire(kind, site)

    def raise_if(self, kind: str, site: str = "") -> None:
        """Consume one event and raise :class:`FaultInjected` if it fires."""
        spec, index = self._fire(kind, site)
        if spec is not None:
            raise FaultInjected(kind, site, index)

    def corrupt_logits(self, logits: np.ndarray, site: str = "") -> np.ndarray:
        """Consume one ``numeric`` event; return polluted logits if it fires."""
        spec = self.fire(NUMERIC, site)
        if spec is None:
            return logits
        polluted = np.array(logits, copy=True)
        flat = polluted.reshape(-1)
        if spec.mode == "nan":
            flat[:: max(1, flat.size // 7)] = np.nan
        elif spec.mode == "inf":
            flat[0] = np.inf
            flat[-1] = -np.inf
        else:  # overflow: finite but saturated far beyond any real logit
            flat[:] = np.sign(flat + 0.5) * 1e12
        return polluted

    def serve_stall(self, site: str = "") -> bool:
        """Consume one ``stall`` event; block the caller if it fires.

        The block is bounded: it releases after the window's ``stall_s``
        real seconds, or immediately once :meth:`release_stalls` is called
        (tests and engine shutdown use the latter).
        """
        spec = self.fire(STALL, site)
        if spec is None:
            return False
        self._stall_gate.wait(timeout=spec.stall_s)
        return True

    def release_stalls(self) -> None:
        """Unblock every current and future stall injection."""
        self._stall_gate.set()

    # ------------------------------------------------------------------
    def injected(self, kind: str) -> int:
        with self._lock:
            return self._injected[kind]

    def planned_kinds(self) -> set[str]:
        return {spec.kind for spec in self.specs}

    def snapshot(self) -> dict:
        """JSON-serializable view: events seen and faults fired per kind."""
        with self._lock:
            events: dict[str, int] = {}
            for (kind, _site), count in self._events.items():
                events[kind] = events.get(kind, 0) + count
            return {
                "seed": self.seed,
                "events": events,
                "injected": {k: v for k, v in self._injected.items() if v},
            }


def tamper_quantizer_state(path: str | Path, seed: int = 0) -> Path:
    """Corrupt a saved quantizer archive in place (still a readable npz).

    Perturbs one array payload while leaving the JSON metadata — and its
    recorded checksum — untouched, which is exactly the corruption the
    checksummed loader must reject.  Archives with no array payload are
    truncated instead (rejected as unreadable rather than by checksum).
    """
    path = Path(path)
    with np.load(path) as handle:
        payload = {name: handle[name] for name in handle.files}
    targets = sorted(name for name in payload if name.startswith("a:"))
    if not targets:
        path.write_bytes(b"tampered")
        return path
    rng = np.random.default_rng(seed)
    victim = np.array(payload[targets[0]], copy=True)
    flat = victim.reshape(-1)
    flat[int(rng.integers(0, flat.size))] += 1.0
    payload[targets[0]] = victim
    np.savez(path, **payload)
    return path
