"""Resilience for the serving + PTQ stack: inject faults, prove defenses.

Low-bit inference failures are data-dependent and intermittent, so the
only trustworthy defenses are ones you can watch absorb a *deterministic*
fault schedule.  This package provides both halves:

* :mod:`repro.resilience.faults` — :class:`FaultPlan`, a seeded,
  event-indexed fault schedule covering every layer (registry loads,
  corrupted quantizer state, per-batch exceptions, NaN/Inf/saturated
  logits, stalled workers, queue spikes).
* :mod:`repro.resilience.breaker` — per-lane circuit breaker
  (closed -> open -> half-open probe -> closed).
* :mod:`repro.resilience.retry` — bounded retry-with-backoff for
  transient loads, injectable sleep.
* :mod:`repro.resilience.guards` — numeric guardrail over batch logits.
* :mod:`repro.resilience.watchdog` — heartbeat-based stalled-lane
  detection behind the engine's worker restarts.
* :mod:`repro.resilience.soak` — the chaos soak harness
  (``python -m repro chaos-soak``), which runs the load generator
  against a fault plan and reports availability and per-class recovery.

:class:`ResiliencePolicy` bundles the tunables the serving engine wires
into those defenses (``repro.serve.engine`` accepts one).
"""

from dataclasses import dataclass

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .faults import (
    ALL_FAULT_KINDS,
    BATCH_EXCEPTION,
    BIT_FLIP,
    CORRUPT_STATE,
    FAULT_KINDS,
    HW_FAULT_KINDS,
    LOAD_ERROR,
    NUMERIC,
    QUEUE_SPIKE,
    STALL,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    tamper_quantizer_state,
)
from .guards import GuardVerdict, NumericGuard, NumericGuardError
from .retry import RetryPolicy
from .watchdog import WorkerWatchdog

__all__ = [
    "ALL_FAULT_KINDS",
    "BATCH_EXCEPTION",
    "BIT_FLIP",
    "CORRUPT_STATE",
    "FAULT_KINDS",
    "HW_FAULT_KINDS",
    "LOAD_ERROR",
    "NUMERIC",
    "QUEUE_SPIKE",
    "STALL",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "GuardVerdict",
    "NumericGuard",
    "NumericGuardError",
    "ResiliencePolicy",
    "RetryPolicy",
    "WorkerWatchdog",
    "tamper_quantizer_state",
]


@dataclass
class ResiliencePolicy:
    """Engine-level resilience tunables (one instance per ServeEngine)."""

    breaker_failures: int = 3  # consecutive quantized-path failures to trip
    breaker_cooldown_s: float = 5.0  # open -> half-open delay on the engine clock
    guard_saturation: float = 1e6  # |logit| above this is saturated/overflowed
    watchdog_stall_s: float = 5.0  # busy lane silent this long = stalled

    def __post_init__(self):
        if self.breaker_failures < 1:
            raise ValueError(f"breaker_failures must be >= 1, got {self.breaker_failures}")
        if self.breaker_cooldown_s < 0:
            raise ValueError(f"breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}")
        if self.guard_saturation <= 0 or self.watchdog_stall_s <= 0:
            raise ValueError("guard_saturation and watchdog_stall_s must be > 0")
