"""Quantization parameters for QUQ: subranges, modes, the Eq. (4) constraint.

A :class:`QUQParams` records, for each of the four subranges
``F-``, ``F+``, ``C-``, ``C+``, either ``None`` (the subrange was merged
away) or a :class:`SubrangeSpec` carrying its scale factor and the number of
encoding levels it owns.

Encoding-space accounting
-------------------------
The total code space of *b*-bit QUQ is ``2^b``.  In Mode A each subrange
owns ``2^(b-2)`` codes; every merge transfers the vacated codes to the
surviving subrange.  A negative subrange with ``L`` levels represents codes
``-L..-1``; a positive subrange with ``L`` levels represents ``0..L-1``
(zero lives in the positive space, matching Algorithm 2's use of
``2^(b-2)`` negative vs ``2^(b-2)-1`` positive steps).  The invariant
``sum(levels) == 2^b`` holds in every mode and is validated at
construction.

The Eq. (4) constraint — every scale factor is the shared base ``delta``
times an integer power of two — is also validated here, because the
integer-only dot product of Eq. (5) is only legal when it holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Subrange", "SubrangeSpec", "Mode", "QUQParams"]


class Subrange(Enum):
    """The four QUQ subranges."""

    F_NEG = "F-"
    F_POS = "F+"
    C_NEG = "C-"
    C_POS = "C+"

    @property
    def is_fine(self) -> bool:
        return self in (Subrange.F_NEG, Subrange.F_POS)

    @property
    def is_negative(self) -> bool:
        return self in (Subrange.F_NEG, Subrange.C_NEG)


class Mode(Enum):
    """QUQ operating modes (Figure 4 of the paper)."""

    A = "A"  # four subranges, no merging
    B = "B"  # one-sided data: both subranges on one side of zero
    C = "C"  # coarse subranges merged into one side
    D = "D"  # fine+coarse merged per side: piecewise-uniform fallback


@dataclass(frozen=True)
class SubrangeSpec:
    """Scale factor and encoding-space share of one subrange."""

    delta: float
    levels: int

    def __post_init__(self):
        if self.delta <= 0:
            raise ValueError(f"subrange delta must be positive, got {self.delta}")
        if self.levels < 1:
            raise ValueError(f"subrange levels must be >= 1, got {self.levels}")
        # Normalize to builtin types (NumPy scalars would otherwise leak
        # float64 promotion into the float32 fast path).
        object.__setattr__(self, "delta", float(self.delta))
        object.__setattr__(self, "levels", int(self.levels))


def _is_power_of_two_ratio(ratio: float) -> bool:
    log = np.log2(ratio)
    return bool(np.isclose(log, np.rint(log), atol=1e-6))


@dataclass(frozen=True)
class QUQParams:
    """Complete parameter set of a fitted b-bit QUQ quantizer."""

    bits: int
    f_neg: SubrangeSpec | None
    f_pos: SubrangeSpec | None
    c_neg: SubrangeSpec | None
    c_pos: SubrangeSpec | None

    def __post_init__(self):
        if self.bits < 3:
            raise ValueError(f"QUQ needs at least 3 bits, got {self.bits}")
        active = self.active()
        if not active:
            raise ValueError("QUQParams needs at least one active subrange")
        total = sum(spec.levels for _, spec in active)
        if total != 2**self.bits:
            raise ValueError(
                f"encoding space must total 2^{self.bits}={2 ** self.bits} "
                f"levels, got {total}"
            )
        half = 2 ** (self.bits - 1)
        for subrange, spec in active:
            if spec.levels > half:
                raise ValueError(
                    f"subrange {subrange.value} holds {spec.levels} levels, but "
                    f"a QUB codes at most {half} per fine/coarse space"
                )
        base = self.base_delta
        for subrange, spec in active:
            ratio = spec.delta / base
            if ratio < 1 - 1e-9 or not _is_power_of_two_ratio(ratio):
                raise ValueError(
                    f"Eq. (4) violated: {subrange.value} delta {spec.delta} is "
                    f"not a power-of-two multiple of base {base}"
                )

    # ------------------------------------------------------------------
    def spec(self, subrange: Subrange) -> SubrangeSpec | None:
        return {
            Subrange.F_NEG: self.f_neg,
            Subrange.F_POS: self.f_pos,
            Subrange.C_NEG: self.c_neg,
            Subrange.C_POS: self.c_pos,
        }[subrange]

    def active(self) -> list[tuple[Subrange, SubrangeSpec]]:
        """Active subranges in canonical order."""
        return [
            (s, spec)
            for s in (Subrange.F_NEG, Subrange.F_POS, Subrange.C_NEG, Subrange.C_POS)
            if (spec := self.spec(s)) is not None
        ]

    @property
    def base_delta(self) -> float:
        """The shared Delta of Eq. (4): the smallest active scale factor."""
        return min(spec.delta for _, spec in self.active())

    def shift(self, subrange: Subrange) -> int:
        """``log2 s`` for a subrange: its shift count in the Eq. (5) datapath."""
        spec = self.spec(subrange)
        if spec is None:
            raise ValueError(f"subrange {subrange.value} is merged")
        return int(np.rint(np.log2(spec.delta / self.base_delta)))

    @property
    def mode(self) -> Mode:
        """Classify the parameter pattern into the paper's four modes."""
        present = {s for s, _ in self.active()}
        if len(present) == 4:
            return Mode.A
        negatives = {Subrange.F_NEG, Subrange.C_NEG}
        positives = {Subrange.F_POS, Subrange.C_POS}
        if present <= negatives or present <= positives:
            return Mode.B
        if len(present) == 3:
            return Mode.C
        # Two subranges on opposite sides: fine space on one side of zero,
        # coarse space on the other (Figure 4 Mode D).
        return Mode.D

    # ------------------------------------------------------------------
    def positive_fine_bound(self) -> float:
        """Largest value representable by ``F+`` (assignment boundary)."""
        if self.f_pos is None:
            return 0.0
        return (self.f_pos.levels - 1) * self.f_pos.delta

    def negative_fine_bound(self) -> float:
        """Largest magnitude representable by ``F-`` (assignment boundary)."""
        if self.f_neg is None:
            return 0.0
        return self.f_neg.levels * self.f_neg.delta

    def max_positive(self) -> float:
        """Largest representable positive value across active subranges."""
        best = 0.0
        for spec in (self.f_pos, self.c_pos):
            if spec is not None:
                best = max(best, (spec.levels - 1) * spec.delta)
        return best

    def max_negative_magnitude(self) -> float:
        """Largest representable negative magnitude across active subranges."""
        best = 0.0
        for spec in (self.f_neg, self.c_neg):
            if spec is not None:
                best = max(best, spec.levels * spec.delta)
        return best

    def quantization_points(self) -> np.ndarray:
        """All representable values (sorted, deduplicated).

        These are the vertical lines of Figure 3.
        """
        points = [0.0]
        for subrange, spec in self.active():
            if subrange.is_negative:
                codes = np.arange(-spec.levels, 0)
            else:
                codes = np.arange(0, spec.levels)
            points.append(codes * spec.delta)
        return np.unique(np.concatenate([np.atleast_1d(p) for p in points]))

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        for subrange, spec in self.active():
            parts.append(
                f"{subrange.value}: delta={spec.delta:.3e} levels={spec.levels}"
            )
        return f"Mode {self.mode.value} ({self.bits}-bit) | " + " | ".join(parts)
