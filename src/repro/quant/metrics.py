"""Quantization-error metrics (Table 1)."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "sqnr_db", "cosine_similarity"]


def mse(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between a tensor and its quantized version."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if original.shape != quantized.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {quantized.shape}")
    return float(np.mean((original - quantized) ** 2))


def sqnr_db(original: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    signal = float(np.mean(np.asarray(original, dtype=np.float64) ** 2))
    noise = mse(original, quantized)
    if noise == 0:
        return float("inf")
    return float(10.0 * np.log10(signal / noise)) if signal > 0 else float("-inf")


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two flattened tensors."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(a @ b / denom)
