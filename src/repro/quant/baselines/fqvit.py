"""FQ-ViT-style baseline (Lin et al.).

FQ-ViT fully quantizes ViTs using row-wise (per-output-channel) weight
quantization, log2 quantization for the post-Softmax attention maps
(log-int-softmax) and affine uniform quantization elsewhere.  The paper
compares against it in Table 3 and criticizes the row-wise scheme's memory
and datapath overhead (Section 5), which
:meth:`~repro.quant.uniform.RowwiseUniformQuantizer.bits_per_element`
makes visible.
"""

from __future__ import annotations

import numpy as np

from ..base import Quantizer

__all__ = ["Log2Quantizer"]


class Log2Quantizer(Quantizer):
    """Log2 quantization for non-negative attention probabilities.

    Codes are ``clip(round(-log2(p)), 0, 2^b - 1)``; dequantization returns
    ``2^(-code)``.  Exact zeros map to the largest code (smallest
    representable probability), as in FQ-ViT's log-int-softmax.
    """

    def __init__(self, bits: int):
        super().__init__(bits)

    def fit(self, x: np.ndarray) -> "Log2Quantizer":
        if np.asarray(x).size and float(np.min(x)) < -1e-6:
            raise ValueError("Log2Quantizer requires non-negative inputs")
        self.fitted = True
        return self

    def quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        max_code = 2**self.bits - 1
        with np.errstate(divide="ignore"):
            codes = np.rint(-np.log2(np.maximum(x, 0.0)))
        codes = np.where(np.isfinite(codes), codes, max_code)
        return np.clip(codes, 0, max_code).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (2.0 ** (-codes.astype(np.float64))).astype(np.float32)

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = self.dequantize(self.quantize(x))
        # Values quantized to the deepest code represent "effectively zero".
        max_code = 2**self.bits - 1
        out = np.where(
            self.quantize(x) == max_code, np.where(x < 2.0**-max_code, 0.0, out), out
        )
        return out.astype(np.float32)
