"""BiScaled-FxP baseline (Jain et al., DAC 2019).

Two scale factors per tensor: a fine one for the bulk of the data and a
coarse one for outliers, plus an *index table* recording which elements are
outliers.  The paper reproduces this method for ViTs (Table 3) and notes
two weaknesses QUQ avoids: the index table's unpredictable overhead when
outliers are numerous, and poor handling of asymmetric distributions
(BiScaled shares one split threshold across both signs).

The split threshold is chosen by minimizing calibration MSE over a sweep
of candidate outlier fractions, which is the strongest reasonable variant
(the original picks the fraction heuristically).
"""

from __future__ import annotations

import numpy as np

from ..base import Quantizer

__all__ = ["BiScaledQuantizer"]


class BiScaledQuantizer(Quantizer):
    """Two-scale symmetric quantizer with an outlier index table."""

    #: Candidate outlier fractions swept during fit.  Capped at 1%: the
    #: scheme's premise is that outliers are *rare* (the index table stores
    #: one entry per outlier, and the paper's Section 5 criticism is
    #: precisely its "unpredictable overhead when there are numerous
    #: outliers to be indexed").  Letting the search choose dense outlier
    #: sets would turn it into a different, more expensive scheme.
    CANDIDATE_FRACTIONS = (0.001, 0.003, 0.01)

    def __init__(self, bits: int):
        super().__init__(bits)
        self.delta_bulk: float = 0.0
        self.delta_outlier: float = 0.0
        self.threshold: float = 0.0
        self._outlier_fraction: float = 0.0

    def _quantize_with(
        self, x: np.ndarray, threshold: float, delta_bulk: float, delta_outlier: float
    ) -> np.ndarray:
        low, high = -(2 ** (self.bits - 1)), 2 ** (self.bits - 1) - 1
        outlier = np.abs(x) > threshold
        bulk_codes = np.clip(np.rint(x / delta_bulk), low, high)
        outlier_codes = np.clip(np.rint(x / delta_outlier), low, high)
        return np.where(outlier, outlier_codes * delta_outlier, bulk_codes * delta_bulk)

    def fit(self, x: np.ndarray) -> "BiScaledQuantizer":
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        magnitudes = np.abs(flat)
        max_mag = float(magnitudes.max()) if flat.size else 1.0
        levels = 2 ** (self.bits - 1) - 1

        best = None
        for fraction in self.CANDIDATE_FRACTIONS:
            threshold = float(np.quantile(magnitudes, 1.0 - fraction)) if flat.size else 1.0
            if threshold <= 0:
                continue
            delta_bulk = threshold / levels
            delta_outlier = max(max_mag, threshold) / levels
            err = float(
                np.mean(
                    (self._quantize_with(flat, threshold, delta_bulk, delta_outlier) - flat)
                    ** 2
                )
            )
            if best is None or err < best[0]:
                best = (err, threshold, delta_bulk, delta_outlier, fraction)

        if best is None:  # degenerate input (all zeros)
            self.threshold, self.delta_bulk, self.delta_outlier = 0.0, 1.0, 1.0
            self._outlier_fraction = 0.0
        else:
            _, self.threshold, self.delta_bulk, self.delta_outlier, fraction = best
            self._outlier_fraction = fraction
        self.fitted = True
        return self

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        return self._quantize_with(
            x, self.threshold, self.delta_bulk, self.delta_outlier
        ).astype(np.float32)

    def scaled(self, factor: float) -> "BiScaledQuantizer":
        """Copy with both scales (and the split threshold) rescaled."""
        self._require_fitted()
        clone = BiScaledQuantizer(self.bits)
        clone.delta_bulk = self.delta_bulk * factor
        clone.delta_outlier = self.delta_outlier * factor
        clone.threshold = self.threshold * factor
        clone._outlier_fraction = self._outlier_fraction
        clone.fitted = True
        return clone

    def bits_per_element(self) -> float:
        self._require_fitted()
        # The index table stores one entry per outlier; following the
        # original's sparse-index format we charge 16 bits per entry,
        # amortized over the tensor.
        return self.bits + 16.0 * self._outlier_fraction
