"""Baseline quantization schemes the paper compares against."""

from .biscaled import BiScaledQuantizer
from .fqvit import Log2Quantizer
from .ptq4vit import TwinUniformQuantizer

__all__ = ["BiScaledQuantizer", "Log2Quantizer", "TwinUniformQuantizer"]
