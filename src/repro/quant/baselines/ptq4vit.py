"""PTQ4ViT-style baseline (Yuan et al., ECCV 2022).

PTQ4ViT introduces *twin uniform quantization* for the two problematic
activation types — post-Softmax (two magnitude regimes) and post-GELU
(asymmetric signs) — and optimizes scales with a Hessian-guided search.
The paper positions twin uniform quantization as a subset of QUQ
(Section 5): two uniform regions with a power-of-two scale relationship,
without QUQ's four-way partition or mode merging.

PTQ4ViT is a *partial* quantization method: it covers GEMM inputs only.
"""

from __future__ import annotations

import numpy as np

from ..base import Quantizer

__all__ = ["TwinUniformQuantizer"]


class TwinUniformQuantizer(Quantizer):
    """Two uniform regions sharing the code space, split at zero or by magnitude.

    ``asymmetric="sign"`` splits negative/positive (post-GELU);
    ``asymmetric="magnitude"`` splits small/large values (post-Softmax).
    The second region's scale is constrained to ``2^m`` times the first,
    mirroring PTQ4ViT's shift-friendly twin ranges.
    """

    def __init__(self, bits: int, split: str = "sign"):
        super().__init__(bits)
        if split not in ("sign", "magnitude"):
            raise ValueError(f"split must be 'sign' or 'magnitude', got {split}")
        self.split = split
        self.delta_small: float = 0.0
        self.delta_large: float = 0.0

    def fit(self, x: np.ndarray) -> "TwinUniformQuantizer":
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        half_levels = 2 ** (self.bits - 1) - 1
        if self.split == "sign":
            neg = -flat[flat < 0]
            pos = flat[flat > 0]
            small_bound = float(neg.max()) if neg.size else 1e-8
            large_bound = float(pos.max()) if pos.size else 1e-8
        else:
            magnitudes = np.abs(flat)
            small_bound = float(np.quantile(magnitudes, 0.99)) if flat.size else 1e-8
            large_bound = float(magnitudes.max()) if flat.size else 1e-8
        small_bound = max(small_bound, 1e-8)
        large_bound = max(large_bound, small_bound)

        # The large region's scale covers its bound exactly (never worse
        # than plain uniform there).  The small region's scale is
        # ``delta_large / 2^m`` — the shift-friendly relationship — with
        # ``m`` chosen by the calibration-MSE search PTQ4ViT uses for its
        # twin ranges.  ``m = 0`` degenerates to plain uniform, so the
        # fitted quantizer is never worse than the uniform baseline.
        self.delta_large = large_bound / half_levels
        best = None
        for m in range(0, 8):
            self.delta_small = self.delta_large / 2.0**m
            self.fitted = True
            err = float(np.mean((self.fake_quantize(flat) - flat) ** 2))
            if best is None or err < best[0]:
                best = (err, m)
        self.delta_small = self.delta_large / 2.0 ** best[1]
        self.fitted = True
        return self

    def scaled(self, factor: float) -> "TwinUniformQuantizer":
        """Copy with both region scales multiplied by ``factor``."""
        self._require_fitted()
        clone = TwinUniformQuantizer(self.bits, self.split)
        clone.delta_small = self.delta_small * factor
        clone.delta_large = self.delta_large * factor
        clone.fitted = True
        return clone

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        half_levels = 2 ** (self.bits - 1) - 1
        if self.split == "sign":
            small_region = x < 0
        else:
            small_region = np.abs(x) <= self.delta_small * half_levels
        small = np.clip(np.rint(x / self.delta_small), -half_levels, half_levels)
        large = np.clip(np.rint(x / self.delta_large), -half_levels, half_levels)
        out = np.where(small_region, small * self.delta_small, large * self.delta_large)
        return out.astype(np.float32)
