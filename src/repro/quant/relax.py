"""The progressive relaxation algorithm (Algorithms 1 and 2 of the paper).

Determines the four QUQ scale factors from calibration data such that

* the Eq. (4) constraint holds (every scale factor is a power-of-two
  multiple of a shared base delta), and
* the two guiding principles of Section 3.3 are traded off: the
  coarse/fine ratio should be large (principle 1, limits encoding-space
  wastage from subrange overlap) while the fine subrange covers as many
  elements as possible (principle 2).

Mode selection follows Algorithm 2's four branches: recursive relaxation of
the quantile ``q`` (Mode A retry), the two coarse-merge branches (Mode C)
and the piecewise-uniform fallback (Mode D).  One-sided tensors follow the
paper's Mode B recipe: the tensor is mirrored, the two-sided algorithm is
applied, and the mirror-side subranges are merged into their same-
granularity partners — which, as in the Mode C branch, halves the
surviving scale factor because the absorbed encoding space doubles the
resolution available over the same coverage.
"""

from __future__ import annotations

import numpy as np

from .params import QUQParams, Subrange, SubrangeSpec

__all__ = ["relax_two_scale_factors", "progressive_relaxation", "PRAConfig"]

_EPS = 1e-12


def relax_two_scale_factors(delta1: float, delta2: float) -> tuple[float, float]:
    """Algorithm 1: make ``delta2 / delta1`` an exact power of two.

    The ratio is rounded in the logarithmic domain; whichever side the
    rounding falls on, the adjusted scale factor only ever *grows*, so the
    relaxation never introduces additional clipping.
    """
    if delta1 <= 0 or delta2 <= 0:
        raise ValueError(f"scale factors must be positive, got {delta1}, {delta2}")
    log_ratio = np.log2(delta2 / delta1)
    rounded = float(np.rint(log_ratio))
    if rounded > log_ratio:
        return delta1, float(2.0**rounded * delta1)  # make delta2 larger
    return float(2.0**-rounded * delta2), delta2  # make delta1 larger


class PRAConfig:
    """Hyperparameters of Algorithm 2 (paper Section 6.1 defaults)."""

    def __init__(
        self,
        acceptable_ratio: float = 4.0,
        initial_quantile: float = 0.99,
        acceptable_quantile: float = 0.95,
        quantile_step: float = 0.01,
    ):
        if acceptable_ratio < 1.0:
            raise ValueError("acceptable_ratio must be >= 1")
        if not 0.0 < acceptable_quantile <= initial_quantile <= 1.0:
            raise ValueError(
                "need 0 < acceptable_quantile <= initial_quantile <= 1, got "
                f"{acceptable_quantile}, {initial_quantile}"
            )
        if quantile_step <= 0:
            raise ValueError("quantile_step must be positive")
        self.acceptable_ratio = acceptable_ratio
        self.initial_quantile = initial_quantile
        self.acceptable_quantile = acceptable_quantile
        self.quantile_step = quantile_step


def _positive_magnitudes(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a tensor into negative magnitudes and positive values."""
    flat = np.asarray(x, dtype=np.float64).reshape(-1)
    return -flat[flat < 0], flat[flat > 0]


def _two_sided(
    neg: np.ndarray, pos: np.ndarray, bits: int, config: PRAConfig
) -> QUQParams:
    """Algorithm 2's main body for data present on both sides of zero."""
    quarter = 2 ** (bits - 2)
    neg_steps = quarter  # codes -quarter .. -1
    pos_steps = quarter - 1  # codes 0 .. quarter-1

    q = config.initial_quantile
    while True:
        # Raw (pre-relaxation) scale factors; the branch *boundary* tests
        # below use these, because the relaxation rounds can inflate a
        # scale factor by up to ~2.6x and spuriously trigger a merge on
        # near-symmetric data.
        raw_cn = max(neg.max(), _EPS) / neg_steps
        raw_cp = max(pos.max(), _EPS) / pos_steps
        raw_fn = max(np.quantile(neg, q), _EPS) / neg_steps
        raw_fp = max(np.quantile(pos, q), _EPS) / pos_steps

        # Relaxation round 1: coarse scale factors from the extreme values.
        d_cn, d_cp = relax_two_scale_factors(raw_cn, raw_cp)
        # Relaxation round 2: fine scale factors from the q-th quantiles.
        d_fn, d_fp = relax_two_scale_factors(raw_fn, raw_fp)
        # Record cross-sign ratios, then relaxation round 3 ties the
        # positive fine and coarse factors together; the negative side is
        # reconstructed through the recorded (power-of-two) ratios.
        s_f, s_c = d_fn / d_fp, d_cn / d_cp
        d_fp, d_cp = relax_two_scale_factors(d_fp, d_cp)
        d_fn, d_cn = s_f * d_fp, s_c * d_cp  # Mode A candidate

        ratio_neg, ratio_pos = d_cn / d_fn, d_cp / d_fp
        lam = config.acceptable_ratio

        # Branch 1: both partitions waste encoding space -> relax q.
        if (
            ratio_neg < lam
            and ratio_pos < lam
            and q > config.acceptable_quantile + 1e-9
        ):
            q = q - config.quantile_step
            continue

        # Branch 2: negative partition unsuitable and its whole range small
        # enough to live at fine resolution -> Mode C.
        if ratio_neg < lam and raw_cn <= raw_fp:
            return QUQParams(
                bits,
                f_neg=SubrangeSpec(d_cn, quarter),
                f_pos=SubrangeSpec(d_fp, quarter),
                c_neg=None,
                c_pos=SubrangeSpec(d_cp / 2.0, 2 * quarter),
            )

        # Branch 3: positive partition unsuitable and its whole range small
        # enough to live at fine resolution -> Mode C.
        if ratio_pos < lam and raw_cp <= raw_fn:
            return QUQParams(
                bits,
                f_neg=SubrangeSpec(d_fn, quarter),
                f_pos=SubrangeSpec(d_cp, quarter),
                c_neg=SubrangeSpec(d_cn / 2.0, 2 * quarter),
                c_pos=None,
            )

        # Branch 4: fallback -> Mode D.  Each side degenerates to uniform
        # quantization over its own range: the fine encoding space (all
        # 2^(b-1) codes) is assigned to the positive side and the coarse
        # space to the negative side (Figure 4 Mode D), with the per-side
        # scales re-derived for the doubled level count and relaxed to a
        # power-of-two ratio.  With equal ranges this reproduces symmetric
        # uniform quantization exactly (the paper's special case
        # d_C- == d_F+).
        if ratio_neg < lam or ratio_pos < lam:
            d_neg, d_pos = relax_two_scale_factors(
                max(neg.max(), _EPS) / (2 * quarter),
                max(pos.max(), _EPS) / (2 * quarter - 1),
            )
            return QUQParams(
                bits,
                f_neg=None,
                f_pos=SubrangeSpec(d_pos, 2 * quarter),
                c_neg=SubrangeSpec(d_neg, 2 * quarter),
                c_pos=None,
            )

        # Mode A: the partition is acceptable as-is.
        return QUQParams(
            bits,
            f_neg=SubrangeSpec(d_fn, quarter),
            f_pos=SubrangeSpec(d_fp, quarter),
            c_neg=SubrangeSpec(d_cn, quarter),
            c_pos=SubrangeSpec(d_cp, quarter),
        )


def _merge_mirror(params: QUQParams, keep_positive: bool) -> QUQParams:
    """Mode B: drop the mirror side, folding its encoding space across zero.

    Absorbing the mirrored subrange doubles the survivor's level count; its
    scale factor halves so the doubled resolution covers the same range
    (the same accounting as the Mode C merge in Algorithm 2).
    """

    def fold(keep: SubrangeSpec | None, drop: SubrangeSpec | None):
        if keep is None and drop is None:
            return None
        if keep is None:
            # The surviving side lost this granularity in the two-sided
            # run (Mode C/D); re-home the mirror's levels at its scale.
            return SubrangeSpec(drop.delta, drop.levels)
        if drop is None:
            return keep
        return SubrangeSpec(keep.delta / 2.0, keep.levels + drop.levels)

    if keep_positive:
        return QUQParams(
            params.bits,
            f_neg=None,
            f_pos=fold(params.f_pos, params.f_neg),
            c_neg=None,
            c_pos=fold(params.c_pos, params.c_neg),
        )
    return QUQParams(
        params.bits,
        f_neg=fold(params.f_neg, params.f_pos),
        f_pos=None,
        c_neg=fold(params.c_neg, params.c_pos),
        c_pos=None,
    )


def _degenerate(bits: int, scale: float) -> QUQParams:
    """Parameters for an all-zero tensor: symmetric uniform, Mode D shape."""
    half = 2 ** (bits - 1)
    delta = max(scale, _EPS)
    return QUQParams(
        bits,
        f_neg=None,
        f_pos=SubrangeSpec(delta, half),
        c_neg=SubrangeSpec(delta, half),
        c_pos=None,
    )


def progressive_relaxation(
    x: np.ndarray, bits: int, config: PRAConfig | None = None
) -> QUQParams:
    """Algorithm 2: fit QUQ parameters to calibration tensor ``x``."""
    config = config or PRAConfig()
    neg, pos = _positive_magnitudes(x)

    if neg.size == 0 and pos.size == 0:
        return _degenerate(bits, 1.0)
    if neg.size == 0:
        # Non-negative tensor: mirror, solve two-sided, drop the mirror.
        params = _two_sided(pos.copy(), pos, bits, config)
        return _merge_mirror(params, keep_positive=True)
    if pos.size == 0:
        params = _two_sided(neg, neg.copy(), bits, config)
        return _merge_mirror(params, keep_positive=False)
    return _two_sided(neg, pos, bits, config)
