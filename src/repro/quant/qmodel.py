"""Post-training-quantization pipeline over a tapped model.

Reproduces the paper's experimental protocol (Section 6.1): a handful of
calibration images from the training set, per-tensor quantizer fitting at
every covered tap, then an optional Hessian-weighted grid search over the
scale factors (the "grid search similar to [PTQ4ViT]").

The ``method`` string selects the quantizer family per tap:

========  ==================================================================
baseq     symmetric uniform everywhere (the paper's BaseQ)
quq       quadruplet uniform quantization everywhere (the contribution)
biscaled  BiScaled-FxP two-scale quantization everywhere
fqvit     row-wise weights + log2 post-Softmax + affine activations
ptq4vit   twin uniform for post-Softmax/post-GELU taps, uniform elsewhere
========  ==================================================================

Coverage is orthogonal: ``partial`` quantizes only GEMM operands (green in
Figure 1), ``full`` quantizes every dataflow tap (Table 3's setting).
"""

from __future__ import annotations

import difflib
from pathlib import Path

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import Module
from .base import Quantizer
from .baselines.biscaled import BiScaledQuantizer
from .baselines.fqvit import Log2Quantizer
from .baselines.ptq4vit import TwinUniformQuantizer
from .observers import QuantEnv, TapKind, classify_tap, taps_for_coverage
from .quq import QUQQuantizer
from .relax import PRAConfig
from .uniform import AsymmetricUniformQuantizer, RowwiseUniformQuantizer, UniformQuantizer

__all__ = ["METHODS", "make_quantizer", "PTQPipeline"]

METHODS = ("baseq", "quq", "biscaled", "fqvit", "ptq4vit")


def make_quantizer(
    method: str, kind: TapKind, name: str, bits: int, pra_config: PRAConfig | None = None
) -> Quantizer:
    """Instantiate the quantizer ``method`` uses for a tap of ``kind``."""
    if method == "baseq":
        return UniformQuantizer(bits)
    if method == "quq":
        return QUQQuantizer(bits, config=pra_config)
    if method == "biscaled":
        return BiScaledQuantizer(bits)
    if method == "fqvit":
        if kind is TapKind.WEIGHT:
            # Per-output-channel scales; our Linear weights are (in, out).
            return RowwiseUniformQuantizer(bits, axis=0)
        if name.endswith(".probs"):
            return Log2Quantizer(bits)
        return AsymmetricUniformQuantizer(bits)
    if method == "ptq4vit":
        if name.endswith(".probs"):
            return TwinUniformQuantizer(bits, split="magnitude")
        if name.endswith(".fc2.input"):  # post-GELU activations
            return TwinUniformQuantizer(bits, split="sign")
        return UniformQuantizer(bits)
    raise ValueError(f"unknown method {method!r}; choices: {METHODS}")


class PTQPipeline:
    """Calibrate and apply one quantization method to a tapped model."""

    def __init__(
        self,
        model: Module,
        method: str = "quq",
        bits: int = 6,
        coverage: str = "full",
        pra_config: PRAConfig | None = None,
    ):
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; choices: {METHODS}")
        if coverage not in ("partial", "full"):
            raise ValueError(f"coverage must be 'partial' or 'full', got {coverage!r}")
        self.model = model
        self.method = method
        self.bits = bits
        self.coverage = coverage
        self.pra_config = pra_config
        self.env = QuantEnv()
        self.calibrated = False

    # ------------------------------------------------------------------
    def _discover_taps(self, sample: np.ndarray) -> list[str]:
        """Run one forward pass to enumerate tap names, then filter."""
        self.env.phase = "off"
        self.env.seen_taps.clear()
        self.model.set_tap_dispatcher(self.env)
        self.model.eval()
        with no_grad():
            self.model(Tensor(sample[:1]))
        covered = [
            name
            for name in sorted(self.env.seen_taps)
            if taps_for_coverage(classify_tap(name), self.coverage)
        ]
        return covered

    def calibrate(self, calib_images: np.ndarray, batch_size: int = 32) -> "PTQPipeline":
        """Fit one quantizer per covered tap from calibration activations.

        Idempotent: recalibrating replaces every previously fitted
        quantizer and drops all stale observations, so the pipeline ends
        up exactly as if this were the first call.
        """
        self.calibrated = False
        self.env.quantizers = {}
        self.env.clear_observations()
        covered = self._discover_taps(calib_images)
        weight_taps = [n for n in covered if classify_tap(n) is TapKind.WEIGHT]
        activation_taps = [n for n in covered if classify_tap(n) is not TapKind.WEIGHT]

        # Observe activations over the calibration set.
        self.env.phase = "observe"
        self.env.watched = set(activation_taps)
        self.env.clear_observations()
        with no_grad():
            for start in range(0, len(calib_images), batch_size):
                self.model(Tensor(calib_images[start : start + batch_size]))

        quantizers: dict[str, Quantizer] = {}
        for name in activation_taps:
            data = self.env.observed(name)
            quantizer = make_quantizer(
                self.method, classify_tap(name), name, self.bits, self.pra_config
            )
            quantizers[name] = quantizer.fit(data)

        # Weights are quantized directly (no observation needed) — the tap
        # passes the parameter tensor itself.
        parameters = dict(self.model.named_parameters())
        for name in weight_taps:
            param_name = name.split(".", 1)[1] if "." in name else name
            data = parameters[param_name].data
            quantizer = make_quantizer(
                self.method, TapKind.WEIGHT, name, self.bits, self.pra_config
            )
            quantizers[name] = quantizer.fit(data)

        self.env.quantizers = quantizers
        self.env.phase = "quantize"
        self.env.watched = None
        self.env.clear_observations()
        self.env.invalidate_weight_cache()
        self.calibrated = True
        self.warm_weight_cache()
        return self

    # ------------------------------------------------------------------
    def quantizer_for(self, name: str) -> Quantizer:
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before querying quantizers")
        try:
            return self.env.quantizers[name]
        except KeyError:
            near = difflib.get_close_matches(name, self.env.quantizers, n=3, cutoff=0.3)
            hint = f"; nearest taps: {near}" if near else ""
            raise KeyError(
                f"no quantizer fitted for tap {name!r} "
                f"({len(self.env.quantizers)} taps covered){hint}"
            ) from None

    def tap_names(self) -> list[str]:
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before querying taps")
        return sorted(self.env.quantizers)

    def warm_weight_cache(self) -> int:
        """Pre-compute the fake-quantized array for every weight tap.

        Weight quantizers are fitted on the parameter tensors themselves
        and those tensors never change between calibrations, so the
        quantize-dequantize round trip is hoisted out of the per-batch
        forward pass: each weight tap replays its cached array until a
        recalibration, a :meth:`load_quantizers`, a quantizer refit, or a
        weight update invalidates it.  Returns the number of weight taps
        cached.  Idempotent and cheap when the cache is already warm.
        """
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before warm_weight_cache()")
        parameters = dict(self.model.named_parameters())
        count = 0
        for name, quantizer in self.env.quantizers.items():
            if classify_tap(name) is not TapKind.WEIGHT:
                continue
            param_name = name.split(".", 1)[1] if "." in name else name
            param = parameters.get(param_name)
            if param is None:
                continue  # tap without a live parameter (defensive)
            self.env.cached_fake_weight(name, quantizer, param.data)
            count += 1
        return count

    def weight_cache_info(self) -> dict:
        """Cache statistics (hits/misses/entries) for observability."""
        return self.env.weight_cache_info()

    def detach(self) -> None:
        """Restore the model to its float behaviour."""
        self.env.phase = "off"
        self.model.set_tap_dispatcher(None)

    def attach(self) -> None:
        """(Re-)enable fake quantization on the model."""
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before attach()")
        self.model.set_tap_dispatcher(self.env)
        self.env.phase = "quantize"

    # ------------------------------------------------------------------
    def save_quantizers(self, path: str | Path) -> Path:
        """Persist the fitted quantizer state (``.npz`` + JSON metadata).

        The archive records the pipeline's method/bits/coverage alongside
        every tap's quantizer parameters; :meth:`load_quantizers` restores
        it bit-exactly without re-running calibration.
        """
        from .serialize import save_quantizer_states

        if not self.calibrated:
            raise RuntimeError("calibrate() must run before save_quantizers()")
        header = {"method": self.method, "bits": self.bits, "coverage": self.coverage}
        return save_quantizer_states(self.env.quantizers, path, header=header)

    def load_quantizers(
        self, path: str | Path, *, require_checksum: bool = False
    ) -> "PTQPipeline":
        """Warm-start from :meth:`save_quantizers` output (skips calibration).

        Validates that the archive was produced by a pipeline with the
        same method/bits/coverage, installs the quantizers, and leaves the
        model running with fake quantization attached — the same end state
        as :meth:`calibrate`.  ``require_checksum=True`` additionally
        rejects pre-checksum archives (see ``load_quantizer_states``).
        """
        from .serialize import load_quantizer_states

        header, quantizers = load_quantizer_states(
            path, require_checksum=require_checksum
        )
        for field in ("method", "bits", "coverage"):
            expected, found = getattr(self, field), header.get(field)
            if found != expected:
                raise ValueError(
                    f"quantizer state at {path} was fitted with "
                    f"{field}={found!r}, but this pipeline uses {expected!r}"
                )
        self.env.quantizers = quantizers
        self.env.clear_observations()
        self.env.watched = None
        self.env.phase = "quantize"
        self.env.invalidate_weight_cache()
        self.model.set_tap_dispatcher(self.env)
        self.calibrated = True
        self.warm_weight_cache()
        return self

    # ------------------------------------------------------------------
    def average_bits_per_element(self) -> float:
        """Mean storage cost across fitted quantizers (memory accounting)."""
        if not self.calibrated:
            raise RuntimeError("calibrate() must run first")
        costs = [q.bits_per_element() for q in self.env.quantizers.values()]
        return float(np.mean(costs)) if costs else float(self.bits)
