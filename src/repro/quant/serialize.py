"""Fitted-quantizer serialization for warm-starting the PTQ pipeline.

Calibration is the expensive step of the PTQ protocol (forward passes over
the calibration set plus the progressive relaxation / MSE searches per
tap).  The fitted result, however, is tiny: a handful of scale factors per
tensor.  This module captures that state so a pipeline can be restored
without re-running calibration — the mechanism behind the serve registry's
warm starts (:mod:`repro.serve.registry`).

Format: one ``.npz`` holding a JSON metadata record (method/bits/coverage
plus each tap's quantizer class and scalar parameters) and one array entry
per array-valued parameter (e.g. row-wise deltas).  Scalars ride in the
JSON — Python's float repr round-trips bit-exactly — so a reloaded
quantizer's ``quantize()``/``fake_quantize()`` outputs match the original
to the last bit (tested).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from .base import Quantizer
from .baselines.biscaled import BiScaledQuantizer
from .baselines.fqvit import Log2Quantizer
from .baselines.ptq4vit import TwinUniformQuantizer
from .export import _pack_params, _unpack_params
from .quq import QUQQuantizer
from .uniform import AsymmetricUniformQuantizer, RowwiseUniformQuantizer, UniformQuantizer

__all__ = [
    "STATE_VERSION",
    "ChecksumError",
    "quantizer_state",
    "quantizer_from_state",
    "save_quantizer_states",
    "load_quantizer_states",
]

STATE_VERSION = 1


class ChecksumError(ValueError):
    """Archive contents do not match the checksum recorded at save time."""


def _payload_checksum(arrays: dict[str, np.ndarray], record: dict) -> str:
    """SHA-256 over every array payload plus the canonical JSON record.

    The record is hashed without its ``checksum`` field, dumped with
    sorted keys so the digest is stable across save/load round trips
    (Python's float repr round-trips exactly, so re-dumping the parsed
    record reproduces the original byte string).
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    stripped = {key: value for key, value in record.items() if key != "checksum"}
    digest.update(json.dumps(stripped, sort_keys=True).encode())
    return digest.hexdigest()

#: Scalar attributes captured per quantizer class (bits is handled
#: separately; array-valued state is handled explicitly below).
_SCALAR_FIELDS: dict[type, tuple[str, ...]] = {
    UniformQuantizer: ("percentile", "delta"),
    AsymmetricUniformQuantizer: ("delta", "zero_point"),
    RowwiseUniformQuantizer: ("axis", "_row_count", "_elements"),
    BiScaledQuantizer: ("delta_bulk", "delta_outlier", "threshold", "_outlier_fraction"),
    Log2Quantizer: (),
    TwinUniformQuantizer: ("split", "delta_small", "delta_large"),
    QUQQuantizer: (),
}

_CLASS_BY_NAME = {cls.__name__: cls for cls in _SCALAR_FIELDS} | {
    QUQQuantizer.__name__: QUQQuantizer
}


def quantizer_state(quantizer: Quantizer) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a fitted quantizer into ``(json_meta, arrays)``."""
    cls = type(quantizer)
    if cls not in _SCALAR_FIELDS:
        raise TypeError(f"cannot serialize quantizer type {cls.__name__}")
    quantizer._require_fitted()
    meta: dict = {"class": cls.__name__, "bits": quantizer.bits}
    arrays: dict[str, np.ndarray] = {}
    for field in _SCALAR_FIELDS[cls]:
        meta[field] = getattr(quantizer, field)
    if isinstance(quantizer, QUQQuantizer):
        arrays["params"] = _pack_params(quantizer.params)
    elif isinstance(quantizer, RowwiseUniformQuantizer):
        arrays["deltas"] = np.asarray(quantizer.deltas, dtype=np.float64)
    return meta, arrays


def quantizer_from_state(meta: dict, arrays: dict[str, np.ndarray]) -> Quantizer:
    """Rebuild a fitted quantizer from :func:`quantizer_state` output."""
    cls = _CLASS_BY_NAME.get(meta.get("class", ""))
    if cls is None:
        raise ValueError(f"unknown quantizer class {meta.get('class')!r}")
    if cls is TwinUniformQuantizer:
        quantizer = cls(int(meta["bits"]), split=meta["split"])
    elif cls is RowwiseUniformQuantizer:
        quantizer = cls(int(meta["bits"]), axis=int(meta["axis"]))
    else:
        quantizer = cls(int(meta["bits"]))
    for field in _SCALAR_FIELDS[cls]:
        if field in ("split", "axis"):
            continue  # constructor arguments, already applied
        setattr(quantizer, field, meta[field])
    if cls is QUQQuantizer:
        quantizer.params = _unpack_params(np.asarray(arrays["params"]))
    elif cls is RowwiseUniformQuantizer:
        quantizer.deltas = np.asarray(arrays["deltas"], dtype=np.float64)
    # Marking fitted advances Quantizer.param_version, so any weight-cache
    # entry computed against a previous incarnation of this tap can never
    # be replayed for the restored parameters.
    quantizer.fitted = True
    return quantizer


def save_quantizer_states(
    quantizers: dict[str, Quantizer],
    path: str | Path,
    header: dict | None = None,
) -> Path:
    """Write fitted quantizers (tap -> quantizer) to an ``.npz`` at ``path``.

    ``header`` carries caller context (method/bits/coverage for the PTQ
    pipeline) and is returned verbatim by :func:`load_quantizer_states`.
    """
    path = Path(path)
    taps: dict[str, dict] = {}
    payload: dict[str, np.ndarray] = {}
    for name, quantizer in quantizers.items():
        meta, arrays = quantizer_state(quantizer)
        taps[name] = meta
        for field, array in arrays.items():
            payload[f"a:{name}:{field}"] = array
    record = {"version": STATE_VERSION, "header": header or {}, "taps": taps}
    record["checksum"] = _payload_checksum(payload, record)
    payload["__meta__"] = np.array(json.dumps(record))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_quantizer_states(
    path: str | Path, *, require_checksum: bool = False
) -> tuple[dict, dict[str, Quantizer]]:
    """Load ``(header, tap -> quantizer)`` written by :func:`save_quantizer_states`.

    Archives predating checksums load unverified by default;
    ``require_checksum=True`` rejects them too (a corrupted legacy archive
    is undetectable, so a caller that must never serve silent garbage —
    the serving registry — treats "unverifiable" the same as "corrupt").
    """
    payload = np.load(Path(path))
    if "__meta__" not in payload.files:
        raise ValueError(f"{path} is not a quantizer-state archive (no __meta__)")
    record = json.loads(str(payload["__meta__"][()]))
    if record.get("version") != STATE_VERSION:
        raise ValueError(
            f"unsupported quantizer-state version {record.get('version')!r} "
            f"(expected {STATE_VERSION})"
        )
    recorded = record.get("checksum")
    if recorded is None:
        if require_checksum:
            raise ChecksumError(
                f"{path}: quantizer-state archive has no checksum (written "
                f"before checksums existed) — corruption would be "
                f"undetectable; recalibrate to upgrade the artifact"
            )
    else:
        arrays = {name: payload[name] for name in payload.files if name != "__meta__"}
        actual = _payload_checksum(arrays, record)
        if actual != recorded:
            raise ChecksumError(
                f"{path}: quantizer-state checksum mismatch "
                f"(recorded {recorded[:12]}…, recomputed {actual[:12]}…); "
                f"the artifact is corrupt — recalibrate"
            )
    quantizers: dict[str, Quantizer] = {}
    for name, meta in record["taps"].items():
        prefix = f"a:{name}:"
        arrays = {
            key[len(prefix):]: payload[key]
            for key in payload.files
            if key.startswith(prefix)
        }
        quantizers[name] = quantizer_from_state(meta, arrays)
    return record.get("header", {}), quantizers
