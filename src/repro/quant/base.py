"""Quantizer protocol shared by QUQ and every baseline."""

from __future__ import annotations

import numpy as np

__all__ = ["Quantizer"]


class Quantizer:
    """A post-training quantizer for one tensor (weight or activation).

    Life cycle: construct with a bit-width, :meth:`fit` on calibration data,
    then :meth:`fake_quantize` during inference (quantize-dequantize round
    trip in float, the standard PTQ simulation).  Implementations that
    support a real integer datapath also expose ``quantize``/``dequantize``.
    """

    def __init__(self, bits: int):
        if bits < 2:
            raise ValueError(f"bit-width must be >= 2, got {bits}")
        self.bits = bits
        self._fitted = False
        self.param_version = 0

    @property
    def fitted(self) -> bool:
        return self._fitted

    @fitted.setter
    def fitted(self, value: bool) -> None:
        # Every (re)fit — fit(), a serialization restore, a scaled() clone —
        # marks itself by setting ``fitted = True``, so the version counter
        # advances whenever the quantization parameters may have changed.
        # Caches of quantized outputs (the weight cache in
        # :mod:`repro.quant.observers`) key on this counter to invalidate.
        if value:
            self.param_version += 1
        self._fitted = bool(value)

    def fit(self, x: np.ndarray) -> "Quantizer":
        """Choose quantization parameters from calibration tensor ``x``."""
        raise NotImplementedError

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        """Quantize-dequantize ``x`` (same shape, discretized values)."""
        raise NotImplementedError

    def bits_per_element(self) -> float:
        """Storage cost of one quantized element, in bits.

        Used by the memory accounting; schemes with side tables (e.g.
        BiScaled-FxP's outlier index) report their amortized overhead here.
        """
        return float(self.bits)

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")
