"""Quadruplet uniform bytes (QUBs): the hardware encoding of QUQ results.

Section 4.1 of the paper: each quantized tensor carries, besides its base
scale factor ``Delta``, two 8-bit *FC registers* describing how the fine
and coarse halves of the code space are laid out.  Each b-bit QUB then
holds a fine/coarse flag in its top bit and a (b-1)-bit payload whose
interpretation (signed two's complement, or one-sided magnitude) is read
from the registers.  Decoding (Eq. 6-7) turns a QUB into a b-bit signed
integer ``D`` and a 3-bit shift ``n_sh`` such that the represented value is
``D << n_sh`` in units of the base delta — which is what lets a plain
signed multiplier process every mode.

Register layout (one byte per granularity, fine ``f`` and coarse ``c``)::

    bit 7    : 1 -> this space holds both signs (payload is signed)
    bit 6    : if bit7 == 0, 1 -> the reserved side is negative
    bits 5-3 : log2 s for the negative subrange (shift count)
    bits 2-0 : log2 s for the positive subrange (shift count)

One deliberate deviation from infinite-precision math: a one-sided
*negative* space cannot represent the value zero (its payload patterns map
to ``-2^(b-1)..-1``), so :func:`encode` clamps zero codes to ``-1`` there.
This only affects exact zeros of non-positive tensors, which do not occur
in the ViT dataflow (the one-sided tensors are the non-negative
post-Softmax activations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .params import QUQParams, Subrange, SubrangeSpec
from .quq import SUBRANGE_IDS, QuantizedTensor

__all__ = [
    "SpaceRegister",
    "FCRegisters",
    "EmptyBatchError",
    "encode",
    "encode_batch",
    "decode",
    "legalize_for_hardware",
    "pack_qub_words",
    "unpack_qub_words",
    "MAX_SHIFT",
]

#: Shift fields are 3 bits wide.
MAX_SHIFT = 7


class EmptyBatchError(ValueError):
    """``encode_batch`` was handed no tensors at all.

    The shared FC registers derive from the batch's parameter set, so an
    empty batch has no registers to return — a typed error lets callers
    distinguish "nothing to encode" from a mixed-parameter batch (plain
    ``ValueError``).  Zero-*size* member tensors are fine; only a
    zero-*length* tensor list is rejected.
    """


@dataclass(frozen=True)
class SpaceRegister:
    """One FC register: layout of the fine or coarse half of code space."""

    both_sides: bool
    negative_reserved: bool
    shift_neg: int
    shift_pos: int

    def __post_init__(self):
        for shift in (self.shift_neg, self.shift_pos):
            if not 0 <= shift <= MAX_SHIFT:
                raise ValueError(
                    f"shift {shift} does not fit the 3-bit register field"
                )
        if self.both_sides and self.negative_reserved:
            raise ValueError(
                "inconsistent register: a both-sides space cannot also "
                "reserve the negative side"
            )

    def pack(self) -> int:
        """Pack into the 8-bit register byte."""
        return (
            (int(self.both_sides) << 7)
            | (int(self.negative_reserved) << 6)
            | (self.shift_neg << 3)
            | self.shift_pos
        )

    @staticmethod
    def unpack(byte: int) -> "SpaceRegister":
        """Strictly decode a register byte; garbage raises ``ValueError``.

        A byte with both the both-sides flag (bit 7) and the
        negative-reserved flag (bit 6) set encodes a layout no
        :meth:`pack` can produce — register corruption, not a register —
        so it is rejected rather than silently reinterpreted.
        """
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"register byte out of range: {byte}")
        both = bool(byte >> 7 & 1)
        reserved = bool(byte >> 6 & 1)
        if both and reserved:
            raise ValueError(
                f"inconsistent register byte 0x{byte:02x}: both-sides and "
                "negative-reserved flags are mutually exclusive"
            )
        return SpaceRegister(
            both_sides=both,
            negative_reserved=reserved,
            shift_neg=byte >> 3 & 0b111,
            shift_pos=byte & 0b111,
        )


@dataclass(frozen=True)
class FCRegisters:
    """The pair of registers accompanying one quantized tensor."""

    fine: SpaceRegister
    coarse: SpaceRegister

    def pack(self) -> tuple[int, int]:
        """The two register bytes as stored in hardware (fine, coarse)."""
        return self.fine.pack(), self.coarse.pack()

    @staticmethod
    def unpack(fine_byte: int, coarse_byte: int) -> "FCRegisters":
        """Strictly decode the register pair; either byte being
        out-of-range or internally inconsistent raises ``ValueError``
        (see :meth:`SpaceRegister.unpack`) instead of constructing a
        garbage layout."""
        return FCRegisters(
            fine=SpaceRegister.unpack(fine_byte),
            coarse=SpaceRegister.unpack(coarse_byte),
        )

    @staticmethod
    def from_params(params: QUQParams) -> "FCRegisters":
        """Derive the register contents from fitted QUQ parameters."""

        def build(neg: SubrangeSpec | None, pos: SubrangeSpec | None,
                  neg_sub: Subrange, pos_sub: Subrange) -> SpaceRegister:
            return SpaceRegister(
                both_sides=neg is not None and pos is not None,
                negative_reserved=neg is not None and pos is None,
                shift_neg=params.shift(neg_sub) if neg is not None else 0,
                shift_pos=params.shift(pos_sub) if pos is not None else 0,
            )

        return FCRegisters(
            fine=build(params.f_neg, params.f_pos, Subrange.F_NEG, Subrange.F_POS),
            coarse=build(params.c_neg, params.c_pos, Subrange.C_NEG, Subrange.C_POS),
        )


def legalize_for_hardware(params: QUQParams) -> QUQParams:
    """Grow fine scale factors until every shift fits the 3-bit field.

    Extremely long-tailed tensors can make ``log2(delta_C / delta_F)``
    exceed :data:`MAX_SHIFT`.  Hardware resolves this by coarsening the fine
    subranges (doubling their deltas) until the ratios fit; accuracy-only
    experiments keep the unconstrained parameters.
    """

    def too_wide(p: QUQParams) -> bool:
        return any(p.shift(s) > MAX_SHIFT for s, _ in p.active())

    current = params
    while too_wide(current):
        def grow(spec: SubrangeSpec | None) -> SubrangeSpec | None:
            if spec is None:
                return None
            return SubrangeSpec(spec.delta * 2.0, spec.levels)

        # Double the *smallest* deltas (they define the base) to shrink the
        # largest ratio by one bit per iteration.
        base = current.base_delta

        def maybe_grow(spec: SubrangeSpec | None) -> SubrangeSpec | None:
            if spec is None:
                return None
            if np.isclose(spec.delta, base):
                return grow(spec)
            return spec

        current = QUQParams(
            current.bits,
            f_neg=maybe_grow(current.f_neg),
            f_pos=maybe_grow(current.f_pos),
            c_neg=maybe_grow(current.c_neg),
            c_pos=maybe_grow(current.c_pos),
        )
    return current


def _encode_codes(
    codes: np.ndarray, subranges: np.ndarray, registers: FCRegisters, bits: int
) -> np.ndarray:
    """Vectorized core of :func:`encode`: codes + subrange ids -> QUB words.

    Copies the code array only when a negative-reserved space forces the
    zero-to-``-1`` clamp; the common both-sides layout encodes without any
    intermediate copy.
    """
    half = 2 ** (bits - 1)
    fine_mask = (subranges == SUBRANGE_IDS[Subrange.F_NEG]) | (
        subranges == SUBRANGE_IDS[Subrange.F_POS]
    )
    if registers.fine.negative_reserved or registers.coarse.negative_reserved:
        # A one-sided negative space cannot express zero: clamp to -1.
        codes = codes.astype(np.int64, copy=True)
        for mask, register in (
            (fine_mask, registers.fine),
            (~fine_mask, registers.coarse),
        ):
            if register.negative_reserved:
                zero = mask & (codes == 0)
                codes[zero] = -1
    else:
        codes = codes.astype(np.int64, copy=False)

    payload = codes & (half - 1)
    qubs = (fine_mask.astype(np.int64) << (bits - 1)) | payload
    return qubs.astype(np.uint8 if bits <= 8 else np.uint16)


def encode(qt: QuantizedTensor) -> tuple[np.ndarray, FCRegisters]:
    """Encode a quantized tensor into QUB bytes plus its FC registers."""
    registers = FCRegisters.from_params(qt.params)
    return _encode_codes(qt.codes, qt.subranges, registers, qt.params.bits), registers


def _batch_registers(
    tensors: "list[QuantizedTensor]",
) -> tuple[QUQParams, FCRegisters]:
    """Shared ``encode_batch`` validation: one parameter set, nonempty list.

    Raises :class:`EmptyBatchError` for an empty tensor list and a plain
    ``ValueError`` for mixed parameter sets — both batch-level contract
    violations, checked identically by the reference and fused variants.
    """
    if not tensors:
        raise EmptyBatchError("encode_batch needs at least one tensor")
    params = tensors[0].params
    for qt in tensors[1:]:
        if qt.params != params:
            raise ValueError(
                "encode_batch requires a shared parameter set; got "
                f"{qt.params.describe()!r} vs {params.describe()!r}"
            )
    return params, FCRegisters.from_params(params)


def _encode_batch_reference(
    tensors: "list[QuantizedTensor] | tuple[QuantizedTensor, ...]",
) -> tuple[list[np.ndarray], FCRegisters]:
    """Reference ``qub.encode_batch``: encode each tensor independently."""
    tensors = list(tensors)
    _, registers = _batch_registers(tensors)
    out = [
        _encode_codes(qt.codes, qt.subranges, registers, qt.params.bits)
        for qt in tensors
    ]
    return out, registers


def _encode_batch_fused(
    tensors: "list[QuantizedTensor] | tuple[QuantizedTensor, ...]",
) -> tuple[list[np.ndarray], FCRegisters]:
    """Fused ``qub.encode_batch``: one pass over the concatenated codes.

    Zero-size member tensors concatenate to nothing and slice back out as
    empty arrays of the right shape — they are legal batch members.
    """
    tensors = list(tensors)
    params, registers = _batch_registers(tensors)
    codes = np.concatenate([qt.codes.reshape(-1) for qt in tensors])
    subranges = np.concatenate([qt.subranges.reshape(-1) for qt in tensors])
    flat = _encode_codes(codes, subranges, registers, params.bits)
    out: list[np.ndarray] = []
    offset = 0
    for qt in tensors:
        size = qt.codes.size
        out.append(flat[offset : offset + size].reshape(qt.codes.shape))
        offset += size
    return out, registers


def encode_batch(
    tensors: "list[QuantizedTensor] | tuple[QuantizedTensor, ...]",
) -> tuple[list[np.ndarray], FCRegisters]:
    """Encode several quantized tensors sharing one parameter set.

    The streaming shape of the serving hot path: successive batches at the
    same tap quantize under identical ``QUQParams``, so the FC registers
    are derived once and every tensor's codes encode in a single fused
    pass over their concatenation.  Returns the per-tensor QUB arrays (in
    input order, each with its tensor's shape) plus the shared registers.

    Zero-size member tensors are legal (their QUB arrays come back empty
    with the member's shape).  An empty tensor *list* raises
    :class:`EmptyBatchError`; mixed parameter sets raise a plain
    ``ValueError`` — those inputs must go through :func:`encode`
    individually.

    Dispatches through the kernel registry (op ``qub.encode_batch``):
    the fused single-pass variant by default, the per-tensor reference
    loop under ``REPRO_KERNELS=reference``.
    """
    from ..kernels import get_kernel

    return get_kernel("qub.encode_batch")(tensors)


def pack_qub_words(qubs: np.ndarray, bits: int) -> np.ndarray:
    """Pack b-bit QUB words into a dense byte buffer (MSB-first bitstream).

    The storage format of the serving backend's packed weight buffers: a
    tensor of ``n`` b-bit words occupies ``ceil(n * b / 8)`` bytes — the
    actual memory-footprint win of sub-byte quantization, as opposed to
    the one-word-per-``uint8``/``uint16`` layout the simulator uses for
    indexing convenience.  Round-trips exactly through
    :func:`unpack_qub_words` for any ``1 <= bits <= 16``.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    words = np.asarray(qubs).reshape(-1).astype(np.uint32)
    if words.size and int(words.max()) >> bits:
        raise ValueError(f"QUB word exceeds {bits} bits")
    # Explode each word into its b bits (MSB first), then pack the flat
    # bitstream; the trailing partial byte is zero-padded by packbits.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint32)
    bitstream = ((words[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bitstream.reshape(-1))


def unpack_qub_words(buffer: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_qub_words`: recover ``count`` b-bit words.

    Returns ``uint8`` words for ``bits <= 8`` and ``uint16`` above —
    matching the dtype :func:`encode` produces, so unpacked buffers feed
    straight into :func:`decode`.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    buffer = np.asarray(buffer, dtype=np.uint8)
    needed = (count * bits + 7) // 8
    if buffer.size < needed:
        raise ValueError(
            f"buffer holds {buffer.size} bytes; {needed} needed for "
            f"{count} {bits}-bit words"
        )
    bitstream = np.unpackbits(buffer, count=count * bits).reshape(count, bits)
    weights = (1 << np.arange(bits - 1, -1, -1, dtype=np.uint32))
    words = bitstream.astype(np.uint32) @ weights
    return words.astype(np.uint8 if bits <= 8 else np.uint16)


def decode(
    qubs: np.ndarray, registers: FCRegisters, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (6)-(7): decode QUBs into ``(D, n_sh)``.

    ``D`` is a b-bit signed integer and ``n_sh`` the per-element shift; the
    represented value is ``D * 2**n_sh`` in units of the tensor's base
    delta.
    """
    qubs = qubs.astype(np.int64)
    half = 2 ** (bits - 1)
    quarter = 2 ** (bits - 2)
    fine_flag = (qubs >> (bits - 1)) & 1
    payload = qubs & (half - 1)

    d = np.zeros(qubs.shape, dtype=np.int64)
    n_sh = np.zeros(qubs.shape, dtype=np.int64)
    for flag, register in ((1, registers.fine), (0, registers.coarse)):
        mask = fine_flag == flag
        if not mask.any():
            continue
        p = payload[mask]
        if register.both_sides:
            # (b-1)-bit two's complement payload, sign-extended to b bits.
            value = np.where(p >= quarter, p - half, p)
            shift = np.where(value < 0, register.shift_neg, register.shift_pos)
        elif register.negative_reserved:
            # {1, payload}: b-bit two's complement with implied sign 1.
            value = p - half
            shift = np.full(p.shape, register.shift_neg, dtype=np.int64)
        else:
            # {0, payload}: non-negative magnitudes.
            value = p
            shift = np.full(p.shape, register.shift_pos, dtype=np.int64)
        d[mask] = value
        n_sh[mask] = shift
    return d, n_sh
