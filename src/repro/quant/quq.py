"""Quadruplet uniform quantization (Eq. 3) — the paper's core contribution.

A fitted :class:`QUQQuantizer` assigns every element to one of the active
subranges of its :class:`~repro.quant.params.QUQParams` and quantizes it
with that subrange's scale factor.  Assignment is anchored at zero: fine
subranges take the elements within their representable span, coarse
subranges take the rest (clipping at the coarse extreme), so every code is
proportional to its value and no zero points exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import get_kernel
from .base import Quantizer
from .params import Mode, QUQParams, Subrange, SubrangeSpec
from .relax import PRAConfig, progressive_relaxation

__all__ = [
    "SUBRANGE_IDS",
    "QuantizedTensor",
    "QUQQuantizer",
    "quantize_with_params",
    "fake_quantize_with_params",
    "nan_park_value",
]

#: Stable integer ids for the four subranges (used in code/id arrays).
SUBRANGE_IDS = {
    Subrange.F_NEG: 0,
    Subrange.F_POS: 1,
    Subrange.C_NEG: 2,
    Subrange.C_POS: 3,
}
_ID_TO_SUBRANGE = {v: k for k, v in SUBRANGE_IDS.items()}


@dataclass
class QuantizedTensor:
    """Integer codes plus per-element subrange assignment."""

    params: QUQParams
    codes: np.ndarray  # int64; negative codes for negative subranges
    subranges: np.ndarray  # int8 ids into SUBRANGE_IDS

    def dequantize(self) -> np.ndarray:
        deltas = np.zeros(4)
        for subrange, spec in self.params.active():
            deltas[SUBRANGE_IDS[subrange]] = spec.delta
        return (self.codes * deltas[self.subranges]).astype(np.float32)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.codes.shape


def _side_arrays(
    params: QUQParams, negative: bool
) -> tuple[SubrangeSpec | None, SubrangeSpec | None, int, int]:
    if negative:
        return params.f_neg, params.c_neg, SUBRANGE_IDS[Subrange.F_NEG], SUBRANGE_IDS[
            Subrange.C_NEG
        ]
    return params.f_pos, params.c_pos, SUBRANGE_IDS[Subrange.F_POS], SUBRANGE_IDS[
        Subrange.C_POS
    ]


def quantize_with_params(x: np.ndarray, params: QUQParams) -> QuantizedTensor:
    """Apply Eq. (3): route elements to subranges and uniformly quantize."""
    x = np.asarray(x, dtype=np.float64)
    codes = np.zeros(x.shape, dtype=np.int64)
    ids = np.full(x.shape, -1, dtype=np.int8)

    has_positive = params.f_pos is not None or params.c_pos is not None
    has_negative = params.f_neg is not None or params.c_neg is not None

    # NaN fails both side comparisons on two-sided params and must do the
    # same on one-sided ones (where the side mask would otherwise be
    # all-true and NaN codes would reach the int64 cast): keep NaN out of
    # every side so it parks at the deterministic spot below, mirroring
    # the NumericGuard stance that non-finite values are never silently
    # laundered into data-dependent codes.
    finite_side = ~np.isnan(x)
    for negative in (False, True):
        fine, coarse, fine_id, coarse_id = _side_arrays(params, negative)
        if fine is None and coarse is None:
            continue
        if negative:
            side = x < 0 if has_positive else finite_side
            magnitude = -x
        else:
            side = x >= 0 if has_negative else finite_side
            magnitude = x
        if not side.any():
            continue

        if fine is not None:
            # Fine span: the largest magnitude the fine subrange represents.
            # The boundary test carries a tiny relative tolerance so values
            # that sit exactly on the span survive a float32 round trip.
            span = fine.levels * fine.delta if negative else (fine.levels - 1) * fine.delta
            span *= 1.0 + 1e-6
            in_fine = side & (magnitude <= span) if coarse is not None else side
        else:
            in_fine = np.zeros(x.shape, dtype=bool)

        if fine is not None and in_fine.any():
            q = np.rint(magnitude[in_fine] / fine.delta)
            if negative:
                codes[in_fine] = -np.clip(q, 0, fine.levels).astype(np.int64)
            else:
                codes[in_fine] = np.clip(q, 0, fine.levels - 1).astype(np.int64)
            ids[in_fine] = fine_id

        if coarse is not None:
            in_coarse = side & ~in_fine
            if in_coarse.any():
                q = np.rint(magnitude[in_coarse] / coarse.delta)
                if negative:
                    codes[in_coarse] = -np.clip(q, 0, coarse.levels).astype(np.int64)
                else:
                    codes[in_coarse] = np.clip(q, 0, coarse.levels - 1).astype(np.int64)
                ids[in_coarse] = coarse_id

    # Zero lives in the positive code space: negative elements that round
    # to code 0 are re-homed there (in hardware a negative-reserved space
    # has no zero pattern, see qub.py).
    if has_positive:
        zero_neg = (codes == 0) & (
            (ids == SUBRANGE_IDS[Subrange.F_NEG]) | (ids == SUBRANGE_IDS[Subrange.C_NEG])
        )
        if zero_neg.any():
            ids[zero_neg] = SUBRANGE_IDS[
                Subrange.F_POS if params.f_pos is not None else Subrange.C_POS
            ]

    # Elements assigned to no subrange: values on a side with no subrange
    # (e.g. positives under a negative-only Mode B) clip to the closest
    # representable extreme, and NaN — which joins no side — parks at the
    # same deterministic spot (code -1 in the negative space when one
    # exists, else code 0).  :func:`nan_park_value` is the float twin.
    unassigned = ids < 0
    if unassigned.any():
        if has_positive and not has_negative:
            sid = SUBRANGE_IDS[
                Subrange.F_POS if params.f_pos is not None else Subrange.C_POS
            ]
            codes[unassigned] = 0
        else:
            sid = SUBRANGE_IDS[
                Subrange.F_NEG if params.f_neg is not None else Subrange.C_NEG
            ]
            codes[unassigned] = -1
        ids[unassigned] = sid

    return QuantizedTensor(params, codes, ids)


def nan_park_value(params: QUQParams) -> float:
    """Where the reference code path parks NaN, as a dequantized float.

    :func:`quantize_with_params` assigns NaN to no side, so it lands in
    the "unassigned" bucket: code ``-1`` in the negative space when one
    exists (value ``-delta`` of the fine-else-coarse negative subrange),
    else code ``0`` (value ``0.0``).  The fused fake-quantize kernel and
    the serving encoders reproduce this spot so every implementation
    agrees on non-finite inputs; the serving engine's ``NumericGuard``
    still rejects non-finite *batches* outright — parking only defines
    the deterministic value below that guard.
    """
    spec = params.f_neg if params.f_neg is not None else params.c_neg
    if spec is not None:
        return -spec.delta
    return 0.0


def _fused_tables(params: QUQParams) -> tuple[float, float, np.ndarray, np.ndarray, np.ndarray]:
    """Per-subrange lookup tables for the fused fake-quantize kernel.

    Returns ``(span_pos, span_neg, delta, lo, hi)`` where the arrays are
    indexed by the 2-bit selector ``side * 2 + fine`` (slots: positive
    coarse, positive fine, negative coarse, negative fine).  A side with a
    single active subrange gets ``span = +/-inf`` so routing always (or
    never) picks the fine slot, and the unused slot mirrors the active one
    so NaN inputs — which fail every comparison and land in the coarse
    slot — gather sane table entries on their way to the NaN park.  A
    fully absent side is never selected (the side mask routes every
    element to the active side) and holds inert values.
    """

    def side_tables(fine, coarse, negative):
        if fine is None and coarse is None:
            return -np.inf, (1.0, 0.0, 0.0), (1.0, 0.0, 0.0)

        def entry(spec):
            if spec is None:  # unused slot: mirror the active subrange
                spec = fine if coarse is None else coarse
            if negative:
                return spec.delta, float(-spec.levels), 0.0
            return spec.delta, 0.0, float(spec.levels - 1)

        if fine is not None and coarse is not None:
            base = fine.levels if negative else fine.levels - 1
            span = base * fine.delta * (1.0 + 1e-6)
        elif fine is not None:
            span = np.inf  # fine-only: everything routes fine
        else:
            span = -np.inf  # coarse-only: nothing routes fine
        return span, entry(fine), entry(coarse)

    span_pos, f_pos, c_pos = side_tables(params.f_pos, params.c_pos, False)
    span_neg, f_neg, c_neg = side_tables(params.f_neg, params.c_neg, True)
    delta = np.array([c_pos[0], f_pos[0], c_neg[0], f_neg[0]], dtype=np.float64)
    lo = np.array([c_pos[1], f_pos[1], c_neg[1], f_neg[1]], dtype=np.float64)
    hi = np.array([c_pos[2], f_pos[2], c_neg[2], f_neg[2]], dtype=np.float64)
    return span_pos, span_neg, delta, lo, hi


def fake_quantize_with_params(x: np.ndarray, params: QUQParams) -> np.ndarray:
    """Quantize-dequantize under Eq. (3) without materializing codes.

    Fused fast path, equivalent to
    ``quantize_with_params(x, params).dequantize()`` (tested); used on the
    inference hot path where only values matter.  Instead of snapping each
    subrange over the full tensor and blending with ``np.where`` (up to
    four round/clamp passes), every element gathers its own
    ``(delta, lo, hi)`` from a four-slot table via a 2-bit selector
    (side, fine/coarse), so the divide/round/clamp/scale sequence runs
    exactly once.  Code selection runs in float64 to match the code path —
    a float32 ratio picks the adjacent code when an element sits a hair
    from a rounding tie — and only the output is float32.
    """
    x = np.asarray(x, dtype=np.float64)
    span_pos, span_neg, delta_t, lo_t, hi_t = _fused_tables(params)

    has_positive = params.f_pos is not None or params.c_pos is not None
    has_negative = params.f_neg is not None or params.c_neg is not None
    if has_positive and has_negative:
        negative = x < 0  # zero lives in the positive code space
    elif has_positive:
        negative = np.zeros(x.shape, dtype=bool)  # one-sided: clamp at zero
    else:
        negative = np.ones(x.shape, dtype=bool)

    magnitude = np.abs(x)
    with np.errstate(invalid="ignore"):
        fine = magnitude <= np.where(negative, span_neg, span_pos)
        selector = negative * 2 + fine
        delta = delta_t[selector]
        out = np.clip(np.rint(x / delta), lo_t[selector], hi_t[selector]) * delta
    # Non-finite parity with the code path: +/-inf clipped to the side's
    # representable extreme above; NaN (the only input that survives the
    # divide/round/clamp as NaN) parks where quantize().dequantize() does
    # instead of propagating.
    invalid = np.isnan(out)
    if invalid.any():
        out = np.where(invalid, nan_park_value(params), out)
    return out.astype(np.float32)


class QUQQuantizer(Quantizer):
    """Quadruplet uniform quantizer fitted by progressive relaxation."""

    def __init__(self, bits: int, config: PRAConfig | None = None):
        super().__init__(bits)
        self.config = config or PRAConfig()
        self.params: QUQParams | None = None

    def fit(self, x: np.ndarray) -> "QUQQuantizer":
        self.params = progressive_relaxation(x, self.bits, self.config)
        self.fitted = True
        return self

    @property
    def mode(self) -> Mode:
        self._require_fitted()
        return self.params.mode

    def quantize(self, x: np.ndarray) -> QuantizedTensor:
        self._require_fitted()
        return get_kernel("quq.quantize")(x, self.params)

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        # Dispatch through the kernel registry: fast (the fused four-slot
        # kernel) by default, the quantize->dequantize reference under
        # ``REPRO_KERNELS=reference``.  Every caller — ``QuantEnv``'s
        # quantize phase, the weight cache, the float serving backend —
        # inherits the switch through this one seam.
        self._require_fitted()
        return get_kernel("quq.fake_quantize")(x, self.params)

    def scaled(self, factor: float) -> "QUQQuantizer":
        """Copy with every scale factor multiplied by ``factor``.

        A uniform rescaling preserves the Eq. (4) power-of-two ratios, so
        the result is still a legal QUQ parameter set; the Hessian-weighted
        grid search explores these candidates.
        """
        self._require_fitted()
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def scale(spec: SubrangeSpec | None) -> SubrangeSpec | None:
            if spec is None:
                return None
            return SubrangeSpec(spec.delta * factor, spec.levels)

        clone = QUQQuantizer(self.bits, self.config)
        clone.params = QUQParams(
            self.params.bits,
            f_neg=scale(self.params.f_neg),
            f_pos=scale(self.params.f_pos),
            c_neg=scale(self.params.c_neg),
            c_pos=scale(self.params.c_pos),
        )
        clone.fitted = True
        return clone
