"""Tap classification and calibration observation.

The models route every activation through named taps (see
:mod:`repro.nn.module`).  This module classifies each tap into the
dataflow categories of Figure 1 — which determines whether *partial*
quantization covers it — and provides the :class:`QuantEnv` dispatcher
that first records calibration tensors at each tap and later rewrites
activations through fitted quantizers.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..autograd import Tensor, is_grad_enabled, straight_through
from ..nn.module import TapDispatcher
from .base import Quantizer

__all__ = ["TapKind", "classify_tap", "taps_for_coverage", "QuantEnv"]


class TapKind(Enum):
    """Dataflow category of a tap, following Figure 1's color coding."""

    WEIGHT = "weight"  # green: GEMM weights
    GEMM_INPUT = "gemm_input"  # green: Linear/MatMul input activations
    SOFTMAX_INPUT = "softmax_input"  # red: attention scores
    GELU_INPUT = "gelu_input"  # red: MLP hidden pre-activation
    NORM_INPUT = "norm_input"  # red: LayerNorm inputs
    RESIDUAL = "residual"  # red: element-wise addition operands


_GEMM_INPUT_SUFFIXES = (
    ".qkv.input",
    ".proj.input",
    ".fc1.input",
    ".fc2.input",
    ".head.input",
    ".head_dist.input",
    ".reduction.input",
    ".q",
    ".k",
    ".v",
    ".probs",
)
_NORM_SUFFIXES = (".final_norm_input", ".merge_norm_input")
_RESIDUAL_SUFFIXES = (".block_input", ".mid_input", ".attn_residual", ".mlp_residual")


def classify_tap(name: str) -> TapKind:
    """Map a tap's dotted name to its dataflow category."""
    if name.endswith(".weight"):
        return TapKind.WEIGHT
    if name.endswith(_GEMM_INPUT_SUFFIXES):
        return TapKind.GEMM_INPUT
    if name.endswith(".scores"):
        return TapKind.SOFTMAX_INPUT
    if name.endswith(".act.input"):
        return TapKind.GELU_INPUT
    if name.endswith(_NORM_SUFFIXES):
        return TapKind.NORM_INPUT
    if name.endswith(_RESIDUAL_SUFFIXES):
        return TapKind.RESIDUAL
    raise ValueError(f"cannot classify tap {name!r}")


#: Tap kinds covered by partial quantization (GEMM operands only, the green
#: components of Figure 1) vs full quantization (the whole dataflow).
_PARTIAL_KINDS = frozenset({TapKind.WEIGHT, TapKind.GEMM_INPUT})


def taps_for_coverage(kind: TapKind, coverage: str) -> bool:
    """Whether a tap of ``kind`` is quantized under the given coverage."""
    if coverage == "partial":
        return kind in _PARTIAL_KINDS
    if coverage == "full":
        return True
    raise ValueError(f"coverage must be 'partial' or 'full', got {coverage!r}")


class QuantEnv(TapDispatcher):
    """Tap dispatcher with three phases: off, observe, quantize.

    * ``observe``: record a copy of every tensor passing a registered tap
      (concatenated over calibration batches) and, optionally, the gradient
      flowing back through it (for the Hessian-weighted search).
    * ``quantize``: pass tensors through their tap's fitted quantizer using
      a straight-through node, so fake quantization is active in forward
      while gradients (when enabled) flow unchanged.
    """

    def __init__(self):
        self.phase = "off"
        self.watched: set[str] | None = None  # None = watch everything
        self.records: dict[str, list[np.ndarray]] = {}
        self.grad_records: dict[str, list[np.ndarray]] = {}
        self.quantizers: dict[str, Quantizer] = {}
        self.capture_grads = False
        self.seen_taps: set[str] = set()
        # Optional drift hook (repro.quant.drift.TapStatsRecorder): when
        # set, quantize-phase taps also report the *pre-quantization*
        # tensor so live statistics can be compared against the
        # calibration fingerprint without storing activations.
        self.stats_recorder = None
        # Weight cache: weight taps always see the same parameter tensor
        # between calibrations, so their fake-quantized arrays are computed
        # once and replayed per batch.  Entries are invalidated by the
        # env-level ``cache_version`` (bumped on recalibration/reload), by
        # the quantizer's ``param_version`` (bumped on any refit), and by
        # the weight array's identity (every weight update in this codebase
        # rebinds ``param.data``, and the QAT path runs with gradients
        # enabled, which bypasses the cache entirely).
        self.weight_cache_enabled = True
        self.cache_version = 0
        self.weight_cache_hits = 0
        self.weight_cache_misses = 0
        self._weight_cache: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def observed(self, name: str) -> np.ndarray:
        """Concatenated calibration data recorded at ``name``."""
        if name not in self.records:
            raise KeyError(f"no observations recorded for tap {name!r}")
        return np.concatenate([r.reshape(-1) for r in self.records[name]])

    def observed_gradients(self, name: str) -> np.ndarray:
        if name not in self.grad_records:
            raise KeyError(f"no gradients recorded for tap {name!r}")
        return np.concatenate([g.reshape(-1) for g in self.grad_records[name]])

    def clear_observations(self) -> None:
        self.records.clear()
        self.grad_records.clear()

    # ------------------------------------------------------------------
    def invalidate_weight_cache(self) -> None:
        """Drop every cached weight and advance the cache version.

        Called whenever the set of fitted quantizers is replaced wholesale
        (recalibration, deserialization) — per-entry staleness from a
        refit or a weight rebind is caught by the entry checks instead.
        """
        self.cache_version += 1
        self._weight_cache.clear()

    def cached_fake_weight(
        self, name: str, quantizer: Quantizer, data: np.ndarray
    ) -> np.ndarray:
        """The fake-quantized array for weight tap ``name``, cached.

        A hit requires the same weight array (by identity), the same
        quantizer object at the same ``param_version``, and the current
        ``cache_version`` — any mismatch recomputes, so the cached path is
        bit-exact with the uncached one by construction.

        ``quantizer.fake_quantize`` dispatches through the kernel
        registry, so both the cached fill and the uncached path honour
        ``REPRO_KERNELS`` (e.g. ``REPRO_KERNELS=reference`` during a
        bisection).  Because hits replay a stored array, flipping the
        env var mid-run only takes effect after ``invalidate()``.
        """
        entry = self._weight_cache.get(name)
        if (
            entry is not None
            and entry[0] is data
            and entry[1] is quantizer
            and entry[2] == quantizer.param_version
            and entry[3] == self.cache_version
        ):
            self.weight_cache_hits += 1
            return entry[4]
        self.weight_cache_misses += 1
        quantized = np.asarray(quantizer.fake_quantize(data), dtype=np.float32)
        quantized.setflags(write=False)  # shared across batches: freeze it
        self._weight_cache[name] = (
            data, quantizer, quantizer.param_version, self.cache_version, quantized,
        )
        return quantized

    def weight_cache_info(self) -> dict:
        """JSON-serializable cache statistics (observability, tests)."""
        return {
            "enabled": self.weight_cache_enabled,
            "entries": len(self._weight_cache),
            "hits": self.weight_cache_hits,
            "misses": self.weight_cache_misses,
            "version": self.cache_version,
        }

    # ------------------------------------------------------------------
    def tap(self, name: str, value: Tensor) -> Tensor:
        self.seen_taps.add(name)
        if self.phase == "off":
            return value
        if self.watched is not None and name not in self.watched:
            return value

        if self.phase == "observe":
            self.records.setdefault(name, []).append(value.data.copy())
            if self.capture_grads and is_grad_enabled():
                store = self.grad_records.setdefault(name, [])

                def capture(g):
                    store.append(np.asarray(g, dtype=np.float32).copy())
                    return (g,)

                return Tensor._make(value.data, (value,), capture)
            return value

        if self.phase == "quantize":
            if self.stats_recorder is not None:
                self.stats_recorder.record(name, value.data)
            quantizer = self.quantizers.get(name)
            if quantizer is None:
                return value
            if (
                self.weight_cache_enabled
                and name.endswith(".weight")
                and not is_grad_enabled()
            ):
                # Static weight tap on the inference path: replay the
                # cached quantized array instead of re-fake-quantizing.
                # QAT (gradients enabled) bypasses the cache because the
                # weights change every optimizer step.
                quantized = self.cached_fake_weight(name, quantizer, value.data)
                return straight_through(value, lambda _data: quantized)
            return straight_through(value, quantizer.fake_quantize)

        raise RuntimeError(f"unknown QuantEnv phase {self.phase!r}")
