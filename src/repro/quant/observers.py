"""Tap classification and calibration observation.

The models route every activation through named taps (see
:mod:`repro.nn.module`).  This module classifies each tap into the
dataflow categories of Figure 1 — which determines whether *partial*
quantization covers it — and provides the :class:`QuantEnv` dispatcher
that first records calibration tensors at each tap and later rewrites
activations through fitted quantizers.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..autograd import Tensor, is_grad_enabled, straight_through
from ..nn.module import TapDispatcher
from .base import Quantizer

__all__ = ["TapKind", "classify_tap", "taps_for_coverage", "QuantEnv"]


class TapKind(Enum):
    """Dataflow category of a tap, following Figure 1's color coding."""

    WEIGHT = "weight"  # green: GEMM weights
    GEMM_INPUT = "gemm_input"  # green: Linear/MatMul input activations
    SOFTMAX_INPUT = "softmax_input"  # red: attention scores
    GELU_INPUT = "gelu_input"  # red: MLP hidden pre-activation
    NORM_INPUT = "norm_input"  # red: LayerNorm inputs
    RESIDUAL = "residual"  # red: element-wise addition operands


_GEMM_INPUT_SUFFIXES = (
    ".qkv.input",
    ".proj.input",
    ".fc1.input",
    ".fc2.input",
    ".head.input",
    ".head_dist.input",
    ".reduction.input",
    ".q",
    ".k",
    ".v",
    ".probs",
)
_NORM_SUFFIXES = (".final_norm_input", ".merge_norm_input")
_RESIDUAL_SUFFIXES = (".block_input", ".mid_input", ".attn_residual", ".mlp_residual")


def classify_tap(name: str) -> TapKind:
    """Map a tap's dotted name to its dataflow category."""
    if name.endswith(".weight"):
        return TapKind.WEIGHT
    if name.endswith(_GEMM_INPUT_SUFFIXES):
        return TapKind.GEMM_INPUT
    if name.endswith(".scores"):
        return TapKind.SOFTMAX_INPUT
    if name.endswith(".act.input"):
        return TapKind.GELU_INPUT
    if name.endswith(_NORM_SUFFIXES):
        return TapKind.NORM_INPUT
    if name.endswith(_RESIDUAL_SUFFIXES):
        return TapKind.RESIDUAL
    raise ValueError(f"cannot classify tap {name!r}")


#: Tap kinds covered by partial quantization (GEMM operands only, the green
#: components of Figure 1) vs full quantization (the whole dataflow).
_PARTIAL_KINDS = frozenset({TapKind.WEIGHT, TapKind.GEMM_INPUT})


def taps_for_coverage(kind: TapKind, coverage: str) -> bool:
    """Whether a tap of ``kind`` is quantized under the given coverage."""
    if coverage == "partial":
        return kind in _PARTIAL_KINDS
    if coverage == "full":
        return True
    raise ValueError(f"coverage must be 'partial' or 'full', got {coverage!r}")


class QuantEnv(TapDispatcher):
    """Tap dispatcher with three phases: off, observe, quantize.

    * ``observe``: record a copy of every tensor passing a registered tap
      (concatenated over calibration batches) and, optionally, the gradient
      flowing back through it (for the Hessian-weighted search).
    * ``quantize``: pass tensors through their tap's fitted quantizer using
      a straight-through node, so fake quantization is active in forward
      while gradients (when enabled) flow unchanged.
    """

    def __init__(self):
        self.phase = "off"
        self.watched: set[str] | None = None  # None = watch everything
        self.records: dict[str, list[np.ndarray]] = {}
        self.grad_records: dict[str, list[np.ndarray]] = {}
        self.quantizers: dict[str, Quantizer] = {}
        self.capture_grads = False
        self.seen_taps: set[str] = set()
        # Optional drift hook (repro.quant.drift.TapStatsRecorder): when
        # set, quantize-phase taps also report the *pre-quantization*
        # tensor so live statistics can be compared against the
        # calibration fingerprint without storing activations.
        self.stats_recorder = None

    # ------------------------------------------------------------------
    def observed(self, name: str) -> np.ndarray:
        """Concatenated calibration data recorded at ``name``."""
        if name not in self.records:
            raise KeyError(f"no observations recorded for tap {name!r}")
        return np.concatenate([r.reshape(-1) for r in self.records[name]])

    def observed_gradients(self, name: str) -> np.ndarray:
        if name not in self.grad_records:
            raise KeyError(f"no gradients recorded for tap {name!r}")
        return np.concatenate([g.reshape(-1) for g in self.grad_records[name]])

    def clear_observations(self) -> None:
        self.records.clear()
        self.grad_records.clear()

    # ------------------------------------------------------------------
    def tap(self, name: str, value: Tensor) -> Tensor:
        self.seen_taps.add(name)
        if self.phase == "off":
            return value
        if self.watched is not None and name not in self.watched:
            return value

        if self.phase == "observe":
            self.records.setdefault(name, []).append(value.data.copy())
            if self.capture_grads and is_grad_enabled():
                store = self.grad_records.setdefault(name, [])

                def capture(g):
                    store.append(np.asarray(g, dtype=np.float32).copy())
                    return (g,)

                return Tensor._make(value.data, (value,), capture)
            return value

        if self.phase == "quantize":
            if self.stats_recorder is not None:
                self.stats_recorder.record(name, value.data)
            quantizer = self.quantizers.get(name)
            if quantizer is None:
                return value
            return straight_through(value, quantizer.fake_quantize)

        raise RuntimeError(f"unknown QuantEnv phase {self.phase!r}")
