"""Alternative range-calibration strategies for the uniform baselines.

The paper fits BaseQ with the plain abs-max rule; production PTQ toolkits
offer more robust range estimators, which we provide both as an ablation
axis and to make the BaseQ baseline as strong as possible:

* :func:`absmax_bound` — the default (max |x|).
* :func:`percentile_bound` — clip at a magnitude percentile.
* :func:`mse_bound` — sweep clip candidates, keep the MSE minimizer.
* :func:`kl_bound` — TensorRT-style: minimize the KL divergence between
  the clipped-and-quantized histogram and the original distribution.

:func:`calibrated_uniform` wires any of them into a
:class:`~repro.quant.uniform.UniformQuantizer`.
"""

from __future__ import annotations

import numpy as np

from .uniform import UniformQuantizer

__all__ = [
    "absmax_bound",
    "percentile_bound",
    "mse_bound",
    "kl_bound",
    "calibrated_uniform",
    "CALIBRATION_STRATEGIES",
]


#: Smallest bound any strategy may return: keeps the derived scale factor
#: strictly positive even for all-zero, constant, or denormal-magnitude
#: calibration tensors (a zero or NaN scale would poison every later
#: quantize call with divide-by-zero).
_MIN_BOUND = 1e-12


def _finite_magnitudes(x: np.ndarray) -> np.ndarray:
    """Flattened |x| with NaN/Inf dropped — the common degenerate-input
    guard for every bound strategy (a single stray Inf must not blow the
    clip range out to infinity)."""
    magnitudes = np.abs(np.asarray(x, dtype=np.float64)).reshape(-1)
    return magnitudes[np.isfinite(magnitudes)]


def absmax_bound(x: np.ndarray, bits: int) -> float:
    """The largest (finite) magnitude — no clipping."""
    magnitudes = _finite_magnitudes(x)
    if magnitudes.size == 0 or magnitudes.max() == 0:
        return 1.0
    return max(float(magnitudes.max()), _MIN_BOUND)


def percentile_bound(x: np.ndarray, bits: int, percentile: float = 99.9) -> float:
    """Magnitude percentile (clips the extreme tail)."""
    magnitudes = _finite_magnitudes(x)
    if magnitudes.size == 0 or magnitudes.max() == 0:
        return 1.0
    return max(float(np.percentile(magnitudes, percentile)), _MIN_BOUND)


def mse_bound(x: np.ndarray, bits: int, candidates: int = 20) -> float:
    """Sweep clip bounds; return the quantization-MSE minimizer."""
    flat = np.asarray(x, dtype=np.float64).reshape(-1)
    flat = flat[np.isfinite(flat)]
    if flat.size == 0:
        return 1.0
    max_mag = float(np.abs(flat).max())
    if max_mag == 0:
        return 1.0
    levels = 2 ** (bits - 1) - 1
    best_bound, best_err = max_mag, None
    for fraction in np.linspace(0.3, 1.0, candidates):
        bound = max_mag * fraction
        delta = bound / levels
        quantized = np.clip(np.rint(flat / delta), -levels - 1, levels) * delta
        err = float(np.mean((quantized - flat) ** 2))
        if best_err is None or err < best_err:
            best_bound, best_err = bound, err
    return max(best_bound, _MIN_BOUND)


def kl_bound(x: np.ndarray, bits: int, histogram_bins: int = 1024) -> float:
    """TensorRT-style KL calibration on the magnitude histogram.

    For each candidate clip point, the reference distribution (counts up
    to the clip, tail folded into the last bin) is compared against its
    quantized re-expansion over ``2^(bits-1)`` levels; the candidate with
    the smallest KL divergence wins.
    """
    flat = _finite_magnitudes(x)
    if flat.size == 0 or flat.max() == 0:
        return 1.0
    counts, edges = np.histogram(flat, bins=histogram_bins)
    target_levels = 2 ** (bits - 1)

    best_bound, best_divergence = float(flat.max()), None
    for stop in range(target_levels * 2, histogram_bins + 1, max(1, histogram_bins // 64)):
        reference = counts[:stop].astype(np.float64).copy()
        reference[-1] += counts[stop:].sum()  # fold the clipped tail in
        if reference.sum() == 0:
            continue

        # Re-expand: group `stop` bins into `target_levels` buckets.
        groups = np.array_split(np.arange(stop), target_levels)
        quantized = np.zeros(stop)
        for group in groups:
            occupied = counts[group] > 0
            total = reference[group].sum()
            if occupied.sum():
                quantized[group[occupied]] = total / occupied.sum()

        p = reference / reference.sum()
        q = quantized / max(quantized.sum(), 1e-12)
        mask = p > 0
        divergence = float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], 1e-12))))
        if best_divergence is None or divergence < best_divergence:
            best_divergence = divergence
            best_bound = float(edges[stop])
    return max(best_bound, _MIN_BOUND)


CALIBRATION_STRATEGIES = {
    "absmax": absmax_bound,
    "percentile": percentile_bound,
    "mse": mse_bound,
    "kl": kl_bound,
}


def calibrated_uniform(x: np.ndarray, bits: int, strategy: str = "absmax") -> UniformQuantizer:
    """Fit a symmetric uniform quantizer with the chosen range strategy."""
    if strategy not in CALIBRATION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choices: {sorted(CALIBRATION_STRATEGIES)}"
        )
    bound = CALIBRATION_STRATEGIES[strategy](np.asarray(x), bits)
    quantizer = UniformQuantizer(bits)
    quantizer.delta = max(bound, 1e-12) / (2 ** (bits - 1) - 1)
    quantizer.fitted = True
    return quantizer
