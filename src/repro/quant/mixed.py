"""Mixed-precision bit allocation over QUQ taps (extension experiment).

The paper quantizes every tensor at one bit-width.  A natural extension —
enabled by QUQ's constant per-tensor side information — is to spend bits
where they matter: starting from a low-precision configuration, repeatedly
promote the most sensitive tap to the next bit-width until an average-bits
budget is exhausted.  Sensitivities come from
:func:`repro.analysis.sensitivity.tap_sensitivity`.
"""

from __future__ import annotations

import numpy as np

from .qmodel import PTQPipeline, make_quantizer
from .observers import classify_tap

__all__ = ["allocate_mixed_precision"]


def allocate_mixed_precision(
    pipeline: PTQPipeline,
    sensitivities: dict[str, float],
    budget_bits: float,
    calib_images: np.ndarray,
    bit_choices: tuple[int, ...] = (4, 6, 8),
) -> dict[str, int]:
    """Assign a bit-width per tap under a mean-bits budget.

    Greedy promotion: all taps start at ``min(bit_choices)``; while the
    average assigned width stays below ``budget_bits``, the tap with the
    highest remaining sensitivity is promoted one step.  Returns the
    allocation and refits the pipeline's quantizers in place.
    """
    if not pipeline.calibrated:
        raise RuntimeError("calibrate the pipeline first")
    choices = sorted(bit_choices)
    if not choices:
        raise ValueError("bit_choices must not be empty")
    if not choices[0] <= budget_bits <= choices[-1]:
        raise ValueError(
            f"budget {budget_bits} outside achievable range {choices[0]}..{choices[-1]}"
        )

    taps = sorted(pipeline.env.quantizers)
    allocation = {name: choices[0] for name in taps}
    # Promotion priority: sensitivity, highest first, re-queued per level.
    order = sorted(taps, key=lambda n: sensitivities.get(n, 0.0), reverse=True)

    def average() -> float:
        return float(np.mean([allocation[name] for name in taps]))

    level = 0
    while level < len(choices) - 1:
        promoted_any = False
        for name in order:
            if allocation[name] != choices[level]:
                continue
            step = choices[level + 1] - choices[level]
            if average() + step / len(taps) > budget_bits + 1e-9:
                continue
            allocation[name] = choices[level + 1]
            promoted_any = True
        if not promoted_any:
            break
        level += 1

    # Refit every quantizer at its assigned width.
    _refit(pipeline, allocation, calib_images)
    return allocation


def _refit(
    pipeline: PTQPipeline, allocation: dict[str, int], calib_images: np.ndarray
) -> None:
    """Refit the pipeline's quantizers at per-tap bit-widths."""
    from ..autograd import Tensor, no_grad

    env = pipeline.env
    activation_taps = [
        n for n in allocation if not n.endswith(".weight")
    ]
    env.phase = "observe"
    env.watched = set(activation_taps)
    env.clear_observations()
    with no_grad():
        pipeline.model(Tensor(calib_images))

    parameters = dict(pipeline.model.named_parameters())
    new_quantizers = {}
    for name, bits in allocation.items():
        quantizer = make_quantizer(
            pipeline.method, classify_tap(name), name, bits, pipeline.pra_config
        )
        if name.endswith(".weight"):
            param_name = name.split(".", 1)[1] if "." in name else name
            data = parameters[param_name].data
        else:
            data = env.observed(name)
        new_quantizers[name] = quantizer.fit(data)
    env.quantizers = new_quantizers
    env.phase = "quantize"
    env.watched = None
    env.clear_observations()
