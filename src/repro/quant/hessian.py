"""Hessian-weighted grid search over quantizer scales.

The paper follows PTQ4ViT: after the progressive relaxation algorithm
produces the four scale factors, a layer-wise grid search refines them
using second-order information.  We use the diagonal Fisher approximation
(the squared gradient of the network loss w.r.t. each activation/weight
element) as the Hessian surrogate and minimize

    sum_i  h_i * (x_i - Q_alpha(x_i))^2

over a grid of uniform rescalings ``alpha`` of the fitted quantizer.  A
uniform rescaling preserves QUQ's Eq. (4) power-of-two structure, so every
candidate remains hardware-legal.

Gradients are taken against the model's own predictions (no labels
needed), the standard label-free PTQ objective.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import cross_entropy
from .observers import TapKind, classify_tap
from .qmodel import PTQPipeline

__all__ = ["DEFAULT_GRID", "hessian_refine"]

#: PTQ4ViT-style search range around the fitted scale.
DEFAULT_GRID = tuple(np.round(np.linspace(0.5, 1.2, 15), 4))

#: Cap on elements used per tap during the search (keeps runtime bounded).
_MAX_ELEMENTS = 65536


def _subsample(*arrays: np.ndarray, seed: int = 0) -> tuple[np.ndarray, ...]:
    size = arrays[0].size
    if size <= _MAX_ELEMENTS:
        return tuple(a.reshape(-1) for a in arrays)
    index = np.random.default_rng(seed).choice(size, _MAX_ELEMENTS, replace=False)
    return tuple(a.reshape(-1)[index] for a in arrays)


def _weighted_error(x: np.ndarray, h: np.ndarray, quantized: np.ndarray) -> float:
    return float(np.mean(h * (x - quantized) ** 2))


def hessian_refine(
    pipeline: PTQPipeline,
    calib_images: np.ndarray,
    grid: tuple[float, ...] = DEFAULT_GRID,
    batch_size: int = 32,
    weighted: bool = True,
) -> dict[str, float]:
    """Refine every fitted quantizer's scale; returns tap -> chosen alpha.

    Quantizers that do not support rescaling (e.g. log2) are left
    untouched.  Taps whose activations carry no gradient (those upstream of
    every parameter, like the patch-embedding input) fall back to plain
    MSE (h = 1).  ``weighted=False`` disables the Hessian weighting
    entirely (plain-MSE grid search, the PTQ4ViT-without-Hessian ablation).
    """
    if not pipeline.calibrated:
        raise RuntimeError("pipeline must be calibrated before hessian_refine")

    env = pipeline.env
    model = pipeline.model
    activation_taps = [
        n for n in env.quantizers if classify_tap(n) is not TapKind.WEIGHT
    ]
    weight_taps = [n for n in env.quantizers if classify_tap(n) is TapKind.WEIGHT]

    # ------------------------------------------------------------------
    # Pass 1: record activations and their gradients on the float model.
    # ------------------------------------------------------------------
    env.phase = "observe"
    env.watched = set(activation_taps)
    env.capture_grads = True
    env.clear_observations()
    model.eval()
    model.zero_grad()
    for start in range(0, len(calib_images), batch_size):
        chunk = Tensor(calib_images[start : start + batch_size])
        logits = model(chunk)
        targets = logits.data.argmax(axis=-1)
        loss = cross_entropy(logits, targets)
        loss.backward()
    env.capture_grads = False

    # ------------------------------------------------------------------
    # Pass 2: per-tap grid search.
    # ------------------------------------------------------------------
    chosen: dict[str, float] = {}
    parameters = dict(model.named_parameters())
    for name in activation_taps + weight_taps:
        quantizer = env.quantizers[name]
        if not hasattr(quantizer, "scaled"):
            chosen[name] = 1.0
            continue

        if classify_tap(name) is TapKind.WEIGHT:
            # Weights keep their shape (row-wise quantizers need it) and
            # are small enough to skip subsampling.
            param_name = name.split(".", 1)[1] if "." in name else name
            param = parameters[param_name]
            x = param.data.astype(np.float64)
            h = (
                (param.grad.astype(np.float64) ** 2)
                if weighted and param.grad is not None
                else np.ones_like(x)
            )
        else:
            x = env.observed(name).astype(np.float64)
            if weighted and env.grad_records.get(name):
                h = env.observed_gradients(name).astype(np.float64) ** 2
            else:
                h = np.ones_like(x)
            if h.size != x.size:
                # Gradient capture can miss batches on no-grad paths;
                # degrade gracefully to unweighted MSE rather than misalign.
                h = np.ones_like(x)
            x, h = _subsample(x, h)

        best_alpha, best_err = 1.0, None
        for alpha in grid:
            candidate = quantizer.scaled(alpha)
            err = _weighted_error(x, h, candidate.fake_quantize(x).astype(np.float64))
            if best_err is None or err < best_err:
                best_alpha, best_err = float(alpha), err
        env.quantizers[name] = quantizer.scaled(best_alpha)
        chosen[name] = best_alpha

    # Restore the quantizing dispatcher state.  The grid search replaced
    # quantizer objects wholesale, so the weight cache re-warms against the
    # refined scales before inference resumes.
    env.phase = "quantize"
    env.watched = None
    env.clear_observations()
    env.invalidate_weight_cache()
    model.zero_grad()
    pipeline.warm_weight_cache()
    return chosen
