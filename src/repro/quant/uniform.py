"""Uniform quantization (Eq. 1 of the paper) — the BaseQ baseline.

Provides the symmetric scheme the paper quantizes against, plus the
asymmetric (affine) and row-wise variants needed by the FQ-ViT baseline.
"""

from __future__ import annotations

import numpy as np

from .base import Quantizer

__all__ = [
    "symmetric_uniform_quantize",
    "symmetric_uniform_dequantize",
    "UniformQuantizer",
    "AsymmetricUniformQuantizer",
    "RowwiseUniformQuantizer",
]


def symmetric_uniform_quantize(x: np.ndarray, delta: float, bits: int) -> np.ndarray:
    """Eq. (1): ``clip(round(x / delta), -2^(b-1), 2^(b-1) - 1)``.

    Returns integer codes as ``int64``.
    """
    if delta <= 0:
        raise ValueError(f"scale factor must be positive, got {delta}")
    low, high = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    codes = np.rint(np.asarray(x, dtype=np.float64) / delta)
    return np.clip(codes, low, high).astype(np.int64)


def symmetric_uniform_dequantize(codes: np.ndarray, delta: float) -> np.ndarray:
    """Inverse of :func:`symmetric_uniform_quantize` (up to clipping)."""
    return (codes.astype(np.float64) * delta).astype(np.float32)


def _percentile_absmax(x: np.ndarray, percentile: float) -> float:
    magnitudes = np.abs(x.reshape(-1))
    if magnitudes.size == 0:
        return 0.0
    if percentile >= 100.0:
        return float(magnitudes.max())
    return float(np.percentile(magnitudes, percentile))


class UniformQuantizer(Quantizer):
    """Symmetric uniform quantization with an abs-max (or percentile) scale.

    This is "BaseQ" in the paper's tables: one scale factor for the whole
    tensor, codes in ``[-2^(b-1), 2^(b-1) - 1]``.
    """

    def __init__(self, bits: int, percentile: float = 100.0):
        super().__init__(bits)
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = percentile
        self.delta: float = 0.0

    def fit(self, x: np.ndarray) -> "UniformQuantizer":
        bound = _percentile_absmax(x, self.percentile)
        levels = 2 ** (self.bits - 1) - 1
        self.delta = bound / levels if bound > 0 else 1.0
        self.fitted = True
        return self

    def quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return symmetric_uniform_quantize(x, self.delta, self.bits)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return symmetric_uniform_dequantize(codes, self.delta)

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        return self.dequantize(self.quantize(x))

    def scaled(self, factor: float) -> "UniformQuantizer":
        """Copy with the scale factor multiplied by ``factor``."""
        clone = UniformQuantizer(self.bits, self.percentile)
        clone.delta = self.delta * factor
        clone.fitted = self.fitted
        return clone


class AsymmetricUniformQuantizer(Quantizer):
    """Affine (zero-point) uniform quantization over ``[min, max]``.

    Used by the FQ-ViT-style baseline for activations whose range is
    one-sided; *not* used by QUQ, which instead anchors every subrange at
    zero precisely to avoid carrying zero points (Section 3.2).
    """

    def __init__(self, bits: int):
        super().__init__(bits)
        self.delta: float = 0.0
        self.zero_point: int = 0

    def fit(self, x: np.ndarray) -> "AsymmetricUniformQuantizer":
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        low = float(min(flat.min(), 0.0)) if flat.size else 0.0
        high = float(max(flat.max(), 0.0)) if flat.size else 1.0
        span = high - low
        levels = 2**self.bits - 1
        self.delta = span / levels if span > 0 else 1.0
        self.zero_point = int(np.rint(-low / self.delta))
        self.fitted = True
        return self

    def quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        codes = np.rint(np.asarray(x, dtype=np.float64) / self.delta) + self.zero_point
        return np.clip(codes, 0, 2**self.bits - 1).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return ((codes.astype(np.float64) - self.zero_point) * self.delta).astype(
            np.float32
        )

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        return self.dequantize(self.quantize(x))

    def scaled(self, factor: float) -> "AsymmetricUniformQuantizer":
        """Copy with the scale factor multiplied by ``factor``."""
        clone = AsymmetricUniformQuantizer(self.bits)
        clone.delta = self.delta * factor
        clone.zero_point = self.zero_point
        clone.fitted = self.fitted
        return clone


class RowwiseUniformQuantizer(Quantizer):
    """Symmetric uniform quantization with one scale per output row.

    Models FQ-ViT's row-wise weight quantization.  The paper points out the
    cost of this scheme (distinct parameters per row vector, extra memory
    and requantization complexity); :meth:`bits_per_element` accounts for
    the per-row scale storage so the memory comparison is fair.
    """

    def __init__(self, bits: int, axis: int = -1):
        super().__init__(bits)
        self.axis = axis
        self.deltas: np.ndarray | None = None
        self._row_count = 0
        self._elements = 0

    def fit(self, x: np.ndarray) -> "RowwiseUniformQuantizer":
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, self.axis, -1)
        rows = moved.reshape(-1, moved.shape[-1]) if moved.ndim > 1 else moved[None, :]
        bounds = np.abs(rows).max(axis=-1)
        levels = 2 ** (self.bits - 1) - 1
        self.deltas = np.where(bounds > 0, bounds / levels, 1.0)
        self._row_count = rows.shape[0]
        self._elements = x.size
        self.fitted = True
        return self

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, self.axis, -1)
        original_shape = moved.shape
        rows = moved.reshape(-1, original_shape[-1])
        if rows.shape[0] != len(self.deltas):
            raise ValueError(
                f"row count changed between fit ({len(self.deltas)}) and "
                f"quantize ({rows.shape[0]})"
            )
        low, high = -(2 ** (self.bits - 1)), 2 ** (self.bits - 1) - 1
        codes = np.clip(np.rint(rows / self.deltas[:, None]), low, high)
        out = (codes * self.deltas[:, None]).reshape(original_shape)
        return np.moveaxis(out, -1, self.axis).astype(np.float32)

    def scaled(self, factor: float) -> "RowwiseUniformQuantizer":
        """Copy with every row scale multiplied by ``factor``."""
        self._require_fitted()
        clone = RowwiseUniformQuantizer(self.bits, self.axis)
        clone.deltas = self.deltas * factor
        clone._row_count = self._row_count
        clone._elements = self._elements
        clone.fitted = True
        return clone

    def bits_per_element(self) -> float:
        self._require_fitted()
        # One fp32 scale per row, amortized over the tensor.
        overhead = 32.0 * self._row_count / max(1, self._elements)
        return self.bits + overhead
