"""Export a QUQ-quantized model as a deployable artifact.

Packs every weight tensor into its wire format — QUB bytes plus the two
FC-register bytes and one base scale factor per tensor — and records the
fitted activation parameters the accelerator's quantization units need.
This is the storage story behind Figure 2: per tensor, QUQ's side
information is constant (9 bytes), unlike row-wise or index-table schemes.

The artifact is a single ``.npz``; :func:`load_quantized` restores the
weight QUBs and parameter tables, and :func:`deployment_report` summarizes
the achieved compression against FP32.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .observers import TapKind, classify_tap
from .params import QUQParams, Subrange, SubrangeSpec
from .qmodel import PTQPipeline
from .qub import FCRegisters, encode, legalize_for_hardware
from .quq import QUQQuantizer, quantize_with_params

__all__ = ["export_quantized", "load_quantized", "deployment_report", "QuantizedArtifact"]

_SUBRANGE_ORDER = (Subrange.F_NEG, Subrange.F_POS, Subrange.C_NEG, Subrange.C_POS)


def _pack_params(params: QUQParams) -> np.ndarray:
    """Serialize QUQParams into a flat float64 record.

    Layout: ``[bits, delta_F-, levels_F-, ..., delta_C+, levels_C+]`` with
    merged subranges stored as ``(0, 0)``.
    """
    record = [float(params.bits)]
    for subrange in _SUBRANGE_ORDER:
        spec = params.spec(subrange)
        record += [spec.delta, float(spec.levels)] if spec else [0.0, 0.0]
    return np.asarray(record, dtype=np.float64)


def _unpack_params(record: np.ndarray) -> QUQParams:
    bits = int(record[0])
    specs = []
    for index in range(4):
        delta, levels = record[1 + 2 * index], record[2 + 2 * index]
        specs.append(SubrangeSpec(float(delta), int(levels)) if levels else None)
    return QUQParams(bits, *specs)


@dataclass
class QuantizedArtifact:
    """In-memory form of an exported model."""

    bits: int
    #: weight tap -> (qub bytes, fine register, coarse register, params)
    weights: dict[str, tuple[np.ndarray, int, int, QUQParams]]
    #: activation tap -> params (for the accelerator's QUs)
    activations: dict[str, QUQParams]

    def weight_values(self, tap: str) -> np.ndarray:
        """Decode one weight tensor back to float (for verification)."""
        from .qub import SpaceRegister, decode

        qubs, fine, coarse, params = self.weights[tap]
        registers = FCRegisters(SpaceRegister.unpack(fine), SpaceRegister.unpack(coarse))
        d, n_sh = decode(qubs, registers, params.bits)
        return (d.astype(np.float64) * (2.0**n_sh) * params.base_delta).astype(
            np.float32
        )

    def payload_bytes(self) -> int:
        """Total artifact payload: QUBs plus per-tensor side information."""
        total = 0
        for qubs, _, _, params in self.weights.values():
            total += qubs.nbytes + 2 + 8  # FC registers + base delta
        total += len(self.activations) * (2 + 8)
        return total


def export_quantized(pipeline: PTQPipeline, path: str | Path) -> QuantizedArtifact:
    """Export a calibrated ``method="quq"`` pipeline to ``path`` (.npz)."""
    if not pipeline.calibrated:
        raise RuntimeError("calibrate the pipeline before exporting")
    if pipeline.method != "quq":
        raise ValueError("export is defined for QUQ-quantized models")

    parameters = dict(pipeline.model.named_parameters())
    weights: dict[str, tuple[np.ndarray, int, int, QUQParams]] = {}
    activations: dict[str, QUQParams] = {}
    payload: dict[str, np.ndarray] = {"__bits__": np.array([pipeline.bits])}

    for name, quantizer in pipeline.env.quantizers.items():
        if not isinstance(quantizer, QUQQuantizer):
            raise TypeError(f"non-QUQ quantizer at tap {name}")
        params = legalize_for_hardware(quantizer.params)
        if classify_tap(name) is TapKind.WEIGHT:
            param_name = name.split(".", 1)[1] if "." in name else name
            data = parameters[param_name].data
            qubs, registers = encode(quantize_with_params(data, params))
            weights[name] = (qubs, registers.fine.pack(), registers.coarse.pack(), params)
            payload[f"w:{name}"] = qubs
            payload[f"wr:{name}"] = np.array(
                [registers.fine.pack(), registers.coarse.pack()], dtype=np.uint8
            )
            payload[f"wp:{name}"] = _pack_params(params)
            payload[f"ws:{name}"] = np.array(data.shape, dtype=np.int64)
        else:
            activations[name] = params
            payload[f"ap:{name}"] = _pack_params(params)

    np.savez_compressed(Path(path), **payload)
    return QuantizedArtifact(pipeline.bits, weights, activations)


def load_quantized(path: str | Path) -> QuantizedArtifact:
    """Load an artifact produced by :func:`export_quantized`."""
    payload = np.load(Path(path))
    bits = int(payload["__bits__"][0])
    weights = {}
    activations = {}
    for key in payload.files:
        if key.startswith("w:"):
            name = key[2:]
            registers = payload[f"wr:{name}"]
            params = _unpack_params(payload[f"wp:{name}"])
            shape = tuple(payload[f"ws:{name}"])
            weights[name] = (
                payload[key].reshape(shape),
                int(registers[0]),
                int(registers[1]),
                params,
            )
        elif key.startswith("ap:"):
            activations[key[3:]] = _unpack_params(payload[key])
    return QuantizedArtifact(bits, weights, activations)


def deployment_report(pipeline: PTQPipeline) -> dict[str, float]:
    """Compression summary of a calibrated QUQ pipeline (no file written)."""
    parameters = dict(pipeline.model.named_parameters())
    fp32_bytes = sum(p.data.nbytes for p in parameters.values())
    weight_elements = 0
    for name in pipeline.tap_names():
        if classify_tap(name) is TapKind.WEIGHT:
            param_name = name.split(".", 1)[1] if "." in name else name
            weight_elements += parameters[param_name].data.size
    quantized_bytes = weight_elements * pipeline.bits / 8.0
    side_bytes = len(pipeline.tap_names()) * (2 + 8)
    return {
        "fp32_megabytes": fp32_bytes / 2**20,
        "quantized_megabytes": (quantized_bytes + side_bytes) / 2**20,
        "compression": fp32_bytes / max(quantized_bytes + side_bytes, 1),
        "side_info_bytes": float(side_bytes),
    }
