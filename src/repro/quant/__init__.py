"""Quantization: QUQ (the paper's contribution), baselines, and the PTQ pipeline."""

from .base import Quantizer
from .params import Mode, QUQParams, Subrange, SubrangeSpec
from .relax import PRAConfig, progressive_relaxation, relax_two_scale_factors
from .quq import SUBRANGE_IDS, QUQQuantizer, QuantizedTensor, quantize_with_params
from .qub import (
    MAX_SHIFT,
    FCRegisters,
    SpaceRegister,
    decode,
    encode,
    encode_batch,
    legalize_for_hardware,
)
from .uniform import (
    AsymmetricUniformQuantizer,
    RowwiseUniformQuantizer,
    UniformQuantizer,
    symmetric_uniform_dequantize,
    symmetric_uniform_quantize,
)
from .baselines import BiScaledQuantizer, Log2Quantizer, TwinUniformQuantizer
from .observers import QuantEnv, TapKind, classify_tap, taps_for_coverage
from .qmodel import METHODS, PTQPipeline, make_quantizer
from .hessian import DEFAULT_GRID, hessian_refine
from .metrics import cosine_similarity, mse, sqnr_db
from .export import QuantizedArtifact, deployment_report, export_quantized, load_quantized
from .serialize import (
    ChecksumError,
    load_quantizer_states,
    quantizer_from_state,
    quantizer_state,
    save_quantizer_states,
)
from .mixed import allocate_mixed_precision
from .calibration import (
    CALIBRATION_STRATEGIES,
    absmax_bound,
    calibrated_uniform,
    kl_bound,
    mse_bound,
    percentile_bound,
)
from .drift import (
    DriftMonitor,
    DriftScores,
    DriftThresholds,
    DriftVerdict,
    TapFingerprint,
    TapStatsRecorder,
    fingerprint_pipeline,
    population_stability_index,
)

__all__ = [
    "Quantizer",
    "Mode",
    "QUQParams",
    "Subrange",
    "SubrangeSpec",
    "PRAConfig",
    "progressive_relaxation",
    "relax_two_scale_factors",
    "QUQQuantizer",
    "QuantizedTensor",
    "quantize_with_params",
    "SUBRANGE_IDS",
    "FCRegisters",
    "SpaceRegister",
    "encode",
    "encode_batch",
    "decode",
    "legalize_for_hardware",
    "MAX_SHIFT",
    "UniformQuantizer",
    "AsymmetricUniformQuantizer",
    "RowwiseUniformQuantizer",
    "symmetric_uniform_quantize",
    "symmetric_uniform_dequantize",
    "BiScaledQuantizer",
    "Log2Quantizer",
    "TwinUniformQuantizer",
    "QuantEnv",
    "TapKind",
    "classify_tap",
    "taps_for_coverage",
    "METHODS",
    "PTQPipeline",
    "make_quantizer",
    "DEFAULT_GRID",
    "hessian_refine",
    "mse",
    "sqnr_db",
    "cosine_similarity",
    "QuantizedArtifact",
    "export_quantized",
    "load_quantized",
    "deployment_report",
    "quantizer_state",
    "quantizer_from_state",
    "save_quantizer_states",
    "ChecksumError",
    "load_quantizer_states",
    "allocate_mixed_precision",
    "CALIBRATION_STRATEGIES",
    "absmax_bound",
    "percentile_bound",
    "mse_bound",
    "kl_bound",
    "calibrated_uniform",
    "DriftMonitor",
    "DriftScores",
    "DriftThresholds",
    "DriftVerdict",
    "TapFingerprint",
    "TapStatsRecorder",
    "fingerprint_pipeline",
    "population_stability_index",
]
