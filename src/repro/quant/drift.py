"""Calibration fingerprints and online activation-drift detection.

A PTQ quantizer is a bet that serving traffic looks like the calibration
set; QUQ's quadruplet layout in particular is fitted to the observed
long-tailed distribution (PAPER.md Section 3), so a shifted input
distribution silently clips into the wrong subranges.  This module makes
that bet observable:

* :class:`TapFingerprint` — compact per-tap statistics recorded at
  calibration time (absmax, percentiles, mean/std, the clip bound and its
  baseline clip rate, and a fixed-edge histogram).
* :func:`fingerprint_pipeline` — fingerprint every activation tap of a
  calibrated :class:`~repro.quant.qmodel.PTQPipeline` (plus the ``input``
  pseudo-tap) by re-observing the calibration set.
* :class:`DriftMonitor` — compares live batch statistics against the
  fingerprints (clip-rate inflation, range overflow, population-stability
  index) and turns per-batch scores into thresholded, *sustained*
  verdicts that the serving layer can act on.
* :class:`TapStatsRecorder` — the lightweight hook the serving engine
  attaches to a :class:`~repro.quant.observers.QuantEnv` so live
  activation statistics are sampled during normal quantized forwards.

Everything is JSON-serializable (``to_dict``/``from_dict``) so
fingerprints can ship alongside the serialized quantizer state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FINGERPRINT_PERCENTILES",
    "HISTOGRAM_BINS",
    "INPUT_TAP",
    "TapFingerprint",
    "DriftScores",
    "DriftThresholds",
    "DriftVerdict",
    "DriftMonitor",
    "TapStatsRecorder",
    "population_stability_index",
    "fingerprint_pipeline",
]

#: Percentiles of |x| recorded per fingerprint (the last one doubles as
#: the clip bound the live clip rate is measured against).
FINGERPRINT_PERCENTILES = (50.0, 90.0, 99.0, 99.9)

#: Fixed histogram resolution for the population-stability index.
HISTOGRAM_BINS = 16

#: Pseudo-tap name for the raw input images (monitored even when no
#: activation tap is sampled on a given batch).
INPUT_TAP = "input"

_EPS = 1e-12


def population_stability_index(
    expected: np.ndarray, actual: np.ndarray, eps: float = 1e-4
) -> float:
    """PSI between two probability vectors over the same bins.

    The standard scorecard-monitoring statistic: < 0.1 is stable, 0.1-0.25
    is a moderate shift, > 0.25 is a significant shift.
    """
    p = np.maximum(np.asarray(expected, dtype=np.float64), eps)
    q = np.maximum(np.asarray(actual, dtype=np.float64), eps)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


@dataclass
class DriftScores:
    """How one live batch compares to one tap's fingerprint."""

    tap: str
    count: int
    psi: float
    clip_rate: float
    overflow_ratio: float  # live absmax / calibration absmax
    nonfinite_rate: float

    def reasons(self, thresholds: "DriftThresholds") -> list[str]:
        """Which thresholds this batch crossed (empty = no drift)."""
        out = []
        if self.psi > thresholds.psi:
            out.append(f"psi {self.psi:.3f} > {thresholds.psi}")
        if self.clip_rate > thresholds.clip_rate:
            out.append(f"clip_rate {self.clip_rate:.3f} > {thresholds.clip_rate}")
        if self.overflow_ratio > thresholds.overflow_ratio:
            out.append(
                f"overflow {self.overflow_ratio:.2f}x > {thresholds.overflow_ratio}x"
            )
        if self.nonfinite_rate > 0:
            out.append(f"nonfinite_rate {self.nonfinite_rate:.4f} > 0")
        return out

    def to_dict(self) -> dict:
        return {
            "tap": self.tap,
            "count": self.count,
            "psi": round(self.psi, 6),
            "clip_rate": round(self.clip_rate, 6),
            "overflow_ratio": round(self.overflow_ratio, 6),
            "nonfinite_rate": round(self.nonfinite_rate, 6),
        }


@dataclass
class TapFingerprint:
    """Calibration-time distribution summary for one tap."""

    absmax: float
    mean: float
    std: float
    percentiles: dict[str, float]  # str(p) -> |x| percentile
    clip_bound: float  # magnitude above which a live value counts as clipped
    baseline_clip_rate: float  # clip rate of the calibration data itself
    edges: np.ndarray  # HISTOGRAM_BINS + 1 bin edges over the value range
    probs: np.ndarray  # HISTOGRAM_BINS reference probabilities
    count: int

    @classmethod
    def from_data(cls, data: np.ndarray) -> "TapFingerprint":
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        finite = flat[np.isfinite(flat)]
        if finite.size == 0:
            finite = np.zeros(1)
        magnitudes = np.abs(finite)
        absmax = float(magnitudes.max())
        percentiles = {
            str(p): float(np.percentile(magnitudes, p)) for p in FINGERPRINT_PERCENTILES
        }
        clip_bound = max(percentiles[str(FINGERPRINT_PERCENTILES[-1])], _EPS)
        counts, edges = np.histogram(finite, bins=HISTOGRAM_BINS)
        return cls(
            absmax=absmax,
            mean=float(finite.mean()),
            std=float(finite.std()),
            percentiles=percentiles,
            clip_bound=clip_bound,
            baseline_clip_rate=float(np.mean(magnitudes > clip_bound)),
            edges=edges.astype(np.float64),
            probs=(counts / max(counts.sum(), 1)).astype(np.float64),
            count=int(finite.size),
        )

    def compare(self, data: np.ndarray) -> DriftScores:
        """Score one live batch against this fingerprint."""
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        finite_mask = np.isfinite(flat)
        finite = flat[finite_mask]
        nonfinite_rate = float(1.0 - finite_mask.mean()) if flat.size else 0.0
        if finite.size == 0:
            return DriftScores(
                tap="", count=int(flat.size), psi=float("inf"),
                clip_rate=1.0, overflow_ratio=float("inf"),
                nonfinite_rate=nonfinite_rate,
            )
        magnitudes = np.abs(finite)
        clipped = float(np.mean(magnitudes > self.clip_bound)) + nonfinite_rate
        overflow = float(magnitudes.max()) / max(self.absmax, _EPS)
        bounded = np.clip(finite, self.edges[0], self.edges[-1])
        counts, _ = np.histogram(bounded, bins=self.edges)
        psi = population_stability_index(self.probs, counts / max(counts.sum(), 1))
        return DriftScores(
            tap="", count=int(flat.size), psi=psi, clip_rate=clipped,
            overflow_ratio=overflow, nonfinite_rate=nonfinite_rate,
        )

    def to_dict(self) -> dict:
        return {
            "absmax": self.absmax,
            "mean": self.mean,
            "std": self.std,
            "percentiles": dict(self.percentiles),
            "clip_bound": self.clip_bound,
            "baseline_clip_rate": self.baseline_clip_rate,
            "edges": [float(e) for e in self.edges],
            "probs": [float(p) for p in self.probs],
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TapFingerprint":
        return cls(
            absmax=float(record["absmax"]),
            mean=float(record["mean"]),
            std=float(record["std"]),
            percentiles={k: float(v) for k, v in record["percentiles"].items()},
            clip_bound=float(record["clip_bound"]),
            baseline_clip_rate=float(record["baseline_clip_rate"]),
            edges=np.asarray(record["edges"], dtype=np.float64),
            probs=np.asarray(record["probs"], dtype=np.float64),
            count=int(record["count"]),
        )


@dataclass
class DriftThresholds:
    """When does a score count as drift, and when is drift *sustained*?

    ``consecutive`` drifted batches (with at least ``min_samples`` values
    observed across them) are required before a sustained verdict, so a
    single weird batch cannot trigger recalibration.
    """

    psi: float = 0.25
    clip_rate: float = 0.05
    overflow_ratio: float = 1.5
    consecutive: int = 3
    min_samples: int = 256

    def __post_init__(self):
        if self.psi <= 0 or self.clip_rate <= 0 or self.overflow_ratio <= 0:
            raise ValueError("psi, clip_rate and overflow_ratio must be > 0")
        if self.consecutive < 1 or self.min_samples < 1:
            raise ValueError("consecutive and min_samples must be >= 1")

    def to_dict(self) -> dict:
        return {
            "psi": self.psi,
            "clip_rate": self.clip_rate,
            "overflow_ratio": self.overflow_ratio,
            "consecutive": self.consecutive,
            "min_samples": self.min_samples,
        }


@dataclass
class DriftVerdict:
    """Outcome of one monitored batch."""

    drifted: bool  # at least one tap crossed a threshold this batch
    sustained: bool  # drift has persisted long enough to act on
    scores: dict[str, DriftScores] = field(default_factory=dict)
    reasons: dict[str, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "drifted": self.drifted,
            "sustained": self.sustained,
            "scores": {name: s.to_dict() for name, s in self.scores.items()},
            "reasons": dict(self.reasons),
        }


class DriftMonitor:
    """Streaming comparison of live batches against calibration fingerprints.

    Not internally locked: callers (the serving engine's per-lane drift
    state, or a single-threaded harness) serialize access themselves.
    """

    def __init__(
        self,
        fingerprints: dict[str, TapFingerprint],
        thresholds: DriftThresholds | None = None,
    ):
        if not fingerprints:
            raise ValueError("DriftMonitor needs at least one fingerprint")
        self.fingerprints = dict(fingerprints)
        self.thresholds = DriftThresholds() if thresholds is None else thresholds
        self._pending: dict[str, DriftScores] = {}
        self.consecutive_drifted = 0
        self.samples_seen = 0
        self.batches_seen = 0
        self.alerts = 0  # distinct entries into the sustained state
        self._alerting = False
        self.last_verdict: DriftVerdict | None = None

    # ------------------------------------------------------------------
    def observe(self, name: str, data: np.ndarray) -> DriftScores | None:
        """Score ``data`` against tap ``name``; None if not fingerprinted."""
        fingerprint = self.fingerprints.get(name)
        if fingerprint is None:
            return None
        scores = fingerprint.compare(data)
        scores.tap = name
        self._pending[name] = scores
        return scores

    def complete_batch(self) -> DriftVerdict:
        """Fold this batch's observations into the sustained-drift state."""
        scores, self._pending = self._pending, {}
        self.batches_seen += 1
        self.samples_seen += sum(s.count for s in scores.values())
        reasons = {
            name: why
            for name, s in scores.items()
            if (why := s.reasons(self.thresholds))
        }
        drifted = bool(reasons)
        self.consecutive_drifted = self.consecutive_drifted + 1 if drifted else 0
        sustained = (
            drifted
            and self.consecutive_drifted >= self.thresholds.consecutive
            and self.samples_seen >= self.thresholds.min_samples
        )
        if sustained and not self._alerting:
            self.alerts += 1
            self._alerting = True
        if not drifted:
            self._alerting = False
        verdict = DriftVerdict(drifted, sustained, scores, reasons)
        self.last_verdict = verdict
        return verdict

    def reset(self) -> None:
        """Forget streak state (after recalibration swaps the quantizer)."""
        self._pending = {}
        self.consecutive_drifted = 0
        self.samples_seen = 0
        self._alerting = False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        last = self.last_verdict
        return {
            "taps": sorted(self.fingerprints),
            "thresholds": self.thresholds.to_dict(),
            "batches_seen": self.batches_seen,
            "samples_seen": self.samples_seen,
            "consecutive_drifted": self.consecutive_drifted,
            "alerts": self.alerts,
            "last_verdict": last.to_dict() if last is not None else None,
        }


class TapStatsRecorder:
    """QuantEnv hook: route live tap tensors into a monitor's batch window.

    Attached (under the servable's lock) for the duration of one forward
    pass; it only computes scalar statistics, never copies activations.
    """

    def __init__(self, monitor: DriftMonitor):
        self.monitor = monitor

    def record(self, name: str, data: np.ndarray) -> None:
        self.monitor.observe(name, data)


_FINGERPRINT_SAMPLES_PER_BATCH = 1 << 16  # per-tap cap keeps memory bounded


class _CollectingRecorder:
    """Stats hook that retains (subsampled) tap values for fingerprinting."""

    def __init__(self, taps: set[str]):
        self.taps = taps
        self.collected: dict[str, list[np.ndarray]] = {name: [] for name in taps}

    def record(self, name: str, data: np.ndarray) -> None:
        chunks = self.collected.get(name)
        if chunks is None:
            return
        flat = np.asarray(data, dtype=np.float32).reshape(-1)
        if flat.size > _FINGERPRINT_SAMPLES_PER_BATCH:
            flat = flat[:: flat.size // _FINGERPRINT_SAMPLES_PER_BATCH + 1]
        chunks.append(np.array(flat))


def fingerprint_pipeline(
    pipeline,
    calib_images: np.ndarray,
    batch_size: int = 32,
    include_input: bool = True,
) -> dict[str, TapFingerprint]:
    """Fingerprint every fitted activation tap of a calibrated pipeline.

    Runs the calibration set through the *quantized* model with a
    collecting stats hook, so fingerprints describe exactly the
    distributions a live :class:`TapStatsRecorder` sees during serving:
    quantize-phase tap inputs, downstream of quantized predecessors.
    (Observe-phase re-runs would fingerprint the float activations and
    then flag quantization error itself as drift on clean traffic.)
    Weights are static and skipped.  Adds the ``input`` pseudo-tap so
    drift can be detected even on batches where no activation tap is
    sampled.
    """
    from ..autograd import Tensor, no_grad
    from .observers import TapKind, classify_tap

    if not pipeline.calibrated:
        raise RuntimeError("calibrate() must run before fingerprinting")
    activation_taps = {
        name
        for name in pipeline.tap_names()
        if classify_tap(name) is not TapKind.WEIGHT
    }
    env = pipeline.env
    env.phase = "quantize"
    pipeline.model.set_tap_dispatcher(env)
    pipeline.model.eval()
    collector = _CollectingRecorder(activation_taps)
    previous = env.stats_recorder
    env.stats_recorder = collector
    try:
        with no_grad():
            for start in range(0, len(calib_images), batch_size):
                pipeline.model(Tensor(calib_images[start : start + batch_size]))
    finally:
        env.stats_recorder = previous
    fingerprints = {
        name: TapFingerprint.from_data(np.concatenate(chunks))
        for name, chunks in collector.collected.items()
        if chunks
    }
    if include_input:
        fingerprints[INPUT_TAP] = TapFingerprint.from_data(calib_images)
    return fingerprints
