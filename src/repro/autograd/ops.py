"""Composite and structural operations built on the autograd primitives.

Everything a vision transformer needs beyond basic arithmetic lives here:
``softmax``, ``gelu``, ``layer_norm``, tensor concatenation, padding,
cyclic rolls (for Swin's shifted windows), gathers (for relative position
bias tables), masking, and the straight-through fake-quantization node used
by the PTQ pipeline.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.special import erf as _erf

from .tensor import Tensor, as_tensor

__all__ = [
    "erf",
    "gelu",
    "relu",
    "softmax",
    "log_softmax",
    "layer_norm",
    "concat",
    "stack",
    "pad2d",
    "roll",
    "take",
    "masked_fill",
    "straight_through",
    "unfold_patches",
    "unfold_windows",
]

_INV_SQRT_PI = 2.0 / np.sqrt(np.pi)
_INV_SQRT_2 = 1.0 / np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


def erf(x: Tensor) -> Tensor:
    """Gauss error function with its analytic derivative."""
    x = as_tensor(x)
    out_data = _erf(x.data).astype(np.float32)
    data = x.data

    def backward(g):
        return (g * _INV_SQRT_PI * np.exp(-data * data),)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Exact GELU, ``x * Phi(x)``, matching the reference ViT definition.

    Implemented as a fused primitive (single erf evaluation shared between
    forward and backward) because it sits on the training hot path.
    """
    x = as_tensor(x)
    data = x.data
    phi = 0.5 * (1.0 + _erf(data * _INV_SQRT_2))
    out_data = (data * phi).astype(np.float32)

    def backward(g):
        density = _INV_SQRT_2PI * np.exp(-0.5 * data * data)
        return (g * (phi + data * density),)

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(np.float32)

    def backward(g):
        return (g * mask,)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return Tensor._make(out_data.astype(np.float32), (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = (shifted - log_sum).astype(np.float32)
    soft = np.exp(out_data)

    def backward(g):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-6
) -> Tensor:
    """Layer normalization over the last dimension.

    Fused primitive computing ``(x - mean) / sqrt(var + eps) * weight + bias``
    with the standard analytic backward (appears twice per transformer block,
    so fusing it matters for training throughput).
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    data = x.data
    mean = data.mean(axis=-1, keepdims=True)
    centered = data - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalized = centered * inv_std
    out_data = (normalized * weight.data + bias.data).astype(np.float32)
    w_data = weight.data

    def backward(g):
        gw_hat = g * w_data
        mean_g = gw_hat.mean(axis=-1, keepdims=True)
        mean_gx = (gw_hat * normalized).mean(axis=-1, keepdims=True)
        gx = (gw_hat - mean_g - normalized * mean_gx) * inv_std
        reduce_axes = tuple(range(g.ndim - 1))
        gweight = (g * normalized).sum(axis=reduce_axes)
        gbias = g.sum(axis=reduce_axes)
        return (gx.astype(np.float32), gweight, gbias)

    return Tensor._make(out_data, (x, weight, bias), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, boundaries, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        slices = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(s, axis=axis) for s in slices)

    return Tensor._make(out_data, tuple(tensors), backward)


def pad2d(x: Tensor, pad: tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the two spatial dims of a ``(B, H, W, C)`` tensor.

    ``pad`` is ``(top, bottom, left, right)``.
    """
    top, bottom, left, right = pad
    widths = ((0, 0), (top, bottom), (left, right), (0, 0))
    out_data = np.pad(x.data, widths)
    h, w = x.shape[1], x.shape[2]

    def backward(g):
        return (g[:, top : top + h, left : left + w, :],)

    return Tensor._make(out_data, (x,), backward)


def roll(x: Tensor, shifts: tuple[int, ...], axes: tuple[int, ...]) -> Tensor:
    """Cyclically roll ``x`` (used for Swin's shifted windows)."""
    out_data = np.roll(x.data, shifts, axis=axes)
    inverse = tuple(-s for s in shifts)

    def backward(g):
        return (np.roll(g, inverse, axis=axes),)

    return Tensor._make(out_data, (x,), backward)


def take(table: Tensor, index: np.ndarray) -> Tensor:
    """Gather rows of ``table`` (first axis) by integer ``index``.

    Used for relative-position-bias lookups in window attention.  The
    gradient scatters back with ``np.add.at`` so repeated indices
    accumulate correctly.
    """
    index = np.asarray(index)
    out_data = table.data[index]
    shape = table.shape

    def backward(g):
        full = np.zeros(shape, dtype=np.float32)
        np.add.at(full, index, g)
        return (full,)

    return Tensor._make(out_data, (table,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries of ``x`` where ``mask`` is true with ``value``.

    ``mask`` is a plain boolean array (it is structural, never
    differentiated).  Gradients are blocked at masked positions.
    """
    mask = np.asarray(mask, dtype=bool)
    broadcast_mask = np.broadcast_to(mask, x.shape)
    out_data = np.where(broadcast_mask, np.float32(value), x.data)

    def backward(g):
        return (np.where(broadcast_mask, 0.0, g).astype(np.float32),)

    return Tensor._make(out_data, (x,), backward)


def straight_through(x: Tensor, transform: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Apply ``transform`` in the forward pass, identity in the backward.

    This is the straight-through estimator used to place fake-quantization
    nodes inside the autograd graph: the quantize-dequantize round trip
    changes the forward values while gradients flow through unchanged,
    which is exactly what the Hessian-weighted grid search needs.
    """
    out_data = np.asarray(transform(x.data), dtype=np.float32)
    if out_data.shape != x.data.shape:
        raise ValueError("straight_through transform must preserve shape")

    def backward(g):
        return (g,)

    return Tensor._make(out_data, (x,), backward)


def unfold_windows(x: Tensor, kernel: int, stride: int = 1, padding: int = 0) -> Tensor:
    """im2col: extract overlapping ``kernel x kernel`` windows.

    ``(B, H, W, C) -> (B, out_h * out_w, kernel * kernel * C)``, the
    lowering that turns a convolution into a GEMM (which is how the QUA
    accelerator executes convolutions).  The backward pass scatter-adds
    window gradients back to their source pixels.
    """
    if kernel < 1 or stride < 1 or padding < 0:
        raise ValueError("kernel/stride must be >= 1 and padding >= 0")
    data = x.data
    if padding:
        data = np.pad(data, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    b, h, w, c = data.shape
    if h < kernel or w < kernel:
        raise ValueError(f"padded input {h}x{w} smaller than kernel {kernel}")
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    # Gather indices into the flattened (padded) spatial grid.
    rows = (np.arange(out_h) * stride)[:, None] + np.arange(kernel)[None, :]
    cols = (np.arange(out_w) * stride)[:, None] + np.arange(kernel)[None, :]
    # (out_h, out_w, kernel, kernel) flat spatial index:
    flat_index = (
        rows[:, None, :, None] * w + cols[None, :, None, :]
    ).reshape(out_h * out_w, kernel * kernel)

    flat = data.reshape(b, h * w, c)
    out_data = flat[:, flat_index, :].reshape(b, out_h * out_w, kernel * kernel * c)
    in_h, in_w = x.shape[1], x.shape[2]

    def backward(g):
        g = g.reshape(b, out_h * out_w, kernel * kernel, c)
        grad_flat = np.zeros((b, h * w, c), dtype=np.float32)
        np.add.at(grad_flat, (slice(None), flat_index), g)
        grad = grad_flat.reshape(b, h, w, c)
        if padding:
            grad = grad[:, padding : padding + in_h, padding : padding + in_w, :]
        return (grad,)

    return Tensor._make(out_data, (x,), backward)


def unfold_patches(x: Tensor, patch: int) -> Tensor:
    """Rearrange ``(B, H, W, C)`` images into ``(B, N, patch*patch*C)`` patches.

    Equivalent to the strided convolution patch embedding in ViT when
    followed by a Linear layer; implemented as a pure reshape/transpose so
    the backward pass is exact.
    """
    b, h, w, c = x.shape
    if h % patch or w % patch:
        raise ValueError(f"image size {(h, w)} not divisible by patch {patch}")
    gh, gw = h // patch, w // patch
    out = x.reshape(b, gh, patch, gw, patch, c)
    out = out.transpose(0, 1, 3, 2, 4, 5)
    return out.reshape(b, gh * gw, patch * patch * c)
