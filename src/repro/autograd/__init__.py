"""From-scratch reverse-mode autograd engine (NumPy-backed)."""

from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .ops import (
    concat,
    erf,
    gelu,
    layer_norm,
    log_softmax,
    masked_fill,
    pad2d,
    relu,
    roll,
    softmax,
    stack,
    straight_through,
    take,
    unfold_patches,
    unfold_windows,
)
from .grad_check import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "erf",
    "gelu",
    "layer_norm",
    "log_softmax",
    "masked_fill",
    "pad2d",
    "relu",
    "roll",
    "softmax",
    "stack",
    "straight_through",
    "take",
    "unfold_patches",
    "unfold_windows",
    "check_gradients",
    "numerical_gradient",
]
