"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, a thin wrapper around
``numpy.ndarray`` that records the operations applied to it on a tape and can
replay them in reverse to accumulate gradients.  It is the substrate on which
the neural-network layers in :mod:`repro.nn` and the vision transformers in
:mod:`repro.models` are built.

Only the primitive operations live here; composite operations (softmax, GELU,
layer normalization, ...) are assembled from these primitives in
:mod:`repro.autograd.ops`.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` as plain ``numpy.ndarray``
  objects; higher-order differentiation is not supported (and not needed for
  the post-training-quantization experiments this library serves).
* Broadcasting follows NumPy semantics.  Every binary primitive reduces the
  upstream gradient back to the operand's shape via :func:`_unbroadcast`.
* ``float32`` is the default dtype, matching the precision regime the QUQ
  paper quantizes from.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording.

    Used for inference-only passes (calibration sweeps, quantized
    evaluation) where building the autograd graph would waste memory.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def _is_basic_index(index) -> bool:
    """True when ``index`` uses only basic (non-fancy) NumPy indexing."""
    items = index if isinstance(index, tuple) else (index,)
    return all(
        item is None
        or item is Ellipsis
        or isinstance(item, (int, np.integer, slice))
        for item in items
    )


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Floating-point inputs are stored as ``float32``
        unless they already carry a floating dtype.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype == np.float64:
            array = array.astype(np.float32)
        elif not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the tape when grad is enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones (appropriate for a scalar
            loss).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float32)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: this is where gradients are stored.  Intermediate
                # results do not retain .grad (saves one copy per node).
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return (
                _unbroadcast(g, self.shape),
                _unbroadcast(g, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        a_data, b_data = self.data, other.data

        def backward(g):
            return (
                _unbroadcast(g * b_data, self.shape),
                _unbroadcast(g * a_data, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        a_data, b_data = self.data, other.data

        def backward(g):
            return (
                _unbroadcast(g / b_data, self.shape),
                _unbroadcast(-g * a_data / (b_data * b_data), other.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        base = self.data

        def backward(g):
            return (g * exponent * base ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = np.matmul(self.data, other.data)
        a_data, b_data = self.data, other.data

        def backward(g):
            ga = gb = None
            if self.requires_grad:
                ga = np.matmul(g, np.swapaxes(b_data, -1, -2))
                ga = _unbroadcast(ga, self.shape)
            if other.requires_grad:
                if b_data.ndim == 2 and a_data.ndim > 2:
                    # Common Linear case: fold the batch dims into rows so
                    # the weight gradient is one GEMM instead of a batched
                    # GEMM followed by a large reduction.
                    rows = a_data.reshape(-1, a_data.shape[-1])
                    gb = rows.T @ g.reshape(-1, g.shape[-1])
                else:
                    gb = np.matmul(np.swapaxes(a_data, -1, -2), g)
                    gb = _unbroadcast(gb, other.shape)
            return (ga, gb)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(original),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(g):
            return (np.swapaxes(g, axis1, axis2),)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.shape
        basic = _is_basic_index(index)

        def backward(g):
            full = np.zeros(shape, dtype=np.float32)
            if basic:
                # Basic indexing selects each element at most once, so a
                # direct in-place add is safe and much faster than add.at.
                full[index] += g
            else:
                np.add.at(full, index, g)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, shape),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(shape) for a in axes)
                g_expanded = np.expand_dims(g, axes)
            return (np.broadcast_to(g_expanded, shape),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        data = self.data

        def backward(g):
            if axis is None:
                mask = (data == data.max()).astype(np.float32)
                mask /= mask.sum()
                return (mask * g,)
            expanded = data.max(axis=axis, keepdims=True)
            mask = (data == expanded).astype(np.float32)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(
                g, axis if isinstance(axis, tuple) else (axis,)
            )
            return (mask * g_expanded,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        data = self.data

        def backward(g):
            return (g / data,)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying existing ones."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
