"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every primitive and composite operation
against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    base = [np.asarray(a, dtype=np.float64) for a in inputs]
    grad = np.zeros_like(base[index])
    it = np.nditer(base[index], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[index][idx]

        base[index][idx] = original + eps
        plus = float(fn(*[Tensor(a) for a in base]).data.sum())
        base[index][idx] = original - eps
        minus = float(fn(*[Tensor(a) for a in base]).data.sum())
        base[index][idx] = original

        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-2,
    rtol: float = 1e-2,
    eps: float = 1e-3,
) -> None:
    """Assert analytic gradients match finite differences for every input.

    Raises ``AssertionError`` with the offending input index on mismatch.
    """
    tensors = [Tensor(np.asarray(a, dtype=np.float32), requires_grad=True) for a in inputs]
    out = fn(*tensors)
    out.backward(np.ones_like(out.data))
    for i, tensor in enumerate(tensors):
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(numeric)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}"
            )
