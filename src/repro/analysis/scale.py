"""Trace-driven scale benchmark: overload behavior under flash crowds.

Replays a seeded :mod:`repro.serve.traces` trace — diurnal baseline, a
flash crowd at a configured multiple of steady load, heavy-tailed tenant
mix, priority bands with deadlines — open-loop against a serving engine,
and audits the outcome the way a capacity review would:

* **availability** of *admitted* requests (completed / admitted) against
  a floor: admission control exists so that the requests the system
  accepts, it answers;
* **tail latency** (p50 / p99 / p99.9 over exact client-side samples,
  not reservoir estimates) against a bound — shedding is pointless if
  the survivors still time out;
* **shed accounting**: every refused request carries a typed reason
  (``shed`` / ``rate_limited`` / ``breaker_open`` / ``queue_full``), and
  the ledger must balance exactly — offered = admitted + rejected,
  admitted = completed + failed — the zero-silent-drop attestation;
* **per-tenant fairness**: each tenant's admitted share is compared to
  its fair-queue weight; a bounded ratio and zero starved tenants are
  required for a pass;
* **priority bands**: interactive deadline-miss rate against a bound
  while the lower bands absorb the shedding;
* **shard-loss recovery** (cluster engines): worker shards are
  SIGKILLed mid-trace — a single kill exercises supervision, and an
  optional *crash burst* repeatedly kills the same spec to drive the
  autoscaler's crash-loop quarantine;
* **elasticity** (when an :class:`~repro.serve.autoscaler.AutoscalePolicy`
  is attached): the flash crowd must produce at least one scale-up and,
  post-flash, at least one *drained* scale-down with zero in-flight
  losses; an idle secondary lane demonstrates capacity borrowing.

Exposed as ``python -m repro scale-bench``; the ``--tiny`` mode is fully
self-contained (random tiny ViT, synthetic calibration) for CI smoke,
and ``--trace FILE`` replays a recorded JSONL trace through the same
harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..serve.autoscaler import AutoscalePolicy, Autoscaler
from ..serve.registry import ModelKey
from ..serve.scheduler import PRIORITIES, QueueFullError
from ..serve.traces import TraceConfig, TraceEvent, generate_trace, tenant_mix, trace_stats

__all__ = [
    "SCHEMA_VERSION",
    "ScaleBenchConfig",
    "tiny_scale_servable",
    "run_scale_benchmark",
    "format_scale_report",
]

#: Schema version of the report dict (bump on breaking layout changes).
#: v2: adds ``priorities`` and ``autoscale`` sections, crash-burst
#: recovery fields, and recorded-trace replay.
SCHEMA_VERSION = 2


@dataclass
class ScaleBenchConfig:
    """One scale run: the trace to replay and the bars to clear."""

    spec: str = "vit_s/quq/6"
    trace: TraceConfig = field(default_factory=TraceConfig)
    # A recorded trace (list of TraceEvent) replayed *instead of* the
    # synthetic generator; ``trace`` still supplies the tenant mix /
    # flash-window metadata when set, but arrivals come from here.
    trace_events: list[TraceEvent] | None = None
    availability_floor: float = 0.99  # of admitted requests
    p999_bound_ms: float | None = None  # None: 2x the lane timeout
    fairness_ratio: float = 2.0  # admitted share within this factor of weight
    kill_shard_at: float | None = 0.5  # trace fraction; None disables the kill
    # Crash burst: repeated SIGKILLs of the same spec starting at this
    # trace fraction, to drive the autoscaler's crash-loop quarantine.
    crash_burst_at: float | None = None
    crash_burst_kills: int = 3
    crash_burst_gap_s: float = 0.2
    watchdog_every: int = 25  # sweep idle-crashed shards every N arrivals
    settle_s: float = 10.0  # drain budget after the last arrival
    # Elastic control plane (None = static shard pool, the v1 behavior).
    autoscale: AutoscalePolicy | None = None
    tick_every: int = 8  # autoscaler tick cadence, in arrivals
    secondary_spec: str | None = None  # idle lane that can lend capacity
    deadline_miss_bound: float = 0.01  # interactive-band miss-rate ceiling

    def __post_init__(self):
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ValueError("availability_floor must be within [0, 1]")
        if self.p999_bound_ms is not None and self.p999_bound_ms <= 0:
            raise ValueError("p999_bound_ms must be > 0")
        if self.fairness_ratio < 1.0:
            raise ValueError("fairness_ratio must be >= 1")
        if self.kill_shard_at is not None and not 0.0 <= self.kill_shard_at <= 1.0:
            raise ValueError("kill_shard_at is a fraction of the trace duration")
        if self.crash_burst_at is not None and not 0.0 <= self.crash_burst_at <= 1.0:
            raise ValueError("crash_burst_at is a fraction of the trace duration")
        if self.crash_burst_kills < 1 or self.crash_burst_gap_s <= 0:
            raise ValueError("crash_burst_kills must be >= 1 and gap > 0")
        if self.watchdog_every < 1 or self.settle_s <= 0:
            raise ValueError("watchdog_every must be >= 1 and settle_s > 0")
        if self.tick_every < 1:
            raise ValueError("tick_every must be >= 1")
        if not 0.0 <= self.deadline_miss_bound <= 1.0:
            raise ValueError("deadline_miss_bound must be within [0, 1]")


def tiny_scale_servable(seed: int = 0, bits: int = 6):
    """A self-contained quantized servable for smoke runs.

    Random tiny ViT calibrated on synthetic images — overload dynamics
    (queueing, shedding, fairness) do not depend on trained weights, so
    the smoke benchmark skips the zoo entirely.  Built in the parent and
    shared with forked shard workers copy-on-write, so shard spawn is
    instant.
    """
    from ..models.configs import ModelConfig
    from ..models.vit import build_vit
    from ..quant.qmodel import PTQPipeline

    config = ModelConfig("scale_tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)
    model = build_vit(config, seed=seed)
    rng = np.random.default_rng(seed)
    calib = rng.standard_normal((16, 16, 16, 3)).astype(np.float32)
    pipeline = PTQPipeline(model, method="quq", bits=bits, coverage="full")
    pipeline.calibrate(calib)
    from ..serve.registry import ServableModel

    return ServableModel(ModelKey.parse(f"vit_s/quq/{bits}"), model, 0.0, pipeline)


def _classify_rejection(error: BaseException) -> str:
    """Map a submit-time refusal to its metrics reason label."""
    if isinstance(error, QueueFullError):
        return "queue_full"
    reason = getattr(error, "reason", None)
    return reason if isinstance(reason, str) else "queue_full"


def _recorded_trace_stats(events: list[TraceEvent]) -> dict:
    """Summary for a recorded trace (no generator config to lean on)."""
    per_tenant: dict[str, int] = {}
    per_band: dict[str, int] = {}
    for event in events:
        per_tenant[event.tenant] = per_tenant.get(event.tenant, 0) + 1
        per_band[event.priority] = per_band.get(event.priority, 0) + 1
    duration = events[-1].at_s if events else 0.0
    return {
        "events": len(events),
        "duration_s": round(duration, 3),
        "mean_rate_rps": round(len(events) / duration, 2) if duration else 0.0,
        "recorded": True,
        "per_tenant": dict(sorted(per_tenant.items())),
        "per_band": dict(sorted(per_band.items())),
    }


def run_scale_benchmark(engine, config: ScaleBenchConfig | None = None) -> dict:
    """Replay the trace against ``engine``; return the audit report.

    ``engine`` is a :class:`~repro.serve.engine.ServeEngine` or
    :class:`~repro.serve.cluster.ClusterEngine` (the shard-kill and
    autoscale steps only run when the engine exposes the corresponding
    surface).  Fair-queue weights are read from the engine's admission
    policy when one is attached.
    """
    config = ScaleBenchConfig() if config is None else config
    key = ModelKey.parse(config.spec)
    if config.trace_events is not None:
        trace = config.trace_events
        stats = _recorded_trace_stats(trace)
        duration_s = stats["duration_s"] or 1.0
    else:
        trace = generate_trace(config.trace)
        stats = trace_stats(trace, config.trace)
        duration_s = config.trace.duration_s
    mix = tenant_mix(config.trace)

    engine.warm(key)
    secondary_key = None
    if config.secondary_spec is not None:
        secondary_key = ModelKey.parse(config.secondary_spec)
        engine.warm(secondary_key)

    autoscaler = None
    if config.autoscale is not None and hasattr(engine, "add_shard"):
        autoscaler = Autoscaler(
            engine, config.autoscale,
            clock=engine.clock, admission=getattr(engine, "admission", None),
        )

    # A modest pool of distinct synthetic images, cycled across arrivals.
    size = getattr(getattr(engine, "cluster", None), "image_hw", None)
    if size is None:
        from ..serve.loadgen import _image_size

        size = _image_size(key)
    rng = np.random.default_rng(config.trace.seed)
    pool = rng.standard_normal((128, size, size, 3)).astype(np.float32)

    weights = {}
    if getattr(engine, "admission", None) is not None:
        weights = dict(engine.admission.policy.tenant_weights)
    total_weight = sum(weights.values()) or None

    # Kill schedule: the single supervision kill plus the crash burst.
    kill_times: list[float] = []
    if config.kill_shard_at is not None and hasattr(engine, "kill_shard"):
        kill_times.append(config.kill_shard_at * duration_s)
    burst_requested = config.crash_burst_at is not None and hasattr(engine, "kill_shard")
    elastic_demanded = (
        config.trace_events is None and config.trace.flash_multiplier > 1.0
    )
    if burst_requested:
        base = config.crash_burst_at * duration_s
        kill_times.extend(
            base + i * config.crash_burst_gap_s
            for i in range(config.crash_burst_kills)
        )
    kill_times.sort()
    kills_requested = len(kill_times)
    kills_delivered = 0
    killed_pid = None

    per_tenant = {
        name: {"offered": 0, "admitted": 0, "completed": 0} for name in mix
    }
    per_band = {
        band: {"offered": 0, "admitted": 0, "completed": 0, "failed": 0,
               "deadline_missed": 0}
        for band in PRIORITIES
    }
    rejections = {reason: 0 for reason in
                  ("queue_full", "shed", "rate_limited", "breaker_open")}
    handles: list[tuple] = []
    offered = admitted = 0
    start = time.monotonic()
    for index, event in enumerate(trace):
        delay = (start + event.at_s) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        while kill_times and event.at_s >= kill_times[0]:
            kill_times.pop(0)
            try:
                killed_pid = engine.kill_shard(key, 0)
                kills_delivered += 1
            except Exception:
                killed_pid = killed_pid or -1  # already down; supervision owns it
        event_key = ModelKey.parse(event.spec) if event.spec else key
        tenant = per_tenant.setdefault(
            event.tenant, {"offered": 0, "admitted": 0, "completed": 0}
        )
        band = per_band[event.priority]
        offered += 1
        tenant["offered"] += 1
        band["offered"] += 1
        try:
            handle = engine.submit(
                event_key, pool[index % len(pool)], tenant=event.tenant,
                priority=event.priority, deadline_ms=event.deadline_ms,
            )
        except Exception as error:
            reason = _classify_rejection(error)
            rejections[reason] = rejections.get(reason, 0) + 1
            continue
        admitted += 1
        tenant["admitted"] += 1
        band["admitted"] += 1
        handles.append((event.tenant, event.priority, handle))
        if index % config.watchdog_every == 0:
            engine.check_watchdog()
        if autoscaler is not None and index % config.tick_every == 0:
            autoscaler.tick()

    # Settle: keep supervising (and autoscaling) while in-flight drains,
    # then keep ticking so post-flash scale-downs, borrow returns, and
    # quarantine-recovery probes land inside the run.
    settle_deadline = time.monotonic() + config.settle_s
    drained = False
    while time.monotonic() < settle_deadline:
        engine.check_watchdog()
        if autoscaler is not None:
            autoscaler.tick()
        if engine.drain(timeout=0.25):
            drained = True
            if autoscaler is None:
                break
            counts = {
                e["action"] for e in autoscaler.events
            }
            # Stay in the settle loop until the elastic story completes
            # (or the budget runs out): a drained scale-down, every loan
            # returned, and the quarantine probe when a crash burst was
            # delivered.
            need_down = elastic_demanded and "scale_down" not in counts
            need_probe = burst_requested and "quarantine_clear" not in counts
            need_return = bool(autoscaler.snapshot()["active_loans"])
            if not need_down and not need_probe and not need_return:
                break
        time.sleep(0.05)

    completed = failed = nonfinite_served = 0
    latencies_ms: list[float] = []
    wait_budget = max(5.0, 2.0 * engine.policy.timeout_ms / 1000.0)
    for tenant_name, priority, handle in handles:
        band = per_band[priority]
        try:
            result = handle.result(timeout=wait_budget)
        except Exception as error:
            failed += 1
            band["failed"] += 1
            if getattr(error, "reason", None) == "deadline":
                band["deadline_missed"] += 1
            continue
        completed += 1
        per_tenant[tenant_name]["completed"] += 1
        band["completed"] += 1
        if handle.completed_at is not None:
            latencies_ms.append((handle.completed_at - handle.enqueued_at) * 1e3)
        if not np.isfinite(result.logits).all() or (
            np.abs(result.logits).max() > engine.guard.saturation_limit
        ):
            nonfinite_served += 1

    # ------------------------------------------------------------------
    # Fairness: each tenant's share of admissions vs its fair-queue weight.
    fairness = {}
    fairness_ok = True
    for name, row in sorted(per_tenant.items()):
        if row["offered"] == 0:
            continue
        share = row["admitted"] / admitted if admitted else 0.0
        if total_weight:
            weight = weights.get(name, 0.0) / total_weight
        else:
            weight = mix.get(name, 1.0 / max(1, len(mix)))
        offered_share = row["offered"] / offered if offered else 0.0
        ratio = share / weight if weight > 0 else 0.0
        starved = row["admitted"] == 0
        # Over-service is bounded for everyone; under-service is only a
        # violation for tenants that actually demanded their entitlement.
        over = ratio > config.fairness_ratio + 1e-9
        under = (
            offered_share >= weight
            and ratio < 1.0 / config.fairness_ratio - 1e-9
        )
        ok = not (starved or over or under)
        fairness_ok = fairness_ok and ok
        fairness[name] = {
            **row,
            "weight_share": round(weight, 4),
            "offered_share": round(offered_share, 4),
            "admitted_share": round(share, 4),
            "ratio_to_weight": round(ratio, 3),
            "starved": starved,
            "ok": ok,
        }

    # Priority bands: miss rates + who absorbed the shedding.
    priorities = {}
    deadline_ok = True
    for band_name in PRIORITIES:
        row = per_band[band_name]
        miss_rate = (
            row["deadline_missed"] / row["admitted"] if row["admitted"] else 0.0
        )
        shed_share = (
            1.0 - row["admitted"] / row["offered"] if row["offered"] else 0.0
        )
        priorities[band_name] = {
            **row,
            "deadline_miss_rate": round(miss_rate, 4),
            "refusal_rate": round(shed_share, 4),
        }
        if band_name == "interactive" and row["admitted"]:
            deadline_ok = miss_rate <= config.deadline_miss_bound + 1e-12

    rejected = sum(rejections.values())
    resolved = sum(1 for _, _, h in handles if h.done())
    ledger_ok = (offered == admitted + rejected) and (
        admitted == completed + failed
    ) and resolved == admitted
    availability = completed / admitted if admitted else 0.0
    shed_rate = rejections.get("shed", 0) / offered if offered else 0.0

    lat = np.asarray(latencies_ms) if latencies_ms else np.zeros(1)
    p50, p99, p999 = (float(np.percentile(lat, q)) for q in (50, 99, 99.9))
    p999_bound = (
        config.p999_bound_ms
        if config.p999_bound_ms is not None
        else 2.0 * engine.policy.timeout_ms
    )

    snapshot = engine.snapshot()
    counters = snapshot["counters"]
    deadlock_free = drained and all(h.done() for _, _, h in handles)
    recovery = {
        "shard_kill_requested": kills_requested > 0,
        "kills_delivered": kills_delivered,
        "killed_pid": killed_pid,
        "reroutes_total": counters.get("reroutes_total", 0),
        "shard_restarts_total": counters.get("shard_restarts_total", 0),
        "watchdog_restarts_total": counters.get("watchdog_restarts_total", 0),
        "quarantine_batches_total": counters.get("quarantine_batches_total", 0),
    }
    recovery_ok = (not recovery["shard_kill_requested"]) or (
        killed_pid is not None
        and recovery["shard_restarts_total"] > 0
        and deadlock_free
    )

    # Elasticity audit from the autoscaler's event ledger.
    autoscale_report: dict = {"enabled": autoscaler is not None}
    autoscale_ok = True
    if autoscaler is not None:
        scaler = autoscaler.snapshot()
        events = scaler["events"]
        downs = [e for e in events if e["action"] == "scale_down"]
        # The full elastic story (scale up, then a drained scale down) is
        # only *demanded* when the run contains a flash crowd to drive
        # it; a gentle recorded trace must not fail for staying flat.
        demanded = elastic_demanded
        autoscale_report.update({
            "events": events,
            "event_counts": scaler["event_counts"],
            "elasticity_demanded": demanded,
            "scale_ups": scaler["event_counts"].get("scale_up", 0),
            "scale_downs": len(downs),
            "scale_downs_drained_cleanly": (
                len(downs) > 0 and all(e.get("drained") for e in downs)
            ),
            "quarantines": scaler["event_counts"].get("quarantine", 0),
            "quarantine_probes": scaler["event_counts"].get(
                "quarantine_clear", 0
            ),
            "borrows": scaler["event_counts"].get("borrow", 0),
            "borrow_returns": scaler["event_counts"].get("borrow_return", 0),
            "final_shards": {
                spec: engine.shard_count(spec) for spec in engine.lane_specs()
            },
        })
        if demanded:
            autoscale_ok = (
                autoscale_report["scale_ups"] >= 1
                and autoscale_report["scale_downs_drained_cleanly"]
            )
        else:
            autoscale_ok = all(e.get("drained") for e in downs)
        if burst_requested:
            autoscale_ok = autoscale_ok and autoscale_report["quarantines"] >= 1

    passed = (
        availability >= config.availability_floor
        and p999 <= p999_bound
        and ledger_ok
        and fairness_ok
        and nonfinite_served == 0
        and deadlock_free
        and recovery_ok
        and deadline_ok
        and autoscale_ok
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": key.spec,
        "seed": config.trace.seed,
        "trace": stats,
        "offered": offered,
        "admitted": admitted,
        "completed": completed,
        "failed": failed,
        "rejected": rejected,
        "rejections": rejections,
        "availability": round(availability, 4),
        "availability_floor": config.availability_floor,
        "shed_rate": round(shed_rate, 4),
        "latency_ms": {
            "p50": round(p50, 2),
            "p99": round(p99, 2),
            "p999": round(p999, 2),
            "bound_p999": round(p999_bound, 2),
            "samples": len(latencies_ms),
        },
        "tenants": fairness,
        "fairness_ratio_bound": config.fairness_ratio,
        "fairness_ok": fairness_ok,
        "priorities": priorities,
        "deadline_miss_bound": config.deadline_miss_bound,
        "deadline_ok": deadline_ok,
        "no_silent_drop": ledger_ok,
        "nonfinite_served": nonfinite_served,
        "deadlock_free": deadlock_free,
        "recovery": recovery,
        "recovery_ok": recovery_ok,
        "autoscale": autoscale_report,
        "autoscale_ok": autoscale_ok,
        "admission": snapshot.get("admission", {}),
        "passed": passed,
        "snapshot": snapshot,
    }


def format_scale_report(report: dict) -> str:
    """Human-readable rendering of a scale benchmark report."""
    from .reporting import format_table

    verdict = "PASS" if report["passed"] else "FAIL"
    trace = report["trace"]
    flash = trace.get("flash_over_steady", "-")
    sections = [
        format_table(
            ["spec", "offered", "admitted", "completed", "failed", "rejected",
             "availability", "floor", "shed rate", "verdict"],
            [[report["spec"], report["offered"], report["admitted"],
              report["completed"], report["failed"], report["rejected"],
              report["availability"], report["availability_floor"],
              report["shed_rate"], verdict]],
            title=(
                f"Scale benchmark (seed {report['seed']}, flash "
                f"{flash}x steady)"
            ),
        ),
        format_table(
            ["p50 ms", "p99 ms", "p99.9 ms", "p99.9 bound", "samples"],
            [[report["latency_ms"]["p50"], report["latency_ms"]["p99"],
              report["latency_ms"]["p999"], report["latency_ms"]["bound_p999"],
              report["latency_ms"]["samples"]]],
            title="Admitted-request latency",
        ),
        format_table(
            ["reason", "count"],
            sorted(report["rejections"].items()),
            title="Typed rejections",
        ),
        format_table(
            ["band", "offered", "admitted", "completed", "missed deadline",
             "miss rate", "refusal rate"],
            [[name, row["offered"], row["admitted"], row["completed"],
              row["deadline_missed"], row["deadline_miss_rate"],
              row["refusal_rate"]]
             for name, row in report["priorities"].items()],
            title="Priority bands",
        ),
        format_table(
            ["tenant", "offered", "admitted", "weight", "share", "ratio",
             "starved", "ok"],
            [[name, row["offered"], row["admitted"], row["weight_share"],
              row["admitted_share"], row["ratio_to_weight"], row["starved"],
              row["ok"]]
             for name, row in sorted(report["tenants"].items())],
            title="Per-tenant fairness",
        ),
    ]
    recovery = report["recovery"]
    if recovery["shard_kill_requested"]:
        sections.append(format_table(
            ["kills", "killed pid", "shard restarts", "reroutes",
             "watchdog restarts", "quarantine batches", "recovered"],
            [[recovery["kills_delivered"], recovery["killed_pid"],
              recovery["shard_restarts_total"], recovery["reroutes_total"],
              recovery["watchdog_restarts_total"],
              recovery["quarantine_batches_total"], report["recovery_ok"]]],
            title="Shard-loss recovery",
        ))
    autoscale = report.get("autoscale", {})
    if autoscale.get("enabled"):
        sections.append(format_table(
            ["scale ups", "scale downs", "drained cleanly", "quarantines",
             "probes", "borrows", "returns", "final shards"],
            [[autoscale["scale_ups"], autoscale["scale_downs"],
              autoscale["scale_downs_drained_cleanly"],
              autoscale["quarantines"], autoscale["quarantine_probes"],
              autoscale["borrows"], autoscale["borrow_returns"],
              " ".join(
                  f"{spec}={count}"
                  for spec, count in autoscale["final_shards"].items()
              )]],
            title="Elastic control plane",
        ))
    checks = format_table(
        ["check", "ok"],
        [["availability >= floor",
          report["availability"] >= report["availability_floor"]],
         ["p99.9 bounded",
          report["latency_ms"]["p999"] <= report["latency_ms"]["bound_p999"]],
         ["no silent drop", report["no_silent_drop"]],
         ["fairness", report["fairness_ok"]],
         ["interactive deadline misses bounded", report["deadline_ok"]],
         ["no non-finite served", report["nonfinite_served"] == 0],
         ["deadlock free", report["deadlock_free"]],
         ["shard-loss recovery", report["recovery_ok"]],
         ["elastic scaling", report["autoscale_ok"]]],
        title="Gates",
    )
    sections.append(checks)
    return "\n\n".join(sections)
