"""Plain-text table formatting shared by the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_float"]


def format_float(value, digits: int = 2) -> str:
    """Format a number for a table cell ('-' for None)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 10 ** (-digits) or abs(value) >= 10**6):
            return f"{value:.2e}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned text table (the harness's stand-in for LaTeX)."""
    cells = [[format_float(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
