"""Analysis utilities: distributions (Fig. 3), attention maps (Fig. 7), reporting."""

from .distributions import (
    FIGURE3_TENSORS,
    ascii_histogram,
    capture_figure3_tensors,
    histogram,
)
from .attention_maps import (
    ascii_heatmap,
    attention_rollout,
    crucial_region_energy,
    rollout_correlation,
    rollout_for_images,
)
from .reporting import format_float, format_table
from .sensitivity import kind_sensitivity, tap_sensitivity
from .corruption import (
    CorruptionSweepConfig,
    RecoveryCurveConfig,
    format_corruption_sweep,
    format_recovery_report,
    run_corruption_sweep,
    run_recovery_curve,
)
from .hotpath import (
    TINY_HOTPATH_VIT,
    HotpathConfig,
    format_hotpath_report,
    run_hotpath_bench,
    tiny_hotpath_model,
)

__all__ = [
    "FIGURE3_TENSORS",
    "capture_figure3_tensors",
    "histogram",
    "ascii_histogram",
    "attention_rollout",
    "rollout_for_images",
    "crucial_region_energy",
    "rollout_correlation",
    "ascii_heatmap",
    "format_table",
    "format_float",
    "kind_sensitivity",
    "tap_sensitivity",
    "CorruptionSweepConfig",
    "run_corruption_sweep",
    "format_corruption_sweep",
    "RecoveryCurveConfig",
    "run_recovery_curve",
    "format_recovery_report",
    "HotpathConfig",
    "TINY_HOTPATH_VIT",
    "tiny_hotpath_model",
    "run_hotpath_bench",
    "format_hotpath_report",
]
