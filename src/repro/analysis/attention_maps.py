"""Attention-map analysis for Figure 7.

The paper visualizes ViT attention maps under quantization: at 8 bits
uniform quantization starts losing attention on crucial regions while QUQ
stays close to the original; at 6 bits uniform attention collapses
entirely.  Without a display, we quantify the same comparison: attention
rollout saliency per image, its Pearson correlation with the FP32 rollout,
and the fraction of attention energy retained inside the FP32 map's
"crucial region" (its top-quantile cells) — plus ASCII heatmaps.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..models.vit import VisionTransformer

__all__ = [
    "attention_rollout",
    "rollout_for_images",
    "crucial_region_energy",
    "rollout_correlation",
    "ascii_heatmap",
]


def attention_rollout(maps: list[np.ndarray], num_prefix_tokens: int = 1) -> np.ndarray:
    """Attention rollout (Abnar & Zuidema): fold attention across layers.

    ``maps`` holds per-block attention ``(B, heads, N, N)``.  Returns the
    class token's saliency over patch tokens, shape ``(B, patches)``.
    """
    if not maps:
        raise ValueError("need at least one attention map")
    batch, _, tokens, _ = maps[0].shape
    rollout = np.eye(tokens, dtype=np.float64)[None].repeat(batch, axis=0)
    for attn in maps:
        mean_heads = attn.astype(np.float64).mean(axis=1)  # (B, N, N)
        mixed = 0.5 * mean_heads + 0.5 * np.eye(tokens)[None]
        mixed /= mixed.sum(axis=-1, keepdims=True)
        rollout = mixed @ rollout
    cls_row = rollout[:, 0, num_prefix_tokens:]
    total = cls_row.sum(axis=-1, keepdims=True)
    return cls_row / np.where(total > 0, total, 1.0)


def rollout_for_images(model: VisionTransformer, images: np.ndarray) -> np.ndarray:
    """Forward ``images`` and return the attention rollout saliency."""
    model.eval()
    with no_grad():
        model(Tensor(images))
    prefix = 2 if model.dist_token is not None else 1
    return attention_rollout(model.attention_maps(), num_prefix_tokens=prefix)


def crucial_region_energy(
    reference: np.ndarray, candidate: np.ndarray, quantile: float = 0.8
) -> float:
    """Mean attention energy ``candidate`` keeps in ``reference``'s hot cells.

    The crucial region is where the FP32 rollout exceeds its ``quantile``;
    a collapsed attention map scores near the region's area fraction
    (uniform attention), a faithful one scores near the reference energy.
    """
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    energies = []
    for ref_row, cand_row in zip(reference, candidate):
        threshold = np.quantile(ref_row, quantile)
        region = ref_row >= threshold
        energies.append(float(cand_row[region].sum()))
    return float(np.mean(energies))


def rollout_correlation(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean per-image Pearson correlation between two rollout saliencies."""
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    correlations = []
    for ref_row, cand_row in zip(reference, candidate):
        if ref_row.std() == 0 or cand_row.std() == 0:
            correlations.append(0.0)
            continue
        correlations.append(float(np.corrcoef(ref_row, cand_row)[0, 1]))
    return float(np.mean(correlations))


_SHADES = " .:-=+*#%@"


def ascii_heatmap(saliency: np.ndarray) -> str:
    """Render one image's patch saliency as an ASCII heatmap."""
    patches = saliency.reshape(-1)
    side = int(round(np.sqrt(patches.size)))
    if side * side != patches.size:
        raise ValueError(f"saliency length {patches.size} is not a square grid")
    grid = patches.reshape(side, side)
    span = grid.max() - grid.min()
    normalized = (grid - grid.min()) / span if span > 0 else np.zeros_like(grid)
    rows = []
    for row in normalized:
        rows.append("".join(_SHADES[int(v * (len(_SHADES) - 1))] * 2 for v in row))
    return "\n".join(rows)
