"""Distribution analysis for Figure 3: the four canonical tensor types.

Captures, from a trained model on calibration images, the tensors whose
distributions motivate QUQ: the query weights, the post-Softmax
activations, the pre-addition (residual-branch) activations, and the
post-GELU activations.  Pairs each with the quantization points QUQ's
progressive relaxation generates for it, plus ASCII histograms for the
benchmark output.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import Module
from ..quant.observers import QuantEnv
from ..quant.params import QUQParams

__all__ = ["capture_figure3_tensors", "histogram", "ascii_histogram", "FIGURE3_TENSORS"]

#: The four tensor types of Figure 3 and Table 1.
FIGURE3_TENSORS = ("query_weight", "post_softmax", "pre_addition", "post_gelu")


def capture_figure3_tensors(
    model: Module, images: np.ndarray, block: int = 0
) -> dict[str, np.ndarray]:
    """Collect the four Figure-3 tensors from ``model`` on ``images``.

    ``block`` selects which transformer block to read activations from.
    The query weight is the first third of that block's fused qkv weight.
    """
    env = QuantEnv()
    env.phase = "observe"
    model.set_tap_dispatcher(env)
    model.eval()
    with no_grad():
        model(Tensor(images))
    model.set_tap_dispatcher(None)

    def tap_ending(suffix: str) -> str:
        matches = sorted(n for n in env.records if n.endswith(suffix))
        if not matches:
            raise KeyError(f"no tap ending in {suffix!r}; saw {sorted(env.records)[:5]}...")
        return matches[min(block, len(matches) - 1)]

    probs = env.observed(tap_ending(".attn.probs"))
    pre_add = env.observed(tap_ending(".attn_residual"))
    post_gelu = env.observed(tap_ending(".fc2.input"))

    weights = dict(model.named_parameters())
    qkv_names = sorted(n for n in weights if n.endswith("attn.qkv.weight"))
    qkv = weights[qkv_names[min(block, len(qkv_names) - 1)]].data
    query_weight = qkv[:, : qkv.shape[1] // 3].reshape(-1)

    return {
        "query_weight": np.asarray(query_weight, dtype=np.float64),
        "post_softmax": probs.astype(np.float64),
        "pre_addition": pre_add.astype(np.float64),
        "post_gelu": post_gelu.astype(np.float64),
    }


def histogram(data: np.ndarray, bins: int = 60) -> tuple[np.ndarray, np.ndarray]:
    """Histogram over the data's full range."""
    counts, edges = np.histogram(np.asarray(data).reshape(-1), bins=bins)
    return counts, edges


def ascii_histogram(
    data: np.ndarray,
    params: QUQParams | None = None,
    bins: int = 60,
    width: int = 48,
) -> str:
    """Render a log-scale histogram with QUQ quantization points overlaid.

    Rows are histogram bins (value ascending); ``*`` bars show counts on a
    log scale; a ``|`` marks bins containing at least one quantization
    point — the textual analogue of Figure 3's vertical lines.
    """
    counts, edges = histogram(data, bins)
    log_counts = np.log1p(counts)
    scale = width / log_counts.max() if log_counts.max() > 0 else 0.0
    points = params.quantization_points() if params is not None else np.array([])

    lines = []
    for i, count in enumerate(counts):
        low, high = edges[i], edges[i + 1]
        has_point = bool(((points >= low) & (points < high)).any())
        bar = "*" * int(round(log_counts[i] * scale))
        marker = "|" if has_point else " "
        lines.append(f"{low:+10.4f} {marker} {bar}")
    return "\n".join(lines)
