"""Per-tap quantization sensitivity analysis.

Measures how much each tap (or group of taps) contributes to accuracy loss
by enabling quantization one group at a time — the diagnostic behind the
paper's observation that the hard-to-quantize activations (LayerNorm /
residual / Softmax inputs) dominate the full-quantization gap, and the
signal the mixed-precision allocator (:mod:`repro.quant.mixed`) consumes.
"""

from __future__ import annotations

import numpy as np

from ..quant.observers import TapKind, classify_tap
from ..quant.qmodel import PTQPipeline
from ..training import predict_logits

__all__ = ["kind_sensitivity", "tap_sensitivity"]


def _logit_distortion(model, images: np.ndarray, reference: np.ndarray) -> float:
    quantized = predict_logits(model, images)
    return float(np.mean((quantized - reference) ** 2))


def kind_sensitivity(
    pipeline: PTQPipeline, images: np.ndarray
) -> dict[str, float]:
    """Mean-squared logit distortion when quantizing one tap *kind* at a time.

    The pipeline must be calibrated; its quantizer set is temporarily
    restricted per kind and restored afterwards.
    """
    if not pipeline.calibrated:
        raise RuntimeError("calibrate the pipeline first")
    model = pipeline.model
    all_quantizers = dict(pipeline.env.quantizers)

    pipeline.env.quantizers = {}
    reference = predict_logits(model, images)

    results: dict[str, float] = {}
    for kind in TapKind:
        selected = {
            name: quantizer
            for name, quantizer in all_quantizers.items()
            if classify_tap(name) is kind
        }
        if not selected:
            continue
        pipeline.env.quantizers = selected
        results[kind.value] = _logit_distortion(model, images, reference)

    pipeline.env.quantizers = all_quantizers
    return results


def tap_sensitivity(
    pipeline: PTQPipeline, images: np.ndarray, taps: list[str] | None = None
) -> dict[str, float]:
    """Per-tap logit distortion (quantizing exactly one tap at a time).

    Expensive (one forward sweep per tap); restrict with ``taps`` when only
    a subset matters.
    """
    if not pipeline.calibrated:
        raise RuntimeError("calibrate the pipeline first")
    model = pipeline.model
    all_quantizers = dict(pipeline.env.quantizers)
    taps = taps if taps is not None else sorted(all_quantizers)

    pipeline.env.quantizers = {}
    reference = predict_logits(model, images)

    results: dict[str, float] = {}
    for name in taps:
        pipeline.env.quantizers = {name: all_quantizers[name]}
        results[name] = _logit_distortion(model, images, reference)

    pipeline.env.quantizers = all_quantizers
    return results
