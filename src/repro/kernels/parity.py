"""Pairwise reference-vs-fast parity harness over the kernel registry.

Backs ``python -m repro kernel-parity`` and the CI ``kernel-parity`` job.
Enumerates every registered ``(op, reference, fast)`` pair
(:meth:`KernelRegistry.pairs`) and drives it over deterministic seeded
cases: legalized QUQ parameter sets fitted at several bit-widths on
qualitatively different data (two-sided, positive-only softmax-like,
one-sided negative, GELU-shaped, heavy-tailed), plus adversarial inputs —
NaN, ``+/-inf``, denormals, exact zeros, all-negative tensors, zero-size
arrays.  A pair passes a case when both variants return equal results
(``np.array_equal`` with NaNs compared positionally, or ``np.allclose``
for tolerance specs) **or** both raise the same exception type with no
output at all.

Everything here is numpy-only and fully deterministic given ``seed`` —
the CI perf environment carries no hypothesis; the property-based
deep fuzzing lives in ``tests/test_kernels_parity.py``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..quant.params import QUQParams
from ..quant.qub import FCRegisters, legalize_for_hardware
from ..quant.quq import quantize_with_params
from ..quant.relax import progressive_relaxation
from . import kernel_pairs
from .registry import KernelImpl

__all__ = ["run_kernel_parity", "parity_cases", "fitted_params_pool"]

#: Report schema version (bump on breaking shape changes).
SCHEMA_VERSION = 1

#: Bit-widths the parameter pool is fitted at.
PARAM_BITS = (4, 6, 8)

#: Names of the calibration distributions in the parameter pool.
DISTRIBUTIONS = ("two_sided", "positive_softmax", "negative_one_sided",
                 "gelu_like", "heavy_tail")


def _calibration_tensor(rng: np.random.Generator, kind: str) -> np.ndarray:
    """A calibration tensor with the qualitative shape ``kind``."""
    if kind == "two_sided":
        return rng.normal(0.0, 1.0, size=2048)
    if kind == "positive_softmax":
        logits = rng.normal(0.0, 2.0, size=(64, 32))
        e = np.exp(logits - logits.max(axis=-1, keepdims=True))
        return (e / e.sum(axis=-1, keepdims=True)).reshape(-1)
    if kind == "negative_one_sided":
        return -np.abs(rng.normal(0.0, 1.0, size=2048))
    if kind == "gelu_like":
        x = rng.normal(0.0, 1.5, size=2048)
        return np.where(x > 0, x, 0.05 * x)
    if kind == "heavy_tail":
        return rng.standard_t(2.0, size=2048) * 2.0
    raise ValueError(f"unknown calibration kind {kind!r}")


def fitted_params_pool(seed: int = 0) -> list[tuple[str, int, QUQParams]]:
    """``(distribution, bits, legalized params)`` triples for the harness."""
    rng = np.random.default_rng(seed)
    pool = []
    for kind in DISTRIBUTIONS:
        data = _calibration_tensor(rng, kind)
        for bits in PARAM_BITS:
            params = legalize_for_hardware(
                progressive_relaxation(data, bits)
            )
            pool.append((kind, bits, params))
    return pool


def _float_inputs(
    rng: np.random.Generator, cases: int
) -> list[tuple[str, np.ndarray]]:
    """Float tensors incl. the adversarial set every float op must survive."""
    inputs: list[tuple[str, np.ndarray]] = [
        ("zero_size_1d", np.zeros((0,), dtype=np.float64)),
        ("zero_size_3d", np.zeros((3, 0, 5), dtype=np.float64)),
        ("all_zero", np.zeros((4, 4), dtype=np.float64)),
        ("denormals", np.array(
            [5e-324, -5e-324, 1e-310, -1e-310, 0.0, 1.0, -1.0])),
        ("nan_inf_mix", np.array(
            [np.nan, np.inf, -np.inf, 0.0, 1.0, -1.0, np.nan])),
        ("all_nan", np.full((2, 3), np.nan)),
        ("all_negative", -np.abs(rng.normal(0.0, 1.0, size=(8, 8))) - 1e-3),
        ("huge", np.array([1e300, -1e300, 1e30, -1e30, 0.5])),
    ]
    for index in range(cases):
        inputs.append(
            (f"normal_{index}",
             rng.normal(0.0, 10.0 ** rng.integers(-2, 3),
                        size=(rng.integers(1, 5), rng.integers(1, 65))))
        )
    return inputs


def _int_inputs(
    rng: np.random.Generator, cases: int, low: int, high: int,
    non_positive: bool = False, non_negative: bool = False,
) -> list[tuple[str, np.ndarray]]:
    inputs: list[tuple[str, np.ndarray]] = [
        ("zero_size_1d", np.zeros((0,), dtype=np.int64)),
        ("zero_size_3d", np.zeros((2, 0, 3), dtype=np.int64)),
        ("all_zero", np.zeros((4, 4), dtype=np.int64)),
    ]
    for index in range(cases):
        arr = rng.integers(low, high, size=(rng.integers(1, 5),
                                            rng.integers(1, 33)))
        if non_positive:
            arr = -np.abs(arr)
        if non_negative:
            arr = np.abs(arr)
        inputs.append((f"int_{index}", arr.astype(np.int64)))
    return inputs


@dataclass
class _Case:
    """One parity case: a label plus the positional/keyword arguments."""

    label: str
    args: tuple
    kwargs: dict


def _quantized(x: np.ndarray, params: QUQParams):
    return quantize_with_params(np.asarray(x, dtype=np.float64), params)


def parity_cases(
    op: str, seed: int = 0, cases: int = 8
) -> Iterable[_Case]:
    """Deterministic case list for ``op`` (same seed -> same cases)."""
    # crc32, not hash(): PYTHONHASHSEED must not change the cases.
    rng = np.random.default_rng((seed, zlib.crc32(op.encode())))
    pool = fitted_params_pool(seed)
    floats = _float_inputs(rng, cases)

    if op in ("quq.fake_quantize", "quq.quantize"):
        for kind, bits, params in pool:
            for name, x in floats:
                yield _Case(f"{kind}/b{bits}/{name}", (x, params), {})
        return

    if op == "qub.encode":
        for kind, bits, params in pool:
            for name, x in floats:
                yield _Case(f"{kind}/b{bits}/{name}", (x, params, bits), {})
        # Contract violation: params wider than the QUB word.
        _, _, wide = pool[-1]
        yield _Case("bits_overflow", (floats[0][1], wide, wide.bits - 1), {})
        return

    if op == "qub.encode_batch":
        for kind, bits, params in pool[:: len(PARAM_BITS)]:
            members = [
                _quantized(x, params)
                for _, x in floats[: cases // 2 + 2]
            ]
            yield _Case(f"{kind}/b{bits}/multi", (members,), {})
            yield _Case(
                f"{kind}/b{bits}/with_empty",
                ([_quantized(np.zeros((0,)), params)] + members[:1],), {},
            )
        yield _Case("empty_list", ([],), {})
        kind_a, _, params_a = pool[0]
        kind_b, _, params_b = pool[-1]
        yield _Case(
            "mixed_params",
            ([_quantized(floats[-1][1], params_a),
              _quantized(floats[-1][1], params_b)],), {},
        )
        return

    if op == "qub.pack":
        for bits in (1, 4, 6, 8, 12, 16):
            for index in range(max(2, cases // 2)):
                words = rng.integers(0, 1 << bits,
                                     size=rng.integers(0, 40))
                yield _Case(f"b{bits}/words_{index}", (words, bits), {})
            yield _Case(f"b{bits}/empty",
                        (np.zeros(0, dtype=np.uint16), bits), {})
        yield _Case("bad_bits", (np.zeros(4, dtype=np.uint8), 17), {})
        yield _Case("overflow_word", (np.array([256], dtype=np.uint16), 8), {})
        return

    if op == "qub.decode_lut":
        for kind, bits, params in pool:
            registers = FCRegisters.from_params(params)
            yield _Case(f"{kind}/b{bits}", (registers, bits), {})
        return

    if op == "gemm.int":
        shapes = [((4, 8), (8, 3)), ((1, 1), (1, 1)), ((0, 5), (5, 2)),
                  ((3, 0), (0, 4)), ((2, 3, 4), (2, 4, 5))]
        for index, (sx, sw) in enumerate(shapes):
            x = rng.integers(-(1 << 14), 1 << 14, size=sx)
            w = rng.integers(-(1 << 14), 1 << 14, size=sw)
            yield _Case(f"small_{index}", (x, w), {})
        # Outside the 2**53 exactness window: the fast path must fall back.
        big = np.full((2, 2), (1 << 31) - 1, dtype=np.int64)
        yield _Case("overflow_window", (big, big), {})
        for index in range(cases):
            k = int(rng.integers(1, 96))
            x = rng.integers(-(1 << 14), 1 << 14, size=(rng.integers(1, 8), k))
            w = rng.integers(-(1 << 14), 1 << 14, size=(k, rng.integers(1, 8)))
            yield _Case(f"random_{index}", (x, w), {})
        return

    if op == "sfu.sqrt":
        for case in _int_inputs(rng, cases, 0, 1 << 40, non_negative=True):
            yield _Case(case[0], (case[1],), {})
        yield _Case("negative_input", (np.array([-1, 4]),), {})
        yield _Case("above_exact_window",
                    (np.array([(1 << 52) + 1, 1 << 60]),), {})
        return

    if op == "sfu.exp":
        for case in _int_inputs(rng, cases, 0, 1 << 12, non_positive=True):
            yield _Case(case[0], (case[1], 2.0**-10), {})
        yield _Case("positive_input", (np.array([1, -1]), 2.0**-10), {})
        return

    if op == "sfu.softmax":
        for out_bits in (12, 16):
            for case in _int_inputs(rng, cases // 2 + 1,
                                    -(1 << 12), 1 << 12):
                yield _Case(f"ob{out_bits}/{case[0]}", (case[1], 2.0**-10),
                            {"out_bits": out_bits})
        return

    if op == "sfu.gelu":
        for case in _int_inputs(rng, cases, -(1 << 12), 1 << 12):
            yield _Case(case[0], (case[1], 2.0**-10), {})
        return

    if op == "sfu.layernorm":
        weight = rng.normal(1.0, 0.1, size=16)
        bias = rng.normal(0.0, 0.1, size=16)
        for out_bits in (8, 12):
            for index in range(cases // 2 + 1):
                q = rng.integers(-(1 << 12), 1 << 12,
                                 size=(rng.integers(1, 5), 16))
                yield _Case(f"ob{out_bits}/plain_{index}", (q, 2.0**-14),
                            {"out_bits": out_bits})
                yield _Case(
                    f"ob{out_bits}/affine_{index}", (q, 2.0**-14),
                    {"weight": weight, "bias": bias, "out_bits": out_bits},
                )
        return

    raise ValueError(f"no parity case generator for op {op!r}")


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _outcome(fn: Callable, case: _Case):
    try:
        return fn(*case.args, **case.kwargs), None
    except Exception as error:  # noqa: BLE001 — compared by type below
        return None, error


def _flatten(result) -> list:
    if isinstance(result, tuple):
        return [part for item in result for part in _flatten(item)]
    if isinstance(result, list):
        return [part for item in result for part in _flatten(item)]
    return [result]


def _parts_equal(a, b, parity) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.shape != b_arr.shape:
            return False
        if parity is not None and not parity.bit_exact:
            return bool(np.allclose(a_arr, b_arr, rtol=parity.rtol,
                                    atol=parity.atol, equal_nan=True))
        return bool(np.array_equal(a_arr, b_arr, equal_nan=True))
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return a == b


def _results_match(ref_result, fast_result, parity) -> bool:
    ref_parts = _flatten(ref_result)
    fast_parts = _flatten(fast_result)
    if len(ref_parts) != len(fast_parts):
        return False
    return all(
        _parts_equal(a, b, parity) for a, b in zip(ref_parts, fast_parts)
    )


def _check_case(
    reference: KernelImpl, fast: KernelImpl, case: _Case
) -> str | None:
    """``None`` on agreement, else a human-readable mismatch description."""
    ref_result, ref_error = _outcome(reference.fn, case)
    fast_result, fast_error = _outcome(fast.fn, case)
    if ref_error is not None or fast_error is not None:
        if ref_error is None:
            return f"fast raised {type(fast_error).__name__}, reference returned"
        if fast_error is None:
            return f"reference raised {type(ref_error).__name__}, fast returned"
        if type(ref_error) is not type(fast_error):
            return (
                f"exception types differ: reference "
                f"{type(ref_error).__name__}, fast {type(fast_error).__name__}"
            )
        return None
    if not _results_match(ref_result, fast_result, fast.parity):
        return f"results differ ({fast.parity.describe()} contract)"
    return None


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_kernel_parity(seed: int = 0, cases: int = 8) -> dict:
    """Drive every registered pair over its case list; JSON-able report.

    The report's ``passed`` is True iff every pair agreed on every case;
    ``source`` marks it as coming from the registry harness, which the
    perf benchmark's attestation block keys on.
    """
    pairs = kernel_pairs()  # loads the built-in registrations
    ops: dict[str, dict] = {}
    failures = 0
    for op, reference, fast in pairs:
        checked = 0
        mismatches = []
        for case in parity_cases(op, seed=seed, cases=cases):
            checked += 1
            problem = _check_case(reference, fast, case)
            if problem is not None:
                mismatches.append({"case": case.label, "problem": problem})
        failures += len(mismatches)
        entry = ops.setdefault(op, {"pairs": []})
        entry["pairs"].append({
            "fast_variant": fast.variant,
            "parity": fast.parity.describe(),
            "cases": checked,
            "mismatches": mismatches,
            "passed": not mismatches,
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "source": "kernel-registry",
        "seed": seed,
        "cases_per_generator": cases,
        "pairs_checked": len(pairs),
        "failures": failures,
        "passed": failures == 0,
        "ops": ops,
    }
