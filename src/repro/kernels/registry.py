"""The kernel registry: one dispatch layer for reference vs. fast impls.

Three generations of hand-wired fast paths accumulated in this codebase —
the fused QUQ fake-quantize kernel and the weight cache (PR 5), the int
backend's fused encoder, packed GEMMs, and vectorized SFU (PR 6) — each
pinned to its reference twin by ad-hoc one-off attestations scattered
across ``quant/``, ``hw/``, and ``backend/``.  This module replaces the
wiring with an explicit registry: every op name (``quq.fake_quantize``,
``qub.encode``, ``gemm.int``, ``sfu.softmax``, ...) maps to a **required
reference implementation** and zero or more registered **fast variants**,
each with a declared contract (dtypes, shapes, parameter domain) and a
parity spec (bit-exact, or a tolerance).

Dispatch
--------
Call sites resolve through :meth:`KernelRegistry.get`::

    fn = kernels.get("quq.fake_quantize")   # fast impl when one exists
    out = fn(x, params)

Resolution precedence, strongest first:

1. an explicit ``prefer=`` argument (``"reference"``, ``"fast"``, or a
   specific variant name) — used by harnesses that must pin a variant;
2. the ``REPRO_KERNELS`` environment variable — ``reference`` forces the
   reference impl for every op end-to-end (the bisection switch),
   ``fast`` restores the default, and a comma-separated list of
   ``op=variant`` pairs pins individual ops
   (``REPRO_KERNELS=gemm.int=reference`` bisects just the GEMM);
3. the default: the newest registered fast variant, else the reference.

Production call sites (``QuantEnv``, the serving backends,
``hw.executor``) pass no ``prefer`` so the environment override always
wins there.

Parity by construction
----------------------
:meth:`KernelRegistry.pairs` enumerates every ``(op, reference, fast)``
pair; the harness in :mod:`repro.kernels.parity` (and the hypothesis
suite in ``tests/``) drives each pair over legalized parameter sets,
bit-widths, and adversarial inputs.  A new backend registers its kernels
and is parity-tested by construction — no new attestation script.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "ENV_VAR",
    "ParitySpec",
    "KernelImpl",
    "KernelRegistry",
    "KernelRegistryError",
]

#: Environment variable holding the dispatch override.
ENV_VAR = "REPRO_KERNELS"

#: Registry kinds: exactly one reference per op, any number of fast variants.
REFERENCE = "reference"
FAST = "fast"


class KernelRegistryError(KeyError):
    """Unknown op or variant, or an illegal registration."""


@dataclass(frozen=True)
class ParitySpec:
    """How a fast variant must agree with its op's reference impl.

    ``bit_exact`` requires identical outputs (``np.array_equal`` with
    NaNs compared positionally); otherwise outputs must agree within
    ``rtol``/``atol`` (``np.allclose``).  ``notes`` documents any input
    domain the contract is restricted to (e.g. "finite inputs only").
    """

    bit_exact: bool = True
    rtol: float = 0.0
    atol: float = 0.0
    notes: str = ""

    def __post_init__(self):
        if not self.bit_exact and self.rtol == 0.0 and self.atol == 0.0:
            raise ValueError(
                "a tolerance parity spec needs a nonzero rtol or atol"
            )

    def describe(self) -> str:
        if self.bit_exact:
            return "bit-exact"
        return f"allclose(rtol={self.rtol}, atol={self.atol})"


@dataclass(frozen=True)
class KernelImpl:
    """One registered implementation of an op."""

    op: str
    variant: str
    fn: Callable
    kind: str  # REFERENCE or FAST
    #: Required for fast variants: the agreement contract vs the reference.
    parity: ParitySpec | None = None
    #: Declared input contract — dtype/shape/params domain, documentation
    #: grade (the parity harness generates inputs from it by op family).
    contract: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.op}:{self.variant}"


def _parse_env(value: str) -> dict[str, str] | str | None:
    """Parse ``REPRO_KERNELS``: global mode, or per-op pin map, or None."""
    value = value.strip()
    if not value:
        return None
    if value in (REFERENCE, FAST):
        return value
    pins: dict[str, str] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad {ENV_VAR} entry {part!r}: expected 'reference', 'fast', "
                "or comma-separated op=variant pins"
            )
        op, _, variant = part.partition("=")
        pins[op.strip()] = variant.strip()
    return pins


class KernelRegistry:
    """Op name -> required reference impl + registered fast variants."""

    def __init__(self):
        self._ops: dict[str, dict[str, KernelImpl]] = {}
        self._lock = threading.Lock()
        #: Dispatch counts per ``op:variant`` (how many calls each impl
        #: served) plus free-form counters (e.g. LUT cache hits).
        self.counters: dict[str, int] = {}
        self._env_cache: tuple[str, object] | None = None

    # -- registration ---------------------------------------------------
    def register(
        self,
        op: str,
        variant: str,
        fn: Callable | None = None,
        *,
        parity: ParitySpec | None = None,
        contract: dict | None = None,
    ):
        """Register ``fn`` as ``op``'s ``variant``; usable as a decorator.

        The variant named ``"reference"`` is the required baseline and
        must be registered before any fast variant of the same op; every
        other variant is a fast impl and must carry a :class:`ParitySpec`.
        """

        def _register(func: Callable) -> Callable:
            kind = REFERENCE if variant == REFERENCE else FAST
            if kind == FAST and parity is None:
                raise KernelRegistryError(
                    f"fast kernel {op}:{variant} needs a parity spec"
                )
            impl = KernelImpl(
                op=op,
                variant=variant,
                fn=func,
                kind=kind,
                parity=None if kind == REFERENCE else parity,
                contract=dict(contract or {}),
            )
            with self._lock:
                variants = self._ops.setdefault(op, {})
                if variant in variants:
                    raise KernelRegistryError(
                        f"kernel {op}:{variant} is already registered"
                    )
                if kind == FAST and REFERENCE not in variants:
                    raise KernelRegistryError(
                        f"op {op!r} needs a reference impl before fast "
                        f"variant {variant!r}"
                    )
                variants[variant] = impl
            return func

        if fn is not None:
            return _register(fn)
        return _register

    # -- introspection --------------------------------------------------
    def ops(self) -> list[str]:
        """Registered op names, sorted."""
        with self._lock:
            return sorted(self._ops)

    def variants(self, op: str) -> list[str]:
        """Variant names of ``op``: reference first, then fast variants in
        registration order."""
        table = self._table(op)
        fast = [name for name in table if name != REFERENCE]
        return [REFERENCE] + fast

    def implementation(self, op: str, variant: str) -> KernelImpl:
        table = self._table(op)
        impl = table.get(variant)
        if impl is None:
            raise KernelRegistryError(
                f"op {op!r} has no variant {variant!r}; "
                f"registered: {self.variants(op)}"
            )
        return impl

    def reference(self, op: str) -> KernelImpl:
        return self.implementation(op, REFERENCE)

    def fast_variants(self, op: str) -> list[KernelImpl]:
        table = self._table(op)
        return [impl for name, impl in table.items() if name != REFERENCE]

    def pairs(self) -> list[tuple[str, KernelImpl, KernelImpl]]:
        """Every ``(op, reference, fast)`` pair — the parity harness's
        work list.  Registering a fast kernel automatically enrolls it."""
        out = []
        for op in self.ops():
            reference = self.reference(op)
            for fast in self.fast_variants(op):
                out.append((op, reference, fast))
        return out

    def _table(self, op: str) -> dict[str, KernelImpl]:
        with self._lock:
            table = self._ops.get(op)
        if table is None:
            raise KernelRegistryError(
                f"unknown kernel op {op!r}; registered: {self.ops()}"
            )
        return table

    # -- dispatch -------------------------------------------------------
    def _env_override(self) -> dict[str, str] | str | None:
        raw = os.environ.get(ENV_VAR, "")
        cached = self._env_cache
        if cached is not None and cached[0] == raw:
            return cached[1]
        parsed = _parse_env(raw)
        self._env_cache = (raw, parsed)
        return parsed

    def resolve(self, op: str, prefer: str | None = None) -> KernelImpl:
        """The impl that would serve ``op`` under the current overrides.

        ``prefer`` may be ``"reference"``, ``"fast"``, or a specific
        variant name; ``None`` (what production call sites pass) defers
        to ``REPRO_KERNELS``, then to the fast-by-default rule.
        """
        table = self._table(op)
        if prefer is None:
            env = self._env_override()
            if isinstance(env, dict):
                prefer = env.get(op)
            else:
                prefer = env
        if prefer is None or prefer == FAST:
            fast = [name for name in table if name != REFERENCE]
            chosen = fast[-1] if fast else REFERENCE
            return table[chosen]
        if prefer == REFERENCE:
            return table[REFERENCE]
        impl = table.get(prefer)
        if impl is None:
            raise KernelRegistryError(
                f"op {op!r} has no variant {prefer!r}; "
                f"registered: {self.variants(op)}"
            )
        return impl

    def get(self, op: str, prefer: str | None = None) -> Callable:
        """Resolve and return the serving callable, counting the dispatch."""
        impl = self.resolve(op, prefer)
        self.count(impl.label)
        return impl.fn

    # -- observability --------------------------------------------------
    def count(self, key: str, n: int = 1) -> None:
        """Bump a counter (dispatches use ``op:variant``; caches may add
        their own keys, e.g. ``qub.decode_lut:cache_hit``)."""
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def reset_counters(self) -> None:
        with self._lock:
            self.counters.clear()

    def selected(self) -> dict[str, str]:
        """Which variant currently serves each op (under live overrides)."""
        return {op: self.resolve(op).variant for op in self.ops()}

    def snapshot(self) -> dict:
        """JSON-serializable view for the serve registry snapshot."""
        with self._lock:
            counters = dict(self.counters)
        ops = {}
        for op in self.ops():
            ops[op] = {
                "selected": self.resolve(op).variant,
                "variants": self.variants(op),
                "calls": {
                    variant: counters.get(f"{op}:{variant}", 0)
                    for variant in self.variants(op)
                    if counters.get(f"{op}:{variant}", 0)
                },
            }
        extra = {
            key: value
            for key, value in sorted(counters.items())
            if ":cache_" in key
        }
        return {"override": os.environ.get(ENV_VAR, "") or None,
                "ops": ops, "cache": extra}
