"""``repro.kernels`` — the op registry behind every hot path.

Public surface:

* :data:`KERNELS` — the process-wide :class:`KernelRegistry` holding the
  built-in registrations (:mod:`repro.kernels.ops`).
* :func:`get_kernel` — resolve an op to its serving callable
  (fast-by-default, ``REPRO_KERNELS`` / ``prefer=`` overrides).
* :func:`kernel_pairs` / :func:`run_kernel_parity` — enumerate and drive
  the pairwise reference-vs-fast parity suite.
* :func:`kernels_snapshot` / :func:`active_kernels` — observability for
  the serve registry snapshot and the perf report.

Built-in registrations load lazily on first dispatch so that low-level
modules (``quant.quq``, ``hw.accelerator``) can import this package
without cycles: by the time a kernel is *called*, the modules the
registrations reference are fully imported.
"""

from __future__ import annotations

from .registry import (
    ENV_VAR,
    KernelImpl,
    KernelRegistry,
    KernelRegistryError,
    ParitySpec,
)

__all__ = [
    "ENV_VAR",
    "KERNELS",
    "KernelImpl",
    "KernelRegistry",
    "KernelRegistryError",
    "ParitySpec",
    "get_kernel",
    "kernel_pairs",
    "kernels_snapshot",
    "active_kernels",
    "run_kernel_parity",
    "fused_encoder",
    "kernel_cache_info",
    "clear_kernel_caches",
]

#: The process-wide registry every production call site dispatches through.
KERNELS = KernelRegistry()

_builtin_loaded = False


def _ensure_builtin() -> None:
    """Import the built-in registrations exactly once (idempotent)."""
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        from . import ops  # noqa: F401  (import side effect: registration)


def get_kernel(op: str, prefer: str | None = None):
    """Resolve ``op`` to its serving callable (see :class:`KernelRegistry`)."""
    _ensure_builtin()
    return KERNELS.get(op, prefer)


def kernel_pairs():
    """Every registered ``(op, reference, fast)`` pair."""
    _ensure_builtin()
    return KERNELS.pairs()


def kernels_snapshot() -> dict:
    """JSON-serializable registry state: selection, call counts, caches."""
    _ensure_builtin()
    return KERNELS.snapshot()


def active_kernels() -> dict:
    """Which variant currently serves each op."""
    _ensure_builtin()
    return KERNELS.selected()


def run_kernel_parity(*args, **kwargs) -> dict:
    """Run the registry-enumerated pairwise parity harness (see
    :func:`repro.kernels.parity.run_kernel_parity`)."""
    from .parity import run_kernel_parity as _run

    return _run(*args, **kwargs)


def fused_encoder(params, bits: int):
    """The shared memoized :class:`~repro.backend.kernels.FusedEncoder`
    for ``(params, bits)`` (see :func:`repro.kernels.ops.fused_encoder`)."""
    _ensure_builtin()
    from .ops import fused_encoder as _fused_encoder

    return _fused_encoder(params, bits)


def kernel_cache_info() -> dict:
    """Sizes of the shared encoder/LUT caches."""
    _ensure_builtin()
    from .ops import cache_info

    return cache_info()


def clear_kernel_caches() -> None:
    """Drop the shared encoder/LUT caches (tests, long-lived servers)."""
    _ensure_builtin()
    from .ops import clear_caches

    clear_caches()
