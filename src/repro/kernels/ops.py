"""Built-in kernel registrations: every op the serving paths dispatch.

Imported lazily by :mod:`repro.kernels` on first dispatch (never at
package-import time), so this module may import freely from ``quant``,
``backend`` and ``hw`` without cycles — by the time a kernel is *called*
those modules are fully loaded.  It must **not** import
``hw.accelerator``, ``hw.executor`` or the serving backends: those are
registry *callers*, and importing them here would close the loop.

Registered ops (reference + fast variants):

===================  =====================  ==============================
op                   reference              fast
===================  =====================  ==============================
``quq.quantize``     masked four-pass       (none — codes path is the spec)
``quq.fake_quantize``quantize->dequantize   ``fused`` four-slot table
``qub.encode``       quantize + encode      ``fused`` :class:`FusedEncoder`
``qub.encode_batch`` per-tensor loop        ``fused`` one concatenated pass
``qub.pack``         pure-Python bit loop   ``packbits`` vectorized
``qub.decode_lut``   fresh table per call   ``cached`` shared per
                                            ``(registers, bits)``
``gemm.int``         int64 matmul           ``blas_f64`` exact-window BLAS
``sfu.sqrt``         Newton iteration       ``vector`` f64 root + fixups
``sfu.exp``          scalar-reference poly  ``vector`` batched poly
``sfu.softmax``      scalar-reference       ``vector`` batched
``sfu.gelu``         scalar-reference       ``vector`` batched
``sfu.layernorm``    scalar-reference       ``vector`` batched
===================  =====================  ==============================

Every fast variant declares a bit-exact :class:`ParitySpec`; the harness
in :mod:`repro.kernels.parity` (and the hypothesis suite in ``tests/``)
drives each pair over legalized parameters and adversarial inputs.
"""

from __future__ import annotations

import threading

import numpy as np

from ..backend.kernels import FusedEncoder, decode_lut
from ..backend.sfu import v_i_exp, v_i_gelu, v_i_layernorm, v_i_softmax, v_i_sqrt
from ..hw.int_sfu import i_exp, i_gelu, i_layernorm, i_softmax, i_sqrt
from ..quant.params import QUQParams
from ..quant.qub import (
    FCRegisters,
    _encode_batch_fused,
    _encode_batch_reference,
    _encode_codes,
    legalize_for_hardware,
    pack_qub_words,
)
from ..quant.quq import fake_quantize_with_params, quantize_with_params
from . import KERNELS
from .registry import ParitySpec

__all__ = ["fused_encoder", "cache_info", "clear_caches"]

_CACHE_LOCK = threading.Lock()


# ---------------------------------------------------------------------------
# quq.* — quantization kernels
# ---------------------------------------------------------------------------

def _fake_quantize_reference(x: np.ndarray, params: QUQParams) -> np.ndarray:
    """The value a round trip through the code path produces."""
    return quantize_with_params(x, params).dequantize()


KERNELS.register(
    "quq.quantize",
    "reference",
    quantize_with_params,
    contract={
        "inputs": "(x: float array, params: QUQParams)",
        "output": "QuantizedTensor (int64 codes + int8 subrange ids)",
        "domain": "any float input; NaN parks at the unassigned-bucket code",
    },
)

KERNELS.register(
    "quq.fake_quantize",
    "reference",
    _fake_quantize_reference,
    contract={
        "inputs": "(x: float array, params: QUQParams)",
        "output": "float32 array, x's shape",
        "domain": "any float input",
    },
)

KERNELS.register(
    "quq.fake_quantize",
    "fused",
    fake_quantize_with_params,
    parity=ParitySpec(
        bit_exact=True,
        notes="four-slot gather; NaN parks at nan_park_value like the "
        "reference, +/-inf clips to the side's representable extreme",
    ),
    contract={
        "inputs": "(x: float array, params: QUQParams)",
        "output": "float32 array, x's shape",
        "domain": "any float input",
    },
)


# ---------------------------------------------------------------------------
# qub.* — hardware encoding kernels
# ---------------------------------------------------------------------------

#: Fused encoders memoized per (legal params, bits) — QUQParams is frozen,
#: so equal parameter sets (e.g. successive batches at one tap) share the
#: precomputed tables instead of rebuilding them per construction.
_ENCODER_CACHE: dict[tuple[QUQParams, int], FusedEncoder] = {}


def fused_encoder(params: QUQParams, bits: int) -> FusedEncoder:
    """The shared :class:`FusedEncoder` for ``(params, bits)`` (memoized)."""
    key = (params, bits)
    with _CACHE_LOCK:
        encoder = _ENCODER_CACHE.get(key)
    if encoder is not None:
        KERNELS.count("qub.encode:cache_hit")
        return encoder
    encoder = FusedEncoder(params, bits)
    with _CACHE_LOCK:
        encoder = _ENCODER_CACHE.setdefault(key, encoder)
    KERNELS.count("qub.encode:cache_miss")
    return encoder


def _encode_reference(
    x: np.ndarray, params: QUQParams, bits: int
) -> tuple[np.ndarray, FCRegisters, float]:
    """Quantize ``x`` under hardware-legal params and QUB-encode at ``bits``.

    Returns ``(qubs, registers, base_delta)`` — the wire-format triple the
    accelerator's :class:`~repro.hw.accelerator.EncodedTensor` wraps.
    """
    params = legalize_for_hardware(params)
    if params.bits > bits:
        raise ValueError(
            f"{params.bits}-bit parameters do not fit {bits}-bit QUBs"
        )
    qt = quantize_with_params(x, params)
    registers = FCRegisters.from_params(params)
    qubs = _encode_codes(qt.codes, qt.subranges, registers, bits)
    return qubs, registers, params.base_delta


def _encode_fused(
    x: np.ndarray, params: QUQParams, bits: int
) -> tuple[np.ndarray, FCRegisters, float]:
    encoder = fused_encoder(params, bits)
    return encoder.encode(x), encoder.registers, encoder.base_delta


_ENCODE_CONTRACT = {
    "inputs": "(x: float array, params: QUQParams, bits: int)",
    "output": "(qubs: uint8|uint16 array, FCRegisters, base_delta: float)",
    "domain": "any float input; raises ValueError when the legalized "
    "params.bits exceed the QUB width",
}

KERNELS.register(
    "qub.encode", "reference", _encode_reference, contract=_ENCODE_CONTRACT
)
KERNELS.register(
    "qub.encode",
    "fused",
    _encode_fused,
    parity=ParitySpec(
        bit_exact=True,
        notes="FusedEncoder.encode equals the quantize+encode round trip "
        "word for word, including the NaN park and zero re-homing",
    ),
    contract=_ENCODE_CONTRACT,
)

_ENCODE_BATCH_CONTRACT = {
    "inputs": "(tensors: list[QuantizedTensor] sharing one QUQParams)",
    "output": "(list of QUB arrays in input order, shared FCRegisters)",
    "domain": "zero-size members are legal; an empty list raises "
    "EmptyBatchError, mixed params raise ValueError",
}

KERNELS.register(
    "qub.encode_batch",
    "reference",
    _encode_batch_reference,
    contract=_ENCODE_BATCH_CONTRACT,
)
KERNELS.register(
    "qub.encode_batch",
    "fused",
    _encode_batch_fused,
    parity=ParitySpec(
        bit_exact=True,
        notes="one pass over the concatenated codes; per-tensor slices "
        "equal the reference loop's arrays exactly",
    ),
    contract=_ENCODE_BATCH_CONTRACT,
)


def _pack_words_reference(qubs: np.ndarray, bits: int) -> np.ndarray:
    """Pure-Python MSB-first bitstream packer (the format specification)."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    words = np.asarray(qubs).reshape(-1).astype(np.uint32)
    if words.size and int(words.max()) >> bits:
        raise ValueError(f"QUB word exceeds {bits} bits")
    out = bytearray((int(words.size) * bits + 7) // 8)
    position = 0
    for word in words.tolist():
        for offset in range(bits - 1, -1, -1):
            if (word >> offset) & 1:
                out[position >> 3] |= 1 << (7 - (position & 7))
            position += 1
    return np.frombuffer(bytes(out), dtype=np.uint8).copy()


_PACK_CONTRACT = {
    "inputs": "(qubs: unsigned int array, bits: 1..16)",
    "output": "uint8 buffer of ceil(n*bits/8) bytes, MSB-first",
    "domain": "words must fit `bits`; zero-size input packs to zero bytes",
}

KERNELS.register(
    "qub.pack", "reference", _pack_words_reference, contract=_PACK_CONTRACT
)
KERNELS.register(
    "qub.pack",
    "packbits",
    pack_qub_words,
    parity=ParitySpec(
        bit_exact=True,
        notes="np.packbits over the exploded bitstream; identical bytes "
        "including the zero-padded trailing partial byte",
    ),
    contract=_PACK_CONTRACT,
)


#: Decode LUTs shared per (registers, bits) — FCRegisters is frozen, so
#: every consumer of one tap's registers (the packed weight store used to
#: rebuild per construction, FusedEncoder kept a private memo) now gathers
#: from one write-protected table.
_LUT_CACHE: dict[tuple[FCRegisters, int], np.ndarray] = {}


def _decode_lut_cached(registers: FCRegisters, bits: int) -> np.ndarray:
    key = (registers, bits)
    with _CACHE_LOCK:
        lut = _LUT_CACHE.get(key)
    if lut is not None:
        KERNELS.count("qub.decode_lut:cache_hit")
        return lut
    lut = decode_lut(registers, bits)
    lut.setflags(write=False)  # shared across consumers: no mutation
    with _CACHE_LOCK:
        lut = _LUT_CACHE.setdefault(key, lut)
    KERNELS.count("qub.decode_lut:cache_miss")
    return lut


_LUT_CONTRACT = {
    "inputs": "(registers: FCRegisters, bits: int)",
    "output": "int64 array of 2**bits shifted integers (D << n_sh)",
    "domain": "any legal register pair; cached variant returns a shared "
    "read-only table",
}

KERNELS.register(
    "qub.decode_lut", "reference", decode_lut, contract=_LUT_CONTRACT
)
KERNELS.register(
    "qub.decode_lut",
    "cached",
    _decode_lut_cached,
    parity=ParitySpec(
        bit_exact=True,
        notes="same table, computed once per (registers, bits) and shared",
    ),
    contract=_LUT_CONTRACT,
)


# ---------------------------------------------------------------------------
# gemm.int — the PE-array matmul
# ---------------------------------------------------------------------------

def _gemm_int_reference(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """int64 matmul over shifted operands — the hardware accumulation."""
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    return x @ w


def _gemm_int_blas_f64(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """BLAS float64 matmul inside its exact-integer window, else int64.

    numpy's int64 matmul is a naive loop; the float64 one is BLAS.  Every
    float64 arithmetic result below ``2**53`` in magnitude is an exact
    integer, so when ``k * max|x| * max|w| < 2**53`` every product and
    every partial sum is exact and the BLAS path reproduces the int64
    accumulation bit for bit.  QUB operands are at most
    ``2**(bits-1) << 7``, which keeps serving-width GEMMs (k up to a few
    thousand) far inside the window; the guard is evaluated in Python
    integers so it can itself never overflow.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    if x.size == 0 or w.size == 0:
        return x @ w
    k = x.shape[-1] if x.ndim else 1
    bound = k * int(np.abs(x).max()) * int(np.abs(w).max())
    if bound < (1 << 53):
        return (x.astype(np.float64) @ w.astype(np.float64)).astype(np.int64)
    return x @ w


KERNELS.register(
    "gemm.int",
    "reference",
    _gemm_int_reference,
    contract={
        "inputs": "(x: int array (..., M, K), w: int array (..., K, N))",
        "output": "int64 accumulators, matmul broadcasting",
        "domain": "shifted QUB operands (|D| < 2**(bits-1), shifts <= 7)",
    },
)
KERNELS.register(
    "gemm.int",
    "blas_f64",
    _gemm_int_blas_f64,
    parity=ParitySpec(
        bit_exact=True,
        notes="exact inside the 2**53 window (guard in Python ints), "
        "falls back to the int64 matmul outside it",
    ),
    contract={
        "inputs": "(x: int array (..., M, K), w: int array (..., K, N))",
        "output": "int64 accumulators, matmul broadcasting",
        "domain": "any int64 operands; exactness guard picks the path",
    },
)


# ---------------------------------------------------------------------------
# sfu.* — integer special functions (scalar references vs vectorized)
# ---------------------------------------------------------------------------

def _register_sfu(name: str, reference, fast, contract: dict) -> None:
    KERNELS.register(f"sfu.{name}", "reference", reference, contract=contract)
    KERNELS.register(
        f"sfu.{name}",
        "vector",
        fast,
        parity=ParitySpec(
            bit_exact=True,
            notes="exact integer equality with the scalar reference at "
            "every bit-width (same algorithm, batched)",
        ),
        contract=contract,
    )


_register_sfu(
    "sqrt",
    i_sqrt,
    v_i_sqrt,
    {
        "inputs": "(n: non-negative int64 array)",
        "output": "floor(sqrt(n)) as int64",
        "domain": "n >= 0; negative inputs raise ValueError",
    },
)
_register_sfu(
    "exp",
    i_exp,
    v_i_exp,
    {
        "inputs": "(q: non-positive int64 array, s: float scale)",
        "output": "(q_out, s_out) integer exp",
        "domain": "q <= 0 (pre-shifted by max); positives raise ValueError",
    },
)
_register_sfu(
    "softmax",
    i_softmax,
    v_i_softmax,
    {
        "inputs": "(q: int64 array, s: float, axis=-1, out_bits=16)",
        "output": "(codes in [0, 2**out_bits - 1], scale 2**-out_bits)",
        "domain": "any int64 logits",
    },
)
_register_sfu(
    "gelu",
    i_gelu,
    v_i_gelu,
    {
        "inputs": "(q: int64 array, s: float scale)",
        "output": "(q_out, s_out) integer GELU via polynomial erf",
        "domain": "any int64 codes",
    },
)
_register_sfu(
    "layernorm",
    i_layernorm,
    v_i_layernorm,
    {
        "inputs": "(q: int64 array, s: float, weight=None, bias=None, "
        "out_bits=8)",
        "output": "(normalized codes, scale 2**-out_bits)",
        "domain": "any int64 codes; reduces over the last axis",
    },
)


# ---------------------------------------------------------------------------
# cache observability
# ---------------------------------------------------------------------------

def cache_info() -> dict:
    """Sizes of the shared kernel caches (hit/miss counts live in the
    registry counters, keys ``qub.encode:cache_*`` and
    ``qub.decode_lut:cache_*``)."""
    with _CACHE_LOCK:
        return {
            "fused_encoders": len(_ENCODER_CACHE),
            "decode_luts": len(_LUT_CACHE),
        }


def clear_caches() -> None:
    """Drop the shared encoder/LUT caches (tests and long-lived servers)."""
    with _CACHE_LOCK:
        _ENCODER_CACHE.clear()
        _LUT_CACHE.clear()
