"""Synthetic dataset substrate (ImageNet stand-in)."""

from .synthshapes import CLASS_NAMES, SynthShapes, denormalize, generate, make_splits, normalize
from .loader import batches, calibration_set

__all__ = [
    "CLASS_NAMES",
    "SynthShapes",
    "generate",
    "make_splits",
    "normalize",
    "denormalize",
    "batches",
    "calibration_set",
]
