"""Synthetic dataset substrate (ImageNet stand-in) and its corruptions."""

from .synthshapes import CLASS_NAMES, SynthShapes, denormalize, generate, make_splits, normalize
from .loader import batches, calibration_set
from .corruptions import (
    CORRUPTIONS,
    SEVERITIES,
    corrupt_dataset,
    corrupt_images,
    corrupt_pixels,
    corruption_names,
    images_digest,
    synthshapes_c,
)

__all__ = [
    "CLASS_NAMES",
    "SynthShapes",
    "generate",
    "make_splits",
    "normalize",
    "denormalize",
    "batches",
    "calibration_set",
    "CORRUPTIONS",
    "SEVERITIES",
    "corruption_names",
    "corrupt_pixels",
    "corrupt_images",
    "corrupt_dataset",
    "synthshapes_c",
    "images_digest",
]
