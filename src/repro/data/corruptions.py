"""SynthShapes-C: a deterministic, severity-leveled corruption suite.

The serving stack calibrates its quantizers on clean SynthShapes traffic;
this module manufactures the distribution shift that breaks that
assumption.  Mirroring ImageNet-C's protocol, each corruption comes in
five severities and is applied *post-render* in [0, 1] pixel space, so a
corrupted split shares its labels (and therefore its accuracy ground
truth) with the clean split it was derived from.

Everything is seeded: ``(corruption, severity, seed)`` fully determines
the output bytes, which the golden-hash tests pin so drift experiments
reproduce across machines.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .synthshapes import SynthShapes, denormalize, normalize

__all__ = [
    "CORRUPTIONS",
    "SEVERITIES",
    "corruption_names",
    "corrupt_pixels",
    "corrupt_images",
    "corrupt_dataset",
    "synthshapes_c",
    "images_digest",
]

#: ImageNet-C-style severity ladder (1 = mild, 5 = destructive).
SEVERITIES = (1, 2, 3, 4, 5)


def _level(table: tuple, severity: int):
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be in {SEVERITIES}, got {severity}")
    return table[severity - 1]


# ----------------------------------------------------------------------
# Corruption ops.  Each takes ``(images, severity, rng)`` with ``images``
# of shape (N, H, W, 3) in [0, 1] and returns the corrupted copy in
# [0, 1]; nothing mutates its input.


def _gaussian_noise(images: np.ndarray, severity: int, rng: np.random.Generator):
    sigma = _level((0.04, 0.08, 0.13, 0.19, 0.26), severity)
    noise = rng.normal(0.0, sigma, size=images.shape).astype(np.float32)
    return np.clip(images + noise, 0.0, 1.0)


def _impulse_noise(images: np.ndarray, severity: int, rng: np.random.Generator):
    fraction = _level((0.01, 0.03, 0.06, 0.10, 0.17), severity)
    draws = rng.random(images.shape[:3])
    out = images.copy()
    out[draws < fraction / 2] = 1.0  # salt
    out[(draws >= fraction / 2) & (draws < fraction)] = 0.0  # pepper
    return out


def _blur(images: np.ndarray, severity: int, rng: np.random.Generator):
    repeats = _level((1, 2, 3, 5, 7), severity)
    out = images.astype(np.float32)
    for _ in range(repeats):
        padded = np.pad(out, ((0, 0), (1, 1), (1, 1), (0, 0)), mode="edge")
        acc = np.zeros_like(out)
        for dy in range(3):
            for dx in range(3):
                acc += padded[:, dy : dy + out.shape[1], dx : dx + out.shape[2]]
        out = acc / 9.0
    return np.clip(out, 0.0, 1.0)


def _brightness(images: np.ndarray, severity: int, rng: np.random.Generator):
    shift = _level((0.08, 0.16, 0.25, 0.35, 0.45), severity)
    return np.clip(images + shift, 0.0, 1.0)


def _contrast(images: np.ndarray, severity: int, rng: np.random.Generator):
    factor = _level((0.75, 0.55, 0.40, 0.28, 0.18), severity)
    mean = images.mean(axis=(1, 2, 3), keepdims=True)
    return np.clip((images - mean) * factor + mean, 0.0, 1.0)


def _occlusion(images: np.ndarray, severity: int, rng: np.random.Generator):
    fraction = _level((0.15, 0.22, 0.30, 0.38, 0.46), severity)
    out = images.copy()
    height, width = images.shape[1], images.shape[2]
    side = max(1, int(round(fraction * min(height, width))))
    for index in range(len(out)):
        y0 = int(rng.integers(0, height - side + 1))
        x0 = int(rng.integers(0, width - side + 1))
        color = rng.uniform(0.0, 1.0, size=3).astype(np.float32)
        out[index, y0 : y0 + side, x0 : x0 + side] = color
    return out


def _saturate(images: np.ndarray, severity: int, rng: np.random.Generator):
    factor = _level((0.70, 0.50, 0.35, 0.20, 0.08), severity)
    gray = images.mean(axis=-1, keepdims=True)
    return np.clip(gray + (images - gray) * factor, 0.0, 1.0)


#: Registry of corruption ops, in a stable order (the order seeds the RNG
#: stream, so reordering would change outputs — append only).
CORRUPTIONS = {
    "gaussian_noise": _gaussian_noise,
    "impulse_noise": _impulse_noise,
    "blur": _blur,
    "brightness": _brightness,
    "contrast": _contrast,
    "occlusion": _occlusion,
    "saturate": _saturate,
}


def corruption_names() -> tuple[str, ...]:
    return tuple(CORRUPTIONS)


def _rng_for(name: str, severity: int, seed: int) -> np.random.Generator:
    """One independent, reproducible stream per (corruption, severity, seed)."""
    return np.random.default_rng([seed, severity, list(CORRUPTIONS).index(name)])


def corrupt_pixels(
    pixels: np.ndarray, name: str, severity: int, seed: int = 0
) -> np.ndarray:
    """Corrupt a batch of [0, 1] pixel images (N, H, W, 3)."""
    if name not in CORRUPTIONS:
        raise ValueError(f"unknown corruption {name!r}; choices: {corruption_names()}")
    pixels = np.asarray(pixels, dtype=np.float32)
    if pixels.ndim != 4 or pixels.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) images, got shape {pixels.shape}")
    out = CORRUPTIONS[name](pixels, severity, _rng_for(name, severity, seed))
    return out.astype(np.float32)


def corrupt_images(
    images: np.ndarray, name: str, severity: int, seed: int = 0
) -> np.ndarray:
    """Corrupt *normalized* images (the dataset/network representation).

    Round-trips through pixel space so every corruption operates on
    physical intensities and the result is renormalized exactly like the
    clean data — corrupted batches are drop-in replacements for clean
    ones anywhere in the pipeline.
    """
    return normalize(corrupt_pixels(denormalize(np.asarray(images)), name, severity, seed))


def corrupt_dataset(
    dataset: SynthShapes, name: str, severity: int, seed: int = 0
) -> SynthShapes:
    """Corrupted copy of a split; labels are shared, not copied."""
    return SynthShapes(
        corrupt_images(dataset.images, name, severity, seed=seed), dataset.labels
    )


def synthshapes_c(
    dataset: SynthShapes,
    names: tuple[str, ...] | None = None,
    severities: tuple[int, ...] = SEVERITIES,
    seed: int = 0,
) -> dict[tuple[str, int], SynthShapes]:
    """The full corrupted benchmark: every (corruption, severity) split."""
    names = corruption_names() if names is None else tuple(names)
    return {
        (name, severity): corrupt_dataset(dataset, name, severity, seed=seed)
        for name in names
        for severity in severities
    }


def images_digest(images: np.ndarray) -> str:
    """SHA-256 over the raw float32 bytes — the golden-hash determinism pin."""
    return hashlib.sha256(
        np.ascontiguousarray(np.asarray(images, dtype=np.float32)).tobytes()
    ).hexdigest()
