"""SynthShapes: a procedural image-classification dataset.

Stands in for ImageNet in the accuracy experiments (no network access, so
no real image data).  Ten shape/texture classes are rendered procedurally
at 32x32 RGB with randomized color, position, scale, rotation-like jitter
and background clutter, producing a task that is non-trivial for a small
vision transformer yet learnable from a few thousand examples on one CPU
core.

Everything is generated deterministically from integer seeds, so the
train/val splits, the 32-image calibration set and therefore every accuracy
number in the benchmark harness are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CLASS_NAMES", "SynthShapes", "make_splits", "normalize", "denormalize"]

CLASS_NAMES = (
    "circle",
    "square",
    "triangle",
    "cross",
    "ring",
    "h_stripes",
    "v_stripes",
    "checker",
    "diagonal",
    "dots",
)

_MEAN = np.float32(0.5)
_STD = np.float32(0.25)


def normalize(images: np.ndarray) -> np.ndarray:
    """Map [0, 1] pixel values to the standardized network input range."""
    return ((images - _MEAN) / _STD).astype(np.float32)


def denormalize(images: np.ndarray) -> np.ndarray:
    """Invert :func:`normalize` back to [0, 1] pixels (clipped)."""
    return np.clip(images * _STD + _MEAN, 0.0, 1.0)


def _coordinate_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    axis = np.arange(size, dtype=np.float32)
    return np.meshgrid(axis, axis, indexing="ij")


def _render_mask(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render the foreground mask for one sample of class ``label``."""
    yy, xx = _coordinate_grid(size)
    cy = size / 2 + rng.uniform(-size / 6, size / 6)
    cx = size / 2 + rng.uniform(-size / 6, size / 6)
    radius = rng.uniform(size / 5, size / 3.2)
    name = CLASS_NAMES[label]

    if name == "circle":
        return (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    if name == "square":
        return (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
    if name == "triangle":
        inside = (yy >= cy - radius) & (yy <= cy + radius)
        width = (yy - (cy - radius)) / 2.0
        return inside & (np.abs(xx - cx) <= width)
    if name == "cross":
        arm = max(1.5, radius / 3.0)
        horizontal = (np.abs(yy - cy) <= arm) & (np.abs(xx - cx) <= radius)
        vertical = (np.abs(xx - cx) <= arm) & (np.abs(yy - cy) <= radius)
        return horizontal | vertical
    if name == "ring":
        dist2 = (yy - cy) ** 2 + (xx - cx) ** 2
        return (dist2 <= radius**2) & (dist2 >= (0.55 * radius) ** 2)
    if name == "h_stripes":
        period = rng.integers(3, 6)
        return (yy.astype(np.int64) // period) % 2 == 0
    if name == "v_stripes":
        period = rng.integers(3, 6)
        return (xx.astype(np.int64) // period) % 2 == 0
    if name == "checker":
        period = rng.integers(3, 6)
        return ((yy.astype(np.int64) // period) + (xx.astype(np.int64) // period)) % 2 == 0
    if name == "diagonal":
        slope = rng.uniform(0.6, 1.6) * (1 if rng.random() < 0.5 else -1)
        offset = rng.uniform(-size / 4, size / 4)
        thickness = rng.uniform(2.0, 4.0)
        return np.abs((yy - cy) - slope * (xx - cx) - offset) <= thickness
    if name == "dots":
        period = rng.integers(5, 8)
        dot = rng.uniform(1.2, 2.2)
        py = (yy + rng.uniform(0, period)) % period
        px = (xx + rng.uniform(0, period)) % period
        return (py - period / 2) ** 2 + (px - period / 2) ** 2 <= dot**2
    raise ValueError(f"unknown class label {label}")


def _render_image(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one ``(size, size, 3)`` image in [0, 1]."""
    background = rng.uniform(0.0, 0.35, size=(1, 1, 3)).astype(np.float32)
    image = np.broadcast_to(background, (size, size, 3)).copy()
    image += rng.normal(0.0, 0.04, size=image.shape).astype(np.float32)

    foreground = rng.uniform(0.55, 1.0, size=3).astype(np.float32)
    # Guarantee contrast against the background on at least one channel.
    foreground[rng.integers(0, 3)] = 1.0
    mask = _render_mask(label, size, rng)
    image[mask] = foreground + rng.normal(0.0, 0.03, size=(int(mask.sum()), 3)).astype(
        np.float32
    )
    return np.clip(image, 0.0, 1.0)


@dataclass
class SynthShapes:
    """A rendered split of the dataset (normalized images + labels)."""

    images: np.ndarray  # (N, size, size, 3), normalized float32
    labels: np.ndarray  # (N,), int64

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def num_classes(self) -> int:
        return len(CLASS_NAMES)

    def subset(self, count: int, seed: int = 0) -> "SynthShapes":
        """Deterministic random subset of ``count`` samples."""
        if count > len(self):
            raise ValueError(f"requested {count} of {len(self)} samples")
        rng = np.random.default_rng(seed)
        index = rng.choice(len(self), size=count, replace=False)
        return SynthShapes(self.images[index], self.labels[index])


def generate(count: int, size: int = 32, seed: int = 0) -> SynthShapes:
    """Render ``count`` samples with balanced class coverage."""
    rng = np.random.default_rng(seed)
    labels = np.arange(count, dtype=np.int64) % len(CLASS_NAMES)
    rng.shuffle(labels)
    images = np.stack([_render_image(int(lbl), size, rng) for lbl in labels])
    return SynthShapes(normalize(images), labels)


def make_splits(
    train_count: int = 4096,
    val_count: int = 1024,
    size: int = 32,
    seed: int = 0,
) -> tuple[SynthShapes, SynthShapes]:
    """Deterministic train/val splits (different seeds, no overlap by draw)."""
    train = generate(train_count, size=size, seed=seed)
    val = generate(val_count, size=size, seed=seed + 1_000_003)
    return train, val
