"""Minibatch iteration over a :class:`~repro.data.synthshapes.SynthShapes` split."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .synthshapes import SynthShapes

__all__ = ["batches", "calibration_set"]


def batches(
    dataset: SynthShapes,
    batch_size: int,
    shuffle: bool = False,
    seed: int = 0,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` minibatches."""
    count = len(dataset)
    order = np.arange(count)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        if drop_last and len(index) < batch_size:
            return
        yield dataset.images[index], dataset.labels[index]


def calibration_set(dataset: SynthShapes, count: int = 32, seed: int = 7) -> np.ndarray:
    """Draw the paper's calibration batch (32 training images by default)."""
    return dataset.subset(count, seed=seed).images
