"""repro — reproduction of "QUQ: Quadruplet Uniform Quantization for
Efficient Vision Transformer Inference" (DAC 2024).

High-level entry points:

* :func:`quantize_model` — one call from a trained model to a fully (or
  partially) quantized one, following the paper's PTQ protocol.
* :mod:`repro.quant` — QUQ itself (progressive relaxation, QUB codec) and
  every baseline (BaseQ, BiScaled-FxP, FQ-ViT-style, PTQ4ViT-style).
* :mod:`repro.models` / :mod:`repro.data` — the ViT/DeiT/Swin substrate
  and the SynthShapes dataset (ImageNet stand-in).
* :mod:`repro.hw` — the QUA accelerator: bit-exact datapath, area/power
  model, on-chip memory simulation.
"""

from __future__ import annotations

import numpy as np

from . import analysis, autograd, data, hw, models, nn, quant, serve, training
from .quant.hessian import hessian_refine
from .quant.qmodel import PTQPipeline
from .quant.relax import PRAConfig

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "autograd",
    "data",
    "hw",
    "models",
    "nn",
    "quant",
    "serve",
    "training",
    "quantize_model",
    "PTQPipeline",
    "PRAConfig",
]


def quantize_model(
    model,
    calib_images: np.ndarray,
    method: str = "quq",
    bits: int = 6,
    coverage: str = "full",
    hessian: bool = True,
    pra_config: PRAConfig | None = None,
    batch_size: int = 32,
) -> PTQPipeline:
    """Post-training-quantize ``model`` following the paper's protocol.

    Calibrates per-tensor quantizers on ``calib_images`` (the paper uses 32
    training images), optionally refines scales with the Hessian-weighted
    grid search, and leaves the model running with fake quantization
    attached.  Returns the pipeline; call ``pipeline.detach()`` to restore
    float behaviour.
    """
    pipeline = PTQPipeline(
        model, method=method, bits=bits, coverage=coverage, pra_config=pra_config
    )
    pipeline.calibrate(calib_images, batch_size=batch_size)
    if hessian:
        hessian_refine(pipeline, calib_images, batch_size=batch_size)
    return pipeline
