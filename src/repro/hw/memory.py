"""Peak on-chip memory simulation for ViT blocks (Figure 2).

Follows the paper's Section 2 methodology: during inference of one
transformer block, only the weights of the *current* operation are loaded
on-chip, while every live activation stays resident (avoiding off-chip
round trips).  The simulator walks the block's dataflow, tracks tensor
liveness, and reports the peak of (live activations + current weights).

The partial-quantization (PQ) scheme stores GEMM operands at the
quantization bit-width but keeps the hard-to-quantize activations — the
inputs of residual addition, LayerNorm, Softmax and GELU (the red
components of Figure 1) — at full precision.  Full quantization (FQ)
stores everything at the quantization bit-width, which is what QUQ
enables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.configs import ModelConfig, SwinConfig

__all__ = [
    "Op",
    "BlockDataflow",
    "build_vit_block_dataflow",
    "peak_memory_bytes",
    "memory_table",
    "packed_weight_rows",
    "measured_weight_summary",
]

_FP_BITS = 32


@dataclass(frozen=True)
class Op:
    """One operation in the dataflow."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    weight_elems: int = 0


@dataclass
class BlockDataflow:
    """Tensor sizes (elements) plus the op sequence of one block."""

    tensors: dict[str, int]
    #: bit-width category per tensor: "gemm" (green) or "other" (red)
    categories: dict[str, str]
    ops: list[Op] = field(default_factory=list)

    def tensor_bits(self, name: str, scheme: str, bits: int) -> int:
        if scheme == "fp32":
            return _FP_BITS
        if scheme == "fq":
            return bits
        if scheme == "pq":
            return bits if self.categories[name] == "gemm" else _FP_BITS
        raise ValueError(f"unknown scheme {scheme!r}; use fp32, pq or fq")


def build_vit_block_dataflow(
    config: ModelConfig | SwinConfig, batch: int = 1
) -> BlockDataflow:
    """The standard pre-norm transformer block of Figure 1.

    For Swin configs the first stage's geometry is used (window attention
    has the same per-block tensor inventory; attention matrices are
    ``windows x window^2 x window^2`` instead of ``N x N``).
    """
    if isinstance(config, SwinConfig):
        tokens = config.stage_resolution(0) ** 2
        dim = config.embed_dim
        heads = config.num_heads[0]
        window = config.window_size ** 2
        num_windows = tokens // window
        attn_elems = batch * num_windows * heads * window * window
        mlp_ratio = config.mlp_ratio
    else:
        tokens = config.num_tokens
        dim = config.embed_dim
        heads = config.num_heads
        attn_elems = batch * heads * tokens * tokens
        mlp_ratio = config.mlp_ratio

    seq = batch * tokens
    hidden = int(dim * mlp_ratio)

    tensors = {
        "x": seq * dim,  # block input (residual stream)
        "xn1": seq * dim,  # after LN1
        "q": seq * dim,
        "k": seq * dim,
        "v": seq * dim,
        "scores": attn_elems,  # Softmax input
        "probs": attn_elems,  # Softmax output (MatMul operand)
        "ctx": seq * dim,  # attention context (proj input)
        "attn_out": seq * dim,  # proj output (residual-add input)
        "mid": seq * dim,  # after first residual add
        "xn2": seq * dim,  # after LN2
        "h_pre": seq * hidden,  # fc1 output (GELU input)
        "h_act": seq * hidden,  # GELU output (fc2 input)
        "mlp_out": seq * dim,  # fc2 output (residual-add input)
        "y": seq * dim,  # block output
    }
    categories = {
        "x": "other",
        "xn1": "gemm",
        "q": "gemm",
        "k": "gemm",
        "v": "gemm",
        "scores": "other",
        "probs": "gemm",
        "ctx": "gemm",
        "attn_out": "other",
        "mid": "other",
        "xn2": "gemm",
        "h_pre": "other",
        "h_act": "gemm",
        "mlp_out": "other",
        "y": "other",
    }
    ops = [
        Op("ln1", ("x",), ("xn1",)),
        Op("qkv", ("xn1",), ("q", "k", "v"), weight_elems=dim * 3 * dim),
        Op("attn_matmul_qk", ("q", "k"), ("scores",)),
        Op("softmax", ("scores",), ("probs",)),
        Op("attn_matmul_pv", ("probs", "v"), ("ctx",)),
        Op("proj", ("ctx",), ("attn_out",), weight_elems=dim * dim),
        Op("residual1", ("x", "attn_out"), ("mid",)),
        Op("ln2", ("mid",), ("xn2",)),
        Op("fc1", ("xn2",), ("h_pre",), weight_elems=dim * hidden),
        Op("gelu", ("h_pre",), ("h_act",)),
        Op("fc2", ("h_act",), ("mlp_out",), weight_elems=hidden * dim),
        Op("residual2", ("mid", "mlp_out"), ("y",)),
    ]
    return BlockDataflow(tensors, categories, ops)


def peak_memory_bytes(
    dataflow: BlockDataflow, scheme: str, bits: int = 8
) -> tuple[float, str]:
    """Walk the dataflow; return (peak bytes, name of the peak op).

    A tensor is live from the op that produces it (inclusive) until the
    last op that consumes it.  Weights are live only during their op.
    The block input is live from the start; the block output counts as
    live at the final op.
    """
    last_use = {"x": 0}
    for index, op in enumerate(dataflow.ops):
        for name in op.inputs:
            last_use[name] = index
    # The block output must survive the block.
    for name in dataflow.ops[-1].outputs:
        last_use[name] = len(dataflow.ops) - 1

    born: dict[str, int] = {"x": 0}
    for index, op in enumerate(dataflow.ops):
        for name in op.outputs:
            born[name] = index

    peak, peak_op = 0.0, ""
    for index, op in enumerate(dataflow.ops):
        live_bytes = 0.0
        for name, elems in dataflow.tensors.items():
            if born.get(name, 10**9) <= index <= last_use.get(name, -1):
                live_bytes += elems * dataflow.tensor_bits(name, scheme, bits) / 8.0
        weight_bits = bits if scheme in ("pq", "fq") else _FP_BITS
        live_bytes += op.weight_elems * weight_bits / 8.0
        if live_bytes > peak:
            peak, peak_op = live_bytes, op.name
    return peak, peak_op


def memory_table(
    configs: list[ModelConfig | SwinConfig],
    batches: tuple[int, ...] = (1, 2, 4, 8),
    bits: int = 8,
) -> list[dict]:
    """Rows of Figure 2: peak memory of PQ vs FQ per model and batch size."""
    rows = []
    for config in configs:
        for batch in batches:
            dataflow = build_vit_block_dataflow(config, batch)
            pq, _ = peak_memory_bytes(dataflow, "pq", bits)
            fq, _ = peak_memory_bytes(dataflow, "fq", bits)
            rows.append(
                {
                    "model": config.name,
                    "batch": batch,
                    "bits": bits,
                    "pq_kib": pq / 1024.0,
                    "fq_kib": fq / 1024.0,
                    "pq_over_fq": pq / fq,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Measured weight memory: the analytic tables above assume b bits/element
# flat; the integer-native backend actually materializes QUB-packed weight
# buffers (repro.backend.packed), so the two can be cross-checked.


def packed_weight_rows(store, tolerance: float = 0.02) -> list[dict]:
    """Per-tensor measured vs analytic packed-weight bytes.

    ``store`` is any iterable of packed weights with ``tap``, ``elements``,
    ``bits`` and ``packed_bytes`` attributes (duck-typed so this module
    never imports the backend package).  The analytic estimate is the
    flat ``elements * bits / 8``; the measured figure adds bitstream
    padding to whole bytes plus the FC register pair, so a small positive
    excess is expected — rows diverging beyond ``tolerance`` (relative)
    are flagged, which would indicate the packer and the paper's memory
    model have drifted apart.
    """
    rows = []
    for weight in store:
        analytic = weight.elements * weight.bits / 8.0
        measured = float(weight.packed_bytes)
        divergence = (measured - analytic) / analytic if analytic else 0.0
        rows.append(
            {
                "tap": weight.tap,
                "elements": weight.elements,
                "bits": weight.bits,
                "analytic_bytes": analytic,
                "measured_bytes": measured,
                "divergence": round(divergence, 6),
                "flagged": abs(divergence) > tolerance,
            }
        )
    return rows


def measured_weight_summary(store, tolerance: float = 0.02) -> dict:
    """Model-level totals over :func:`packed_weight_rows`.

    ``reduction`` is float32 storage over measured packed storage — the
    number the serve benchmark's int section reports; ``flagged`` lists
    any taps whose measurement diverges from the analytic estimate.
    """
    rows = packed_weight_rows(store, tolerance=tolerance)
    analytic = sum(row["analytic_bytes"] for row in rows)
    measured = sum(row["measured_bytes"] for row in rows)
    fp32 = sum(row["elements"] * 4 for row in rows)
    return {
        "tensors": len(rows),
        "analytic_bytes": analytic,
        "measured_bytes": measured,
        "fp32_bytes": fp32,
        "reduction": round(fp32 / measured, 4) if measured else 0.0,
        "flagged": [row["tap"] for row in rows if row["flagged"]],
        "rows": rows,
    }
