"""Integer-only special functions (the I-BERT / I-ViT lineage).

Section 4.2 of the QUQ paper streams decoded integers through the same
SFUs as an integer-only uniform-quantization accelerator [I-BERT, I-ViT].
This module provides those integer-only kernels so the SFU path can be
simulated without any floating-point arithmetic:

* :func:`i_exp` / :func:`i_softmax` — I-BERT's polynomial exp on integers
  (range-reduced by ``ln 2``; second-order polynomial), softmax normalized
  with an integer reciprocal.
* :func:`i_gelu` — I-BERT's integer GELU via a second-order polynomial
  approximation of ``erf``.
* :func:`i_layernorm` — integer mean/variance with a Newton-style integer
  square root.
* :func:`i_sqrt` — integer Newton iteration used by i_layernorm.

All kernels take integer tensors ``q`` with a scale ``s`` (value =
``q * s``) and return ``(q_out, s_out)``.  They are validated against the
float reference in the test suite; the accuracy ablation bench measures
their end-to-end cost on a quantized model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["i_sqrt", "i_exp", "i_softmax", "i_gelu", "i_layernorm"]

_LN2 = float(np.log(2.0))

# I-BERT's second-order polynomial coefficients.
_EXP_A, _EXP_B, _EXP_C = 0.3585, 1.353, 0.344
_ERF_A, _ERF_B, _ERF_C = -0.2888, -1.769, 1.0


def i_sqrt(n: np.ndarray) -> np.ndarray:
    """Integer square root by Newton iteration (floor of the true root)."""
    n = np.asarray(n, dtype=np.int64)
    if (n < 0).any():
        raise ValueError("i_sqrt requires non-negative inputs")
    x = np.where(n > 0, np.int64(1) << ((_bit_length(n) + 1) // 2), 0)
    for _ in range(20):
        positive = x > 0
        new_x = np.where(positive, (x + np.floor_divide(n, np.maximum(x, 1))) // 2, 0)
        if (new_x >= x).all():
            break
        x = np.where(new_x < x, new_x, x)
    return x


def _bit_length(n: np.ndarray) -> np.ndarray:
    n = np.maximum(np.asarray(n, dtype=np.int64), 1)
    return np.floor(np.log2(n)).astype(np.int64) + 1


def _i_poly(q: np.ndarray, s: float, a: float, b: float, c: float) -> tuple[np.ndarray, float]:
    """Integer evaluation of ``a*(x + b)^2 + c`` at ``x = q*s``."""
    q_b = np.int64(np.floor(b / s))
    q_c = np.int64(np.floor(c / (a * s * s)))
    q_out = (q + q_b) ** 2 + q_c
    return q_out, a * s * s


def i_exp(q: np.ndarray, s: float) -> tuple[np.ndarray, float]:
    """Integer exp for non-positive inputs (I-BERT Algorithm: exp-shift).

    Decomposes ``x = (-z) * ln2 + p`` with ``p in (-ln2, 0]``, evaluates the
    polynomial at ``p`` and shifts right by ``z``.
    """
    q = np.asarray(q, dtype=np.int64)
    if (q > 0).any():
        raise ValueError("i_exp expects non-positive inputs (pre-shifted by max)")
    q_ln2 = np.int64(np.floor(_LN2 / s))
    z = np.floor_divide(-q, q_ln2)
    q_p = q + z * q_ln2  # p/s, in (-ln2/s, 0]
    q_l, s_l = _i_poly(q_p, s, _EXP_A, _EXP_B, _EXP_C)
    # exp(x) ~ poly(p) >> z; keep precision by scaling into a fixed budget.
    z = np.minimum(z, 62)
    q_out = np.floor_divide(q_l, np.int64(1) << z)
    return q_out, s_l


def i_softmax(q: np.ndarray, s: float, axis: int = -1, out_bits: int = 16) -> tuple[np.ndarray, float]:
    """Integer-only softmax over ``axis``.

    Returns codes in ``[0, 2^out_bits - 1]`` with scale ``2^-out_bits``
    (probabilities).
    """
    q = np.asarray(q, dtype=np.int64)
    shifted = q - q.max(axis=axis, keepdims=True)
    q_exp, _ = i_exp(shifted, s)
    total = q_exp.sum(axis=axis, keepdims=True)
    scale_out = 2.0**-out_bits
    factor = np.int64(2**out_bits)
    q_out = np.floor_divide(q_exp * factor, np.maximum(total, 1))
    return q_out, scale_out


def i_gelu(q: np.ndarray, s: float) -> tuple[np.ndarray, float]:
    """Integer-only GELU: ``x * (1 + erf(x/sqrt2)) / 2`` with polynomial erf."""
    q = np.asarray(q, dtype=np.int64)
    s_erf_in = s / np.sqrt(2.0)
    # erf is odd: evaluate the polynomial on |x| clipped to [0, -b], where
    # erf(|x|) ~ a*(|x| + b)^2 + c (I-BERT's fit; note a < 0 makes the
    # polynomial's output scale negative, which the integer pipeline
    # carries through consistently).
    q_abs = np.abs(q)
    q_clip = np.minimum(q_abs, np.int64(np.floor(-_ERF_B / s_erf_in)))
    q_l, s_l = _i_poly(q_clip, s_erf_in, _ERF_A, _ERF_B, _ERF_C)
    q_erf = np.sign(q) * q_l
    # 1 + erf in the same scale:
    q_one = np.int64(np.floor(1.0 / s_l))
    q_sum = q_erf + q_one
    q_out = q * q_sum
    return q_out, s * s_l / 2.0


def i_layernorm(
    q: np.ndarray,
    s: float,
    weight: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    out_bits: int = 8,
) -> tuple[np.ndarray, float]:
    """Integer-only LayerNorm over the last axis.

    Mean and variance are computed in integers; the inverse standard
    deviation uses :func:`i_sqrt` on a fixed-point variance.  The affine
    parameters (float) are folded in through a single requantization step,
    as an accelerator would via its output scale.
    """
    q = np.asarray(q, dtype=np.int64)
    n = q.shape[-1]
    mean = np.floor_divide(q.sum(axis=-1, keepdims=True), n)
    centered = q - mean
    var = np.floor_divide((centered * centered).sum(axis=-1, keepdims=True), n)
    std = np.maximum(i_sqrt(var), 1)
    # Normalized value in Q(out_bits) fixed point.
    factor = np.int64(1) << out_bits
    normalized = np.floor_divide(centered * factor, std)
    s_out = 2.0**-out_bits
    if weight is not None:
        q_w = np.rint(np.asarray(weight, dtype=np.float64) / s_out).astype(np.int64)
        normalized = np.floor_divide(normalized * q_w, factor)
    if bias is not None:
        normalized = normalized + np.rint(
            np.asarray(bias, dtype=np.float64) / s_out
        ).astype(np.int64)
    return normalized, s_out
