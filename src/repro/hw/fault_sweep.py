"""Accuracy-under-fault sweeps over the QUA datapath.

The capstone harness of the soft-error work: run a calibrated ViT through
:class:`~repro.hw.executor.ModelExecutor` at a grid of bit-error rates ×
injection sites × protection settings, and report how far predictions
drift from the fault-free integer run — unprotected vs protected — along
with the exact detected/corrected/silent fault ledger and the modeled
area/power cost of the armed protection.

The primary metric is *agreement with the fault-free run*
(``match_fault_free``): it is label-free, so it isolates the damage done
by the faults from the model's baseline accuracy.  When labels are
supplied, Top-1 accuracy is reported alongside.  Batches whose values
trip the numeric guardrail (NaN/Inf reaching a quantization point) are
counted as ``guard_failures`` and scored as mispredictions — the serving
analogue is a rejected batch, never a silently wrong answer.

Determinism: the injector derives every flip from ``(seed, site, event
index)`` and batches are walked in a fixed order, so the same config
reproduces the same report bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..resilience.guards import NumericGuardError
from .area_power import protection_overhead
from .executor import ModelExecutor
from .faults import HW_FAULT_SITES, BitFaultInjector
from .protect import ProtectionConfig, ProtectionStats

__all__ = ["FaultSweepConfig", "run_fault_sweep", "format_fault_sweep"]

_UNPROTECTED = ProtectionConfig(parity=False, tmr=False, range_guard=False)
_PROTECTED = ProtectionConfig(parity=True, tmr=True, range_guard=True)


@dataclass(frozen=True)
class FaultSweepConfig:
    """One sweep: BER grid x site selections x {unprotected, protected}."""

    bits: int = 8
    bers: tuple[float, ...] = (1e-4, 1e-3)
    #: Site selections to sweep.  ``"all"`` arms every site class; any
    #: other entry arms exactly that one site class.
    site_cases: tuple[str, ...] = HW_FAULT_SITES + ("all",)
    batch: int = 4
    seed: int = 0
    #: Protected runs (all schemes armed, every site injecting) must keep
    #: at least this fraction of predictions matching the fault-free run.
    protected_match_floor: float = 0.75
    array: int = 16  # geometry for the area/power overhead model

    def __post_init__(self):
        if self.bits < 3:
            raise ValueError("bits must be >= 3")
        if not self.bers or any(not 0.0 <= b < 1.0 for b in self.bers):
            raise ValueError("bers must be non-empty, each in [0, 1)")
        known = set(HW_FAULT_SITES) | {"all"}
        unknown = set(self.site_cases) - known
        if unknown:
            raise ValueError(f"unknown site cases {sorted(unknown)}")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if not 0.0 <= self.protected_match_floor <= 1.0:
            raise ValueError("protected_match_floor must be in [0, 1]")


def _predict(
    executor: ModelExecutor, images: np.ndarray, batch: int
) -> tuple[np.ndarray, int]:
    """Batched argmax predictions; guard-tripped batches predict -1."""
    predictions = np.full(images.shape[0], -1, dtype=np.int64)
    guard_failures = 0
    for start in range(0, images.shape[0], batch):
        chunk = images[start : start + batch]
        try:
            logits = executor.run(chunk)
        except NumericGuardError:
            guard_failures += 1
            continue
        predictions[start : start + chunk.shape[0]] = logits.argmax(-1)
    return predictions, guard_failures


def run_fault_sweep(
    model,
    pipeline,
    images: np.ndarray,
    config: FaultSweepConfig = FaultSweepConfig(),
    labels: np.ndarray | None = None,
) -> dict:
    """Sweep BER x site x protection; return the JSON-serializable report.

    ``pipeline`` is a calibrated ``method="quq"`` PTQPipeline (detached);
    ``images`` the evaluation set.  The fault-free integer run is the
    reference every cell is scored against.
    """
    images = np.ascontiguousarray(images, dtype=np.float64)
    baseline = ModelExecutor(model, pipeline, bits=config.bits)
    reference, _ = _predict(baseline, images, config.batch)
    fault_free = {"predictions": reference.tolist()}
    if labels is not None:
        fault_free["top1"] = float(np.mean(reference == labels))

    rows = []
    for ber in config.bers:
        for site_case in config.site_cases:
            sites = HW_FAULT_SITES if site_case == "all" else (site_case,)
            for label, protection in (
                ("unprotected", _UNPROTECTED),
                ("protected", _PROTECTED),
            ):
                injector = BitFaultInjector(ber=ber, seed=config.seed, sites=sites)
                stats = ProtectionStats()
                executor = ModelExecutor(
                    model,
                    pipeline,
                    bits=config.bits,
                    faults=injector,
                    protection=protection,
                    stats=stats,
                )
                predictions, guard_failures = _predict(
                    executor, images, config.batch
                )
                row = {
                    "ber": ber,
                    "sites": site_case,
                    "protection": label,
                    "match_fault_free": float(np.mean(predictions == reference)),
                    "guard_failures": guard_failures,
                    "injected": injector.snapshot(),
                    "outcomes": stats.snapshot(),
                }
                if labels is not None:
                    row["top1"] = float(np.mean(predictions == labels))
                rows.append(row)

    protected_rows = [r for r in rows if r["protection"] == "protected"]
    unprotected_all = [
        r for r in rows
        if r["protection"] == "unprotected" and r["sites"] == "all"
    ]
    protected_all = [
        r for r in rows
        if r["protection"] == "protected" and r["sites"] == "all"
    ]
    checks = {
        # TMR's contract: nothing silently corrupts the FC registers.
        "zero_silent_registers_under_tmr": all(
            r["outcomes"]["register"]["silent"] == 0 for r in protected_rows
        ),
        # At the highest swept BER the unprotected datapath must degrade
        # measurably — otherwise the sweep proves nothing.
        "unprotected_degrades": (
            min(r["match_fault_free"] for r in unprotected_all) < 1.0
        ),
        # Protection keeps agreement with the fault-free run above the floor.
        "protected_within_tolerance": all(
            r["match_fault_free"] >= config.protected_match_floor
            for r in protected_all
        ),
    }
    return {
        "model": getattr(getattr(model, "config", None), "name", "?"),
        "bits": config.bits,
        "seed": config.seed,
        "images": int(images.shape[0]),
        "batch": config.batch,
        "bers": list(config.bers),
        "site_cases": list(config.site_cases),
        "protected_match_floor": config.protected_match_floor,
        "fault_free": fault_free,
        "rows": rows,
        "protection_overhead": protection_overhead(
            _PROTECTED, bits=config.bits, array=config.array
        ),
        "checks": checks,
        "passed": all(checks.values()),
    }


def format_fault_sweep(report: dict) -> str:
    """Human-readable rendering of a sweep report."""
    from ..analysis import format_table

    header = ["ber", "sites", "protection", "match", "silent", "detected", "guard"]
    if any("top1" in row for row in report["rows"]):
        header.insert(4, "top1")
    table_rows = []
    for row in report["rows"]:
        out = row["outcomes"]
        detected = (
            out["qub"]["detected"] + out["sfu"]["detected"]
            + out["register"]["corrected"] + out["register"]["detected"]
            + out["accumulator"]["detected"]
        )
        cells = [
            f"{row['ber']:g}",
            row["sites"],
            row["protection"],
            f"{row['match_fault_free']:.3f}",
            out["silent_total"],
            detected,
            row["guard_failures"],
        ]
        if "top1" in row:
            cells.insert(4, f"{row['top1']:.3f}")
        table_rows.append(cells)
    overhead = report["protection_overhead"]
    lines = [
        format_table(
            header, table_rows,
            title=f"Fault sweep: {report['model']} {report['bits']}-bit "
                  f"(seed {report['seed']}, {report['images']} images)",
        ),
        f"protection overhead: +{overhead['area_overhead_pct']:.1f}% area, "
        f"+{overhead['power_overhead_pct']:.1f}% power "
        f"(vs unprotected QUQ @ {overhead['array']}x{overhead['array']})",
        "checks: " + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in report["checks"].items()
        ),
        f"verdict: {'PASS' if report['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)
