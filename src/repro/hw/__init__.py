"""Hardware models: QUA behavioral simulation, area/power, memory."""

from .accelerator import QUA, EncodedTensor, encode_tensor, gemm_cycles
from .executor import BlockExecutor, ModelExecutor
from .faults import (
    ACC_PHYSICAL_BITS,
    HW_FAULT_SITES,
    SITE_ACCUMULATOR,
    SITE_QUB,
    SITE_REGISTER,
    SITE_SFU,
    BitFaultInjector,
)
from .fault_sweep import FaultSweepConfig, format_fault_sweep, run_fault_sweep
from .protect import ProtectionConfig, ProtectionStats, majority_vote, parity_filter, popcount
from .int_sfu import i_exp, i_gelu, i_layernorm, i_softmax, i_sqrt
from .area_power import AcceleratorSpec, AreaPowerReport, evaluate, protection_overhead, table4
from .gates import (
    ENERGY_PER_GATE_PJ,
    NAND2_AREA_UM2,
    adder_gates,
    leading_zero_detector_gates,
    multiplier_gates,
    mux_gates,
    register_gates,
    shifter_gates,
)
from .memory import (
    BlockDataflow,
    Op,
    build_vit_block_dataflow,
    memory_table,
    peak_memory_bytes,
)

__all__ = [
    "QUA",
    "EncodedTensor",
    "encode_tensor",
    "gemm_cycles",
    "BlockExecutor",
    "ModelExecutor",
    "ACC_PHYSICAL_BITS",
    "HW_FAULT_SITES",
    "SITE_ACCUMULATOR",
    "SITE_QUB",
    "SITE_REGISTER",
    "SITE_SFU",
    "BitFaultInjector",
    "FaultSweepConfig",
    "format_fault_sweep",
    "run_fault_sweep",
    "ProtectionConfig",
    "ProtectionStats",
    "majority_vote",
    "parity_filter",
    "popcount",
    "protection_overhead",
    "i_exp",
    "i_gelu",
    "i_layernorm",
    "i_softmax",
    "i_sqrt",
    "AcceleratorSpec",
    "AreaPowerReport",
    "evaluate",
    "table4",
    "NAND2_AREA_UM2",
    "ENERGY_PER_GATE_PJ",
    "multiplier_gates",
    "adder_gates",
    "register_gates",
    "shifter_gates",
    "mux_gates",
    "leading_zero_detector_gates",
    "BlockDataflow",
    "Op",
    "build_vit_block_dataflow",
    "peak_memory_bytes",
    "memory_table",
]
