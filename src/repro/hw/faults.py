"""Deterministic, seeded bit-fault injection for the QUA datapath.

A 28 nm deployment of the accelerator is not fault-free: particle strikes
and voltage noise flip bits in SRAM words and pipeline registers, and a
single flipped bit in a QUB code word or an FC register silently remaps an
entire subrange (the top bit alone moves an element between the fine and
coarse spaces).  :class:`BitFaultInjector` models exactly that — uniform
independent bit flips at a configurable bit-error rate (BER) — at the four
storage/datapath sites of the behavioral model:

* ``qub``          — QUB code words fetched by the decoding units feeding
  the PE array (``EncodedTensor.qubs``);
* ``register``     — the packed FC register bytes (``SpaceRegister.pack``)
  read alongside every fetch;
* ``accumulator``  — the PE accumulators inside ``QUA.integer_gemm``
  (flips land in the low ``ACC_PHYSICAL_BITS`` bits, the physical
  register width of the area/power model);
* ``sfu``          — QUB words on the SFU load path.

Determinism rides on the event-indexed :class:`~repro.resilience.faults.
FaultPlan` machinery: every injection call consumes one ``bit_flip`` event
at its site, and the RNG that picks the flipped bit positions is derived
from ``(seed, site, event index)`` — so the same seed reproduces the same
faulty bits regardless of sweep order, and an explicit plan with
``bit_flip`` windows composes hardware faults with the serving-layer
chaos soak (faults fire only inside the windows).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..resilience.faults import BIT_FLIP, FaultPlan, FaultSpec

__all__ = [
    "SITE_QUB",
    "SITE_REGISTER",
    "SITE_ACCUMULATOR",
    "SITE_SFU",
    "HW_FAULT_SITES",
    "ACC_PHYSICAL_BITS",
    "BitFaultInjector",
]

SITE_QUB = "qub"
SITE_REGISTER = "register"
SITE_ACCUMULATOR = "accumulator"
SITE_SFU = "sfu"

HW_FAULT_SITES = (SITE_QUB, SITE_REGISTER, SITE_ACCUMULATOR, SITE_SFU)

#: Physical accumulator width (matches ``repro.hw.area_power._ACC_WIDTH``):
#: flips are confined to these low-order two's-complement bits even though
#: the behavioral model accumulates in int64.
ACC_PHYSICAL_BITS = 32


class BitFaultInjector:
    """Flip bits at the QUA's storage sites, deterministically.

    Parameters
    ----------
    ber:
        Per-bit flip probability per fetch event.
    seed:
        Root seed of every per-event RNG stream.
    sites:
        Which site classes inject (subset of :data:`HW_FAULT_SITES`);
        calls for a disabled site are no-ops that consume no events.
    plan:
        Optional shared :class:`FaultPlan`.  When given, flips fire only
        inside its ``bit_flip`` windows (chaos-soak composition); when
        omitted, a private always-on plan is used and the BER governs
        every event.
    """

    def __init__(
        self,
        ber: float,
        seed: int = 0,
        sites: tuple[str, ...] = HW_FAULT_SITES,
        plan: FaultPlan | None = None,
    ):
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"bit-error rate must be in [0, 1), got {ber}")
        unknown = set(sites) - set(HW_FAULT_SITES)
        if unknown:
            raise ValueError(f"unknown fault sites {sorted(unknown)}; choices: {HW_FAULT_SITES}")
        self.ber = float(ber)
        self.seed = int(seed)
        self.sites = tuple(sites)
        self.plan = plan if plan is not None else FaultPlan(
            [FaultSpec(BIT_FLIP, start=0, count=1 << 62)], seed=seed
        )
        self._events: dict[str, int] = {site: 0 for site in HW_FAULT_SITES}
        self._flipped_bits: dict[str, int] = {site: 0 for site in HW_FAULT_SITES}
        self._faulted_words: dict[str, int] = {site: 0 for site in HW_FAULT_SITES}

    # ------------------------------------------------------------------
    def _rng(self, site: str, index: int) -> np.random.Generator:
        # crc32 (not hash()) so the stream survives interpreter restarts.
        return np.random.default_rng(
            [self.seed, zlib.crc32(site.encode("utf-8")), index]
        )

    def _positions(
        self, site_class: str, site: str, total_bits: int
    ) -> np.ndarray | None:
        """Flat bit positions to flip for one fetch event (None = no event)."""
        if site_class not in self.sites or total_bits == 0:
            return None
        full_site = f"{site_class}:{site}"
        spec, index = self.plan.advance(BIT_FLIP, full_site)
        self._events[site_class] += 1
        if spec is None or self.ber == 0.0:
            return np.empty(0, dtype=np.int64)
        rng = self._rng(full_site, index)
        flips = int(rng.binomial(total_bits, self.ber))
        if flips == 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(total_bits, size=flips, replace=False).astype(np.int64)

    def _record(self, site_class: str, positions: np.ndarray, word_bits: int) -> None:
        self._flipped_bits[site_class] += int(positions.size)
        self._faulted_words[site_class] += int(
            np.unique(positions // word_bits).size
        )

    # ------------------------------------------------------------------
    def corrupt_words(
        self, words: np.ndarray, bits: int, site_class: str, site: str
    ) -> np.ndarray:
        """Return ``words`` with this event's bit flips applied (a copy).

        ``bits`` is the stored word width (QUB words hold ``bits`` bits,
        register bytes 8).  Returns the input array unchanged (same
        object) when nothing flips.
        """
        positions = self._positions(site_class, site, words.size * bits)
        if positions is None or positions.size == 0:
            return words
        self._record(site_class, positions, bits)
        faulty = words.copy()
        flat = faulty.reshape(-1)
        masks = (np.int64(1) << (positions % bits)).astype(flat.dtype)
        np.bitwise_xor.at(flat, positions // bits, masks)
        return faulty

    def corrupt_accumulator(self, acc: np.ndarray, site: str) -> np.ndarray:
        """Flip bits in the low :data:`ACC_PHYSICAL_BITS` of int64 accumulators."""
        positions = self._positions(
            SITE_ACCUMULATOR, site, acc.size * ACC_PHYSICAL_BITS
        )
        if positions is None or positions.size == 0:
            return acc
        self._record(SITE_ACCUMULATOR, positions, ACC_PHYSICAL_BITS)
        faulty = acc.copy()
        flat = faulty.reshape(-1)
        masks = np.int64(1) << (positions % ACC_PHYSICAL_BITS)
        np.bitwise_xor.at(flat, positions // ACC_PHYSICAL_BITS, masks)
        return faulty

    # ------------------------------------------------------------------
    def events(self, site_class: str) -> int:
        return self._events[site_class]

    def flipped_bits(self, site_class: str | None = None) -> int:
        if site_class is None:
            return sum(self._flipped_bits.values())
        return self._flipped_bits[site_class]

    def snapshot(self) -> dict:
        """JSON-serializable view of what was injected where."""
        return {
            "ber": self.ber,
            "seed": self.seed,
            "sites": list(self.sites),
            "events": {k: v for k, v in self._events.items() if v},
            "flipped_bits": {k: v for k, v in self._flipped_bits.items() if v},
            "faulted_words": {k: v for k, v in self._faulted_words.items() if v},
        }
