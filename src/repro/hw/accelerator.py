"""Behavioral model of the quadruplet uniform accelerator (QUA, Figure 6).

Bit-exact simulation of the integer datapath:

* **Decoding unit (DU)** — turns QUB bytes into ``(D, n_sh)`` per Eq. (6)-(7).
* **PE array** — multiply-accumulate over decoded operands with the
  product shift of Eq. (5); integer-only, verified to match the float GEMM
  over dequantized values exactly.
* **Quantization unit (QU)** — requantizes accumulator values into the
  output tensor's QUQ parameters (the hardware performs the subrange
  comparison with leading-zero/one detection; the behavioral model uses the
  equivalent arithmetic comparison).
* **Special function unit (SFU)** — decodes QUBs into plain integers
  ``d = D << n_sh`` on its load path, then applies LayerNorm / Softmax /
  GELU / addition at full precision (the paper streams these through the
  same SFUs as a uniform-quantization accelerator).

A simple weight-stationary cycle model rounds out the performance side.

Soft errors: every storage fetch and accumulator write-back can run
through an optional :class:`~repro.hw.faults.BitFaultInjector` plus a
:class:`~repro.hw.protect.ProtectionConfig` (per-word parity on QUB
fetches, TMR on the FC register bytes, a magnitude-envelope guard on PE
accumulators).  With ``faults=None`` (the default) every path is
bit-exact with the fault-free model — no extra work, no extra copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels import get_kernel
from ..quant.params import QUQParams
from ..quant.qub import FCRegisters, decode, encode, legalize_for_hardware
from ..quant.quq import QuantizedTensor, quantize_with_params
from ..quant.relax import PRAConfig, progressive_relaxation
from ..resilience.guards import NumericGuard, NumericGuardError
from .faults import SITE_QUB, SITE_REGISTER, SITE_SFU, BitFaultInjector
from .protect import ProtectionConfig, ProtectionStats, majority_vote, parity_filter

__all__ = ["EncodedTensor", "encode_tensor", "QUA", "gemm_cycles"]


@dataclass
class EncodedTensor:
    """A tensor in QUA wire format: QUB bytes + FC registers + base delta."""

    qubs: np.ndarray
    registers: FCRegisters
    base_delta: float
    bits: int
    # Memoized views: decoding is deterministic given (qubs, registers),
    # and verification passes re-decode the same packed weights many
    # times over.  Fault injection never reads these — the QUA fetch
    # paths decode their own (possibly corrupted) copies of the bytes.
    _decoded: tuple | None = field(default=None, repr=False, compare=False)
    _transposed: "EncodedTensor | None" = field(default=None, repr=False, compare=False)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.qubs.shape

    def decoded(self) -> tuple[np.ndarray, np.ndarray]:
        """Run the DU over every element: returns (D, n_sh), cached."""
        if self._decoded is None:
            self._decoded = decode(self.qubs, self.registers, self.bits)
        return self._decoded

    def transposed(self) -> "EncodedTensor":
        """Swap the last two axes (a dataflow rearrangement, not arithmetic).

        Cached, and the flipped view points back at this tensor, so
        ``t.transposed().transposed() is t``; an already-computed decode
        carries over as axis-swapped views rather than a second DU pass.
        """
        if self._transposed is None:
            flipped = EncodedTensor(
                np.swapaxes(self.qubs, -1, -2),
                self.registers,
                self.base_delta,
                self.bits,
            )
            if self._decoded is not None:
                flipped._decoded = tuple(
                    np.swapaxes(part, -1, -2) for part in self._decoded
                )
            flipped._transposed = self
            self._transposed = flipped
        return self._transposed

    def to_float(self) -> np.ndarray:
        """SFU load path: d = D << n_sh, scaled by the base delta."""
        d, n_sh = self.decoded()
        return (d.astype(np.float64) * (1 << n_sh).astype(np.float64)) * self.base_delta


def encode_tensor(
    x: np.ndarray,
    bits: int,
    params: QUQParams | None = None,
    config: PRAConfig | None = None,
) -> EncodedTensor:
    """Quantize ``x`` with (hardware-legal) QUQ parameters and encode it.

    Dispatches through the kernel registry (op ``qub.encode``): the
    memoized :class:`~repro.backend.kernels.FusedEncoder` by default, the
    quantize-then-encode reference under ``REPRO_KERNELS=reference``.
    """
    if params is None:
        params = progressive_relaxation(x, bits, config)
    qubs, registers, base_delta = get_kernel("qub.encode")(x, params, bits)
    return EncodedTensor(qubs, registers, base_delta, bits)


class QUA:
    """Quadruplet uniform accelerator: integer GEMM plus requantization.

    ``faults`` (a :class:`BitFaultInjector`) arms soft-error injection at
    the QUB/register/accumulator/SFU sites; ``protection`` selects which
    hardening schemes absorb them, and ``stats`` is the shared
    detected-vs-silent ledger (one per executor, passed down so every
    block's QUA writes the same ledger).
    """

    def __init__(
        self,
        array: int = 16,
        faults: BitFaultInjector | None = None,
        protection: ProtectionConfig | None = None,
        stats: ProtectionStats | None = None,
        guard_saturation: float = 1e6,
    ):
        if array < 1:
            raise ValueError("PE array size must be >= 1")
        self.array = array
        self.faults = faults
        if protection is None:
            # All schemes armed by default when injecting; irrelevant otherwise.
            protection = ProtectionConfig()
        self.protection = protection
        self.stats = stats if stats is not None else ProtectionStats()
        self.guard = NumericGuard(guard_saturation)

    # ------------------------------------------------------------------
    # Fetch paths: where injection and protection meet the datapath.
    def _fetch_registers(self, registers: FCRegisters, site: str) -> FCRegisters:
        """Load the FC register bytes through TMR voting and strict unpack.

        A corruption that survives the vote is caught by
        :meth:`FCRegisters.unpack` if it produces an illegal byte (modeled
        as a machine-check reload of the golden bytes) and is otherwise a
        *silent* register corruption — the worst failure class, since one
        byte misconfigures the decode of an entire tensor.
        """
        if self.faults is None:
            return registers
        golden = np.array(registers.pack(), dtype=np.uint8)
        copies = 3 if self.protection.tmr else 1
        loaded = [
            self.faults.corrupt_words(golden, 8, SITE_REGISTER, f"{site}/r{i}")
            for i in range(copies)
        ]
        faulted = sum(1 for copy in loaded if copy is not golden)
        self.stats.register_faulted_copies += faulted
        voted = majority_vote(loaded) if copies == 3 else loaded[0]
        if np.array_equal(voted, golden):
            self.stats.register_corrected += faulted
            return registers
        try:
            reloaded = FCRegisters.unpack(int(voted[0]), int(voted[1]))
        except ValueError:
            self.stats.register_detected += 1
            return registers
        self.stats.register_silent += 1
        return reloaded

    def _fetch(
        self, t: EncodedTensor, site: str, site_class: str = SITE_QUB
    ) -> tuple[np.ndarray, FCRegisters]:
        """One storage fetch: corrupt the QUB words, run the parity check."""
        if self.faults is None:
            return t.qubs, t.registers
        faulty = self.faults.corrupt_words(t.qubs, t.bits, site_class, site)
        qubs, faulted, detected, silent = parity_filter(
            t.qubs, faulty, t.bits, self.protection.parity
        )
        if site_class == SITE_SFU:
            self.stats.sfu_faulted_words += faulted
            self.stats.sfu_detected += detected
            self.stats.sfu_silent += silent
        else:
            self.stats.qub_faulted_words += faulted
            self.stats.qub_detected += detected
            self.stats.qub_silent += silent
        return qubs, self._fetch_registers(t.registers, site)

    # ------------------------------------------------------------------
    def integer_gemm(
        self, x: EncodedTensor, w: EncodedTensor, site: str = "gemm"
    ) -> np.ndarray:
        """PE-array MAC: ``sum_k (Dx*Dw) << (nx+nw)``, int64 accumulators.

        ``x`` is ``(..., M, K)``, ``w`` is ``(..., K, N)`` (batched GEMMs
        broadcast like ``numpy.matmul``).  The shifted operands fit well
        inside int64 (|D| < 2^(b-1), shifts <= 7 each), so the int64
        matmul reproduces the hardware accumulation exactly.

        With faults armed, both operand fetches pass through the parity/TMR
        path, and accumulator bit flips land after the matmul.  The range
        guard compares each faulty accumulator against its exact magnitude
        envelope ``|Dx << nx| @ |Dw << nw|``; violations recompute the tile.
        """
        w_rows = w.shape[0] if len(w.shape) == 1 else w.shape[-2]
        if x.shape[-1] != w_rows:
            raise ValueError(f"GEMM shape mismatch: {x.shape} @ {w.shape}")
        qx, rx = self._fetch(x, f"{site}/x")
        qw, rw = self._fetch(w, f"{site}/w")
        dx, nx = decode(qx, rx, x.bits)
        dw, nw = decode(qw, rw, w.bits)
        shifted_x = dx << nx  # (Dx << nx); the split of the total shift
        shifted_w = dw << nw  # between operands is mathematically free
        # The PE-array MAC goes through the registry: the BLAS-window fast
        # GEMM by default, the int64 matmul under REPRO_KERNELS=reference.
        acc = get_kernel("gemm.int")(shifted_x, shifted_w)
        if self.faults is None:
            return acc
        faulty = self.faults.corrupt_accumulator(acc, site)
        if faulty is acc:
            return acc
        changed = faulty != acc
        faulted = int(changed.sum())
        self.stats.acc_faulted_words += faulted
        if self.protection.range_guard:
            envelope = np.abs(shifted_x) @ np.abs(shifted_w)
            flagged = np.abs(faulty) > envelope  # golden never exceeds it
            detected = int(flagged.sum())
            self.stats.acc_detected += detected
            self.stats.acc_silent += faulted - detected
            return np.where(flagged, acc, faulty)
        self.stats.acc_silent += faulted
        return faulty

    def gemm(
        self, x: EncodedTensor, w: EncodedTensor, site: str = "gemm"
    ) -> np.ndarray:
        """Integer GEMM scaled back to real values (float64)."""
        acc = self.integer_gemm(x, w, site=site)
        return acc.astype(np.float64) * (x.base_delta * w.base_delta)

    # ------------------------------------------------------------------
    def requantize(
        self, acc: np.ndarray, scale: float, out_params: QUQParams
    ) -> QuantizedTensor:
        """QU: map int accumulators into the output tensor's QUQ codes.

        ``scale`` is ``delta_x * delta_w``.  The hardware selects the
        output subrange by comparing the (shifted) accumulator against
        power-of-two boundaries via leading-zero/one counts; arithmetically
        that is exactly the subrange-assignment rule of Eq. (3), which the
        behavioral model applies directly.

        Non-finite or saturated inputs (a poisoned upstream SFU, a silent
        accumulator corruption blown up by the scale) are rejected through
        the numeric guardrail with :class:`NumericGuardError` rather than
        silently clipped into in-range codes.
        """
        out_params = legalize_for_hardware(out_params)
        values = acc.astype(np.float64) * scale
        verdict = self.guard.scan(values)
        if not verdict.ok:
            self.stats.guard_trips += 1
            raise NumericGuardError(f"QU input rejected: {verdict.reason}")
        return quantize_with_params(values, out_params)

    def gemm_requantized(
        self,
        x: EncodedTensor,
        w: EncodedTensor,
        out_params: QUQParams,
        site: str = "gemm",
    ) -> EncodedTensor:
        """Full PE-array -> QU pipeline: GEMM then re-encode as QUBs."""
        acc = self.integer_gemm(x, w, site=site)
        qt = self.requantize(acc, x.base_delta * w.base_delta, out_params)
        qubs, registers = encode(qt)
        return EncodedTensor(qubs, registers, qt.params.base_delta, qt.params.bits)

    # ------------------------------------------------------------------
    def sfu_load(self, t: EncodedTensor, site: str = "sfu") -> np.ndarray:
        """SFU load path with fault injection: fetch, decode, scale.

        Identical to :meth:`EncodedTensor.to_float` when faults are off.
        """
        if self.faults is None:
            return t.to_float()
        qubs, registers = self._fetch(t, site, site_class=SITE_SFU)
        d, n_sh = decode(qubs, registers, t.bits)
        return (d.astype(np.float64) * (1 << n_sh).astype(np.float64)) * t.base_delta

    def check_values(self, values: np.ndarray, site: str = "") -> np.ndarray:
        """Guardrail hook for executors: reject non-finite/saturated floats.

        A no-op passthrough when faults are off (keeps the fault-free
        executor path free of extra scans); with faults armed, trips the
        numeric guard on poisoned values instead of encoding garbage.
        """
        if self.faults is None:
            return values
        verdict = self.guard.scan(values)
        if not verdict.ok:
            self.stats.guard_trips += 1
            raise NumericGuardError(f"{site or 'values'} rejected: {verdict.reason}")
        return values

    def sfu(self, x: EncodedTensor, function: str, site: str = "sfu", **kwargs) -> np.ndarray:
        """SFU: decode on load, then apply the special function.

        Supported functions: ``softmax`` (last axis), ``gelu``,
        ``layernorm`` (last axis; pass ``weight``/``bias``), ``add``
        (pass ``other`` as a second EncodedTensor).
        """
        values = self.sfu_load(x, site=f"{site}/{function}")
        if function == "softmax":
            shifted = values - values.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            return exp / exp.sum(axis=-1, keepdims=True)
        if function == "gelu":
            from scipy.special import erf

            return values * 0.5 * (1.0 + erf(values / np.sqrt(2.0)))
        if function == "layernorm":
            weight = kwargs.get("weight", 1.0)
            bias = kwargs.get("bias", 0.0)
            eps = kwargs.get("eps", 1e-6)
            mean = values.mean(axis=-1, keepdims=True)
            var = values.var(axis=-1, keepdims=True)
            return (values - mean) / np.sqrt(var + eps) * weight + bias
        if function == "add":
            other: EncodedTensor = kwargs["other"]
            return values + self.sfu_load(other, site=f"{site}/{function}/other")
        raise ValueError(f"unknown SFU function {function!r}")


def gemm_cycles(m: int, k: int, n: int, array: int) -> int:
    """Weight-stationary cycle count for an ``(m,k) @ (k,n)`` GEMM.

    Each weight tile of ``array x array`` stays resident while ``m``
    activation rows stream through; tiles across K and N are serialized,
    with an ``array``-cycle pipeline fill per tile.
    """
    if min(m, k, n, array) < 1:
        raise ValueError("all GEMM dimensions must be positive")
    tiles = int(np.ceil(k / array)) * int(np.ceil(n / array))
    return tiles * (m + array)
