"""Behavioral model of the quadruplet uniform accelerator (QUA, Figure 6).

Bit-exact simulation of the integer datapath:

* **Decoding unit (DU)** — turns QUB bytes into ``(D, n_sh)`` per Eq. (6)-(7).
* **PE array** — multiply-accumulate over decoded operands with the
  product shift of Eq. (5); integer-only, verified to match the float GEMM
  over dequantized values exactly.
* **Quantization unit (QU)** — requantizes accumulator values into the
  output tensor's QUQ parameters (the hardware performs the subrange
  comparison with leading-zero/one detection; the behavioral model uses the
  equivalent arithmetic comparison).
* **Special function unit (SFU)** — decodes QUBs into plain integers
  ``d = D << n_sh`` on its load path, then applies LayerNorm / Softmax /
  GELU / addition at full precision (the paper streams these through the
  same SFUs as a uniform-quantization accelerator).

A simple weight-stationary cycle model rounds out the performance side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.params import QUQParams
from ..quant.qub import FCRegisters, decode, encode, legalize_for_hardware
from ..quant.quq import QuantizedTensor, quantize_with_params
from ..quant.relax import PRAConfig, progressive_relaxation

__all__ = ["EncodedTensor", "encode_tensor", "QUA", "gemm_cycles"]


@dataclass
class EncodedTensor:
    """A tensor in QUA wire format: QUB bytes + FC registers + base delta."""

    qubs: np.ndarray
    registers: FCRegisters
    base_delta: float
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        return self.qubs.shape

    def decoded(self) -> tuple[np.ndarray, np.ndarray]:
        """Run the DU over every element: returns (D, n_sh)."""
        return decode(self.qubs, self.registers, self.bits)

    def transposed(self) -> "EncodedTensor":
        """Swap the last two axes (a dataflow rearrangement, not arithmetic)."""
        return EncodedTensor(
            np.swapaxes(self.qubs, -1, -2), self.registers, self.base_delta, self.bits
        )

    def to_float(self) -> np.ndarray:
        """SFU load path: d = D << n_sh, scaled by the base delta."""
        d, n_sh = self.decoded()
        return (d.astype(np.float64) * (1 << n_sh).astype(np.float64)) * self.base_delta


def encode_tensor(
    x: np.ndarray,
    bits: int,
    params: QUQParams | None = None,
    config: PRAConfig | None = None,
) -> EncodedTensor:
    """Quantize ``x`` with (hardware-legal) QUQ parameters and encode it."""
    if params is None:
        params = progressive_relaxation(x, bits, config)
    params = legalize_for_hardware(params)
    qt = quantize_with_params(x, params)
    qubs, registers = encode(qt)
    return EncodedTensor(qubs, registers, params.base_delta, bits)


class QUA:
    """Quadruplet uniform accelerator: integer GEMM plus requantization."""

    def __init__(self, array: int = 16):
        if array < 1:
            raise ValueError("PE array size must be >= 1")
        self.array = array

    # ------------------------------------------------------------------
    def integer_gemm(self, x: EncodedTensor, w: EncodedTensor) -> np.ndarray:
        """PE-array MAC: ``sum_k (Dx*Dw) << (nx+nw)``, int64 accumulators.

        ``x`` is ``(..., M, K)``, ``w`` is ``(..., K, N)`` (batched GEMMs
        broadcast like ``numpy.matmul``).  The shifted operands fit well
        inside int64 (|D| < 2^(b-1), shifts <= 7 each), so the int64
        matmul reproduces the hardware accumulation exactly.
        """
        w_rows = w.shape[0] if len(w.shape) == 1 else w.shape[-2]
        if x.shape[-1] != w_rows:
            raise ValueError(f"GEMM shape mismatch: {x.shape} @ {w.shape}")
        dx, nx = x.decoded()
        dw, nw = w.decoded()
        shifted_x = dx << nx  # (Dx << nx); the split of the total shift
        shifted_w = dw << nw  # between operands is mathematically free
        return shifted_x @ shifted_w

    def gemm(self, x: EncodedTensor, w: EncodedTensor) -> np.ndarray:
        """Integer GEMM scaled back to real values (float64)."""
        acc = self.integer_gemm(x, w)
        return acc.astype(np.float64) * (x.base_delta * w.base_delta)

    # ------------------------------------------------------------------
    def requantize(
        self, acc: np.ndarray, scale: float, out_params: QUQParams
    ) -> QuantizedTensor:
        """QU: map int accumulators into the output tensor's QUQ codes.

        ``scale`` is ``delta_x * delta_w``.  The hardware selects the
        output subrange by comparing the (shifted) accumulator against
        power-of-two boundaries via leading-zero/one counts; arithmetically
        that is exactly the subrange-assignment rule of Eq. (3), which the
        behavioral model applies directly.
        """
        out_params = legalize_for_hardware(out_params)
        values = acc.astype(np.float64) * scale
        return quantize_with_params(values, out_params)

    def gemm_requantized(
        self, x: EncodedTensor, w: EncodedTensor, out_params: QUQParams
    ) -> EncodedTensor:
        """Full PE-array -> QU pipeline: GEMM then re-encode as QUBs."""
        acc = self.integer_gemm(x, w)
        qt = self.requantize(acc, x.base_delta * w.base_delta, out_params)
        qubs, registers = encode(qt)
        return EncodedTensor(qubs, registers, qt.params.base_delta, qt.params.bits)

    # ------------------------------------------------------------------
    def sfu(self, x: EncodedTensor, function: str, **kwargs) -> np.ndarray:
        """SFU: decode on load, then apply the special function.

        Supported functions: ``softmax`` (last axis), ``gelu``,
        ``layernorm`` (last axis; pass ``weight``/``bias``), ``add``
        (pass ``other`` as a second EncodedTensor).
        """
        values = x.to_float()
        if function == "softmax":
            shifted = values - values.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            return exp / exp.sum(axis=-1, keepdims=True)
        if function == "gelu":
            from scipy.special import erf

            return values * 0.5 * (1.0 + erf(values / np.sqrt(2.0)))
        if function == "layernorm":
            weight = kwargs.get("weight", 1.0)
            bias = kwargs.get("bias", 0.0)
            eps = kwargs.get("eps", 1e-6)
            mean = values.mean(axis=-1, keepdims=True)
            var = values.var(axis=-1, keepdims=True)
            return (values - mean) / np.sqrt(var + eps) * weight + bias
        if function == "add":
            other: EncodedTensor = kwargs["other"]
            return values + other.to_float()
        raise ValueError(f"unknown SFU function {function!r}")


def gemm_cycles(m: int, k: int, n: int, array: int) -> int:
    """Weight-stationary cycle count for an ``(m,k) @ (k,n)`` GEMM.

    Each weight tile of ``array x array`` stays resident while ``m``
    activation rows stream through; tiles across K and N are serialized,
    with an ``array``-cycle pipeline fill per tile.
    """
    if min(m, k, n, array) < 1:
        raise ValueError("all GEMM dimensions must be positive")
    tiles = int(np.ceil(k / array)) * int(np.ceil(n / array))
    return tiles * (m + array)
