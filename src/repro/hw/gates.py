"""Gate-level cost primitives for the analytical area/power model.

Component costs are expressed in NAND2-equivalent gate counts using the
standard structural estimates (array multiplier ~ b^2 full-adder cells,
ripple/carry-select adders ~ 7 gates/bit, DFF ~ 7 gates, barrel shifter ~
3 gates per bit per stage).  The 28 nm technology constants
(:data:`NAND2_AREA_UM2`, :data:`ENERGY_PER_GATE_PJ`) are calibrated so the
BaseQ design points land near Table 4 of the paper; all *relative* results
(QUQ vs BaseQ overheads) then follow from the component inventory alone.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NAND2_AREA_UM2",
    "ENERGY_PER_GATE_PJ",
    "multiplier_gates",
    "adder_gates",
    "register_gates",
    "shifter_gates",
    "mux_gates",
    "leading_zero_detector_gates",
]

#: NAND2-equivalent cell area at 28 nm, including placement overhead (um^2).
#: Calibrated so the BaseQ 6-bit 16x16 design point matches Table 4.
NAND2_AREA_UM2 = 0.63

#: Average switching energy per gate per clock at 28 nm, 0.9 V (pJ),
#: before the per-component activity factor is applied.  Calibrated against
#: the same Table 4 anchor.
ENERGY_PER_GATE_PJ = 0.00094


def multiplier_gates(bits_a: int, bits_b: int) -> float:
    """Signed array multiplier: ~one full-adder cell per partial-product bit."""
    if bits_a < 1 or bits_b < 1:
        raise ValueError("multiplier operand widths must be positive")
    return 6.0 * bits_a * bits_b


def adder_gates(width: int) -> float:
    """Carry-propagate adder, ~7 NAND2 per full-adder stage."""
    if width < 1:
        raise ValueError("adder width must be positive")
    return 7.0 * width


def register_gates(width: int) -> float:
    """DFF-based register, ~7 NAND2 per flip-flop."""
    if width < 1:
        raise ValueError("register width must be positive")
    return 7.0 * width


def shifter_gates(width: int, max_shift: int) -> float:
    """Logarithmic barrel shifter: one 2:1 mux per bit per stage."""
    if width < 1 or max_shift < 1:
        raise ValueError("shifter width and range must be positive")
    stages = int(np.ceil(np.log2(max_shift + 1)))
    return 3.0 * width * stages


def mux_gates(width: int, ways: int = 2) -> float:
    """N:1 multiplexer."""
    if ways < 2:
        raise ValueError("mux needs at least 2 ways")
    return 3.0 * width * (ways - 1)


def leading_zero_detector_gates(width: int) -> float:
    """Leading-zero/one detector used by the quantization unit."""
    if width < 2:
        raise ValueError("LZD width must be >= 2")
    return 2.5 * width
