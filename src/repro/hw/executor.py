"""Run a quantized transformer block end to end on the QUA datapath.

The PTQ pipeline simulates quantization in float ("fake quantization");
this executor closes the loop by running the *actual* hardware pipeline:
activations and weights travel as QUB bytes, every GEMM goes through the
integer PE array, the activations are requantized at each tap with the
calibrated QUQ parameters, and the special functions run on decoded
integers (optionally via the fully integer-only kernels of
:mod:`repro.hw.int_sfu`).

Its output is validated against the fake-quantized model in the test
suite — the demonstration that the QUB encoding and the Eq. (5) integer
arithmetic implement the algorithm the accuracy tables measure.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from ..autograd import Tensor, no_grad
from ..kernels import get_kernel
from ..nn.attention import TransformerBlock
from ..quant.params import QUQParams
from ..quant.qmodel import PTQPipeline
from ..quant.quq import QUQQuantizer
from .accelerator import QUA, EncodedTensor, encode_tensor
from .faults import BitFaultInjector
from .protect import ProtectionConfig, ProtectionStats

__all__ = ["BlockExecutor", "ModelExecutor"]


class BlockExecutor:
    """Execute one :class:`TransformerBlock` through the QUA pipeline.

    Parameters
    ----------
    block:
        The float block whose weights are used.
    pipeline:
        A calibrated ``method="quq"`` :class:`PTQPipeline` over the parent
        model; the executor reuses its fitted per-tap QUQ parameters.
    prefix:
        The block's tap prefix (e.g. ``"vit_mini_s.blocks.0"``).
    integer_sfu:
        Use the integer-only softmax/GELU/LayerNorm kernels instead of
        float special functions over decoded integers.
    faults / protection / stats:
        Optional soft-error injection (see :class:`BitFaultInjector`) and
        hardening config; ``stats`` is the shared fault-outcome ledger.
        With ``faults=None`` the executor is bit-exact with the fault-free
        model.
    """

    def __init__(
        self,
        block: TransformerBlock,
        pipeline: PTQPipeline,
        prefix: str,
        bits: int = 8,
        integer_sfu: bool = False,
        faults: BitFaultInjector | None = None,
        protection: ProtectionConfig | None = None,
        stats: ProtectionStats | None = None,
    ):
        if not pipeline.calibrated:
            raise RuntimeError("pipeline must be calibrated first")
        if pipeline.method != "quq":
            raise ValueError("BlockExecutor requires a QUQ-calibrated pipeline")
        self.block = block
        self.pipeline = pipeline
        self.prefix = prefix.rstrip(".")
        self.bits = bits
        self.integer_sfu = integer_sfu
        self.qua = QUA(faults=faults, protection=protection, stats=stats)

    # ------------------------------------------------------------------
    def _params(self, tap: str) -> QUQParams:
        quantizer = self.pipeline.quantizer_for(f"{self.prefix}.{tap}")
        if not isinstance(quantizer, QUQQuantizer):
            raise TypeError(f"tap {tap} is not QUQ-quantized")
        return quantizer.params

    def _site(self, tap: str) -> str:
        return f"{self.prefix}.{tap}"

    def _encode(self, values: np.ndarray, tap: str) -> EncodedTensor:
        # Poisoned floats (a corrupted SFU load upstream) must trip the
        # guard here, not be laundered into in-range QUB codes.
        values = self.qua.check_values(values, site=self._site(tap))
        return encode_tensor(values, self.bits, params=self._params(tap))

    def _load(self, encoded: EncodedTensor, tap: str) -> np.ndarray:
        """Store-then-reload a tensor through the (faultable) SFU path."""
        return self.qua.sfu_load(encoded, site=self._site(tap))

    # ------------------------------------------------------------------
    # The integer SFU paths dispatch through the kernel registry: the
    # vectorized kernels by default, the scalar-reference ones under
    # ``REPRO_KERNELS=reference`` (both are exact-integer-equal).
    def _layernorm(self, values: np.ndarray, weight, bias) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-14
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.layernorm")(
                q, scale, weight=weight, bias=bias, out_bits=12
            )
            return q_out * s_out
        mean = values.mean(axis=-1, keepdims=True)
        var = values.var(axis=-1, keepdims=True)
        return (values - mean) / np.sqrt(var + 1e-6) * weight + bias

    def _softmax(self, values: np.ndarray) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-10
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.softmax")(q, scale, out_bits=16)
            return q_out * s_out
        shifted = values - values.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def _gelu(self, values: np.ndarray) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-10
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.gelu")(q, scale)
            return q_out * s_out
        return values * 0.5 * (1.0 + erf(values / np.sqrt(2.0)))

    # ------------------------------------------------------------------
    def _linear(self, values: np.ndarray, tap_in: str, layer) -> np.ndarray:
        """Quantize the input, run the integer GEMM, add the float bias."""
        shape = values.shape
        flat = values.reshape(-1, shape[-1])
        ex = self._encode(flat, tap_in)
        ew = encode_tensor(
            layer.weight.data, self.bits, params=self._params_weight(tap_in)
        )
        out = self.qua.gemm(ex, ew, site=self._site(tap_in))
        if layer.bias is not None:
            out = out + layer.bias.data
        return out.reshape(*shape[:-1], -1)

    def _params_weight(self, tap_in: str) -> QUQParams:
        weight_tap = tap_in.rsplit(".", 1)[0] + ".weight"
        return self._params(weight_tap)

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the block; input/output are float arrays of token features."""
        block = self.block
        attn = block.attn
        b, n, c = x.shape
        heads, head_dim = attn.num_heads, attn.head_dim

        # Residual stream enters the block quantized (stored as QUBs).
        x = self._load(self._encode(x, "block_input"), "block_input")

        # --- attention branch ---
        normed = self._layernorm(x, block.norm1.weight.data, block.norm1.bias.data)
        qkv = self._linear(normed, "attn.qkv.input", attn.qkv)
        qkv = qkv.reshape(b, n, 3, heads, head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]

        eq = self._encode(q, "attn.q")
        ek = self._encode(k, "attn.k")
        scores_acc = self.qua.integer_gemm(
            eq, ek.transposed(), site=self._site("attn.scores")
        )
        scores = scores_acc * (eq.base_delta * ek.base_delta) * attn.scale
        scores = self._load(self._encode(scores, "attn.scores"), "attn.scores")

        probs = self._softmax(scores)
        ep = self._encode(probs, "attn.probs")
        ev = self._encode(v, "attn.v")
        ctx_acc = self.qua.integer_gemm(ep, ev, site=self._site("attn.context"))
        ctx = ctx_acc * (ep.base_delta * ev.base_delta)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, n, c)

        attn_out = self._linear(ctx, "attn.proj.input", attn.proj)
        attn_out = self._load(self._encode(attn_out, "attn_residual"), "attn_residual")
        x = x + attn_out

        # --- MLP branch ---
        x = self._load(self._encode(x, "mid_input"), "mid_input")
        normed = self._layernorm(x, block.norm2.weight.data, block.norm2.bias.data)
        hidden = self._linear(normed, "mlp.fc1.input", block.mlp.fc1)
        hidden = self._load(self._encode(hidden, "mlp.act.input"), "mlp.act.input")
        hidden = self._gelu(hidden)
        mlp_out = self._linear(hidden, "mlp.fc2.input", block.mlp.fc2)
        mlp_out = self._load(self._encode(mlp_out, "mlp_residual"), "mlp_residual")
        return x + mlp_out


class ModelExecutor:
    """Run an entire ViT/DeiT through the QUA pipeline.

    Composes one :class:`BlockExecutor` per transformer block with the
    integer patch-embedding and classifier GEMMs; only the token-bookkeeping
    glue (class-token concat, positional add, final LayerNorm) runs in the
    SFU domain.  This is the "full integer inference" demonstration: its
    Top-1 accuracy matches the fake-quantized model's within noise.
    """

    def __init__(
        self,
        model,
        pipeline: PTQPipeline,
        bits: int = 8,
        integer_sfu: bool = False,
        faults: BitFaultInjector | None = None,
        protection: ProtectionConfig | None = None,
        stats: ProtectionStats | None = None,
    ):
        if not pipeline.calibrated:
            raise RuntimeError("pipeline must be calibrated first")
        if pipeline.method != "quq":
            raise ValueError("ModelExecutor requires a QUQ-calibrated pipeline")
        self.model = model
        self.pipeline = pipeline
        self.bits = bits
        self.faults = faults
        # One shared ledger across the top-level QUA and every block's.
        self.stats = stats if stats is not None else ProtectionStats()
        self.qua = QUA(faults=faults, protection=protection, stats=self.stats)
        prefix = model.config.name
        self.blocks = [
            BlockExecutor(
                block,
                pipeline,
                f"{prefix}.blocks.{i}",
                bits,
                integer_sfu,
                faults=faults,
                protection=protection,
                stats=self.stats,
            )
            for i, block in enumerate(model.blocks)
        ]
        self._prefix = prefix

    def _params(self, tap: str) -> QUQParams:
        quantizer = self.pipeline.quantizer_for(f"{self._prefix}.{tap}")
        return quantizer.params

    def _linear(self, values: np.ndarray, tap_in: str, layer) -> np.ndarray:
        shape = values.shape
        flat = values.reshape(-1, shape[-1])
        site = f"{self._prefix}.{tap_in}"
        flat = self.qua.check_values(flat, site=site)
        ex = encode_tensor(flat, self.bits, params=self._params(tap_in))
        weight_tap = tap_in.rsplit(".", 1)[0] + ".weight"
        ew = encode_tensor(layer.weight.data, self.bits, params=self._params(weight_tap))
        out = self.qua.gemm(ex, ew, site=site)
        if layer.bias is not None:
            out = out + layer.bias.data
        return out.reshape(*shape[:-1], -1)

    def run(self, images: np.ndarray) -> np.ndarray:
        """Classify ``images``; returns logits (class/dist heads averaged)."""
        model = self.model
        batch = images.shape[0]
        # Patch extraction is a pure reshape; the projection is an integer GEMM.
        from ..autograd.ops import unfold_patches

        with no_grad():
            windows = unfold_patches(Tensor(images), model.patch_embed.patch_size).data
        tokens = self._linear(
            windows.astype(np.float64), "patch_embed.proj.input", model.patch_embed.proj
        )

        # Token bookkeeping in the SFU domain.
        specials = [np.broadcast_to(model.cls_token.data, (batch, 1, tokens.shape[-1]))]
        if model.dist_token is not None:
            specials.append(
                np.broadcast_to(model.dist_token.data, (batch, 1, tokens.shape[-1]))
            )
        tokens = np.concatenate(specials + [tokens], axis=1)
        tokens = tokens + model.pos_embed.data

        for executor in self.blocks:
            tokens = executor.run(tokens)

        # Final norm input is a stored (quantized) tensor.
        tokens = self.qua.check_values(
            tokens, site=f"{self._prefix}.final_norm_input"
        )
        tokens = self.qua.sfu_load(
            encode_tensor(tokens, self.bits, params=self._params("final_norm_input")),
            site=f"{self._prefix}.final_norm_input",
        )
        mean = tokens.mean(axis=-1, keepdims=True)
        var = tokens.var(axis=-1, keepdims=True)
        normed = (tokens - mean) / np.sqrt(var + 1e-6)
        normed = normed * model.norm.weight.data + model.norm.bias.data

        logits = self._linear(normed[:, 0], "head.input", model.head)
        if model.head_dist is not None:
            dist = self._linear(normed[:, 1], "head_dist.input", model.head_dist)
            logits = 0.5 * (logits + dist)
        return logits
