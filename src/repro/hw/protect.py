"""Soft-error protection for the QUA datapath, evaluated against the injector.

Three schemes, one per storage site class of
:mod:`repro.hw.faults`, each with the classical hardware analogue:

* **Per-word parity on QUB codes** — one parity bit per stored code word,
  checked at the decoding-unit fetch.  A mismatch triggers a refetch from
  the (ECC-protected) backing store, modeled as restoring the clean word.
  Parity detects every odd-weight corruption; even-weight corruptions
  (two flips in one word) pass the check and stay *silent*.
* **Triple-modular redundancy on FC registers** — the two packed register
  bytes are stored three times and majority-voted bit-wise on every
  fetch.  A fault confined to one copy is always out-voted; only the same
  bit flipping in two copies survives the vote (counted as silent).
* **Accumulator range guard** — the PE array carries a shadow magnitude
  accumulation ``|Dx << nx| @ |Dw << nw|``, an exact envelope on every
  fault-free accumulator value.  A faulty accumulator exceeding its
  envelope is flagged and the tile recomputed (restored); flips that keep
  the value inside the envelope are silent but small.

The behavioral model always has the fault-free ("golden") value next to
the faulty one, so every outcome is classified exactly into
detected/corrected vs silent — that accounting is what the fault-sweep
report audits.  All functions are pure over (golden, faulty) pairs; the
:class:`ProtectionStats` ledger is updated by the caller-facing helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ProtectionConfig",
    "ProtectionStats",
    "popcount",
    "parity_filter",
    "majority_vote",
]


@dataclass(frozen=True)
class ProtectionConfig:
    """Which protection schemes are armed."""

    parity: bool = True
    tmr: bool = True
    range_guard: bool = True

    def snapshot(self) -> dict:
        return {"parity": self.parity, "tmr": self.tmr, "range_guard": self.range_guard}


@dataclass
class ProtectionStats:
    """Fault-outcome ledger, shared across every QUA of one executor.

    ``detected`` outcomes were caught and repaired (parity refetch, TMR
    out-vote, register machine-check reload, envelope recompute);
    ``silent`` outcomes reached the datapath corrupted.
    """

    qub_faulted_words: int = 0
    qub_detected: int = 0
    qub_silent: int = 0
    sfu_faulted_words: int = 0
    sfu_detected: int = 0
    sfu_silent: int = 0
    register_faulted_copies: int = 0
    register_corrected: int = 0  # TMR out-voted a faulty copy
    register_detected: int = 0  # strict unpack rejected the loaded bytes
    register_silent: int = 0  # corrupted registers reached the decoder
    acc_faulted_words: int = 0
    acc_detected: int = 0  # envelope violations, tile recomputed
    acc_silent: int = 0
    guard_trips: int = 0  # numeric-guard rejections in the QU

    def silent_total(self) -> int:
        return self.qub_silent + self.sfu_silent + self.register_silent + self.acc_silent

    def snapshot(self) -> dict:
        return {
            "qub": {
                "faulted_words": self.qub_faulted_words,
                "detected": self.qub_detected,
                "silent": self.qub_silent,
            },
            "sfu": {
                "faulted_words": self.sfu_faulted_words,
                "detected": self.sfu_detected,
                "silent": self.sfu_silent,
            },
            "register": {
                "faulted_copies": self.register_faulted_copies,
                "corrected": self.register_corrected,
                "detected": self.register_detected,
                "silent": self.register_silent,
            },
            "accumulator": {
                "faulted_words": self.acc_faulted_words,
                "detected": self.acc_detected,
                "silent": self.acc_silent,
            },
            "guard_trips": self.guard_trips,
            "silent_total": self.silent_total(),
        }


def popcount(words: np.ndarray, bits: int) -> np.ndarray:
    """Per-word set-bit count for word widths up to 64."""
    counts = np.zeros(words.shape, dtype=np.int64)
    w = words.astype(np.int64)
    for shift in range(bits):
        counts += (w >> shift) & 1
    return counts


def parity_filter(
    golden: np.ndarray, faulty: np.ndarray, bits: int, parity: bool
) -> tuple[np.ndarray, int, int, int]:
    """Apply the parity detect-and-refetch model to one fetched array.

    Returns ``(words_to_decode, faulted, detected, silent)``.  With
    ``parity`` off the faulty words pass straight through (all faults
    silent); with it on, odd-weight corruptions refetch the golden word.
    """
    if faulty is golden:
        return golden, 0, 0, 0
    diff = np.bitwise_xor(golden, faulty)
    changed = diff != 0
    faulted = int(changed.sum())
    if faulted == 0:
        return golden, 0, 0, 0
    if not parity:
        return faulty, faulted, 0, faulted
    odd = (popcount(diff, bits) & 1) == 1
    detected = int(odd.sum())
    out = np.where(odd, golden, faulty).astype(golden.dtype)
    return out, faulted, detected, faulted - detected


def majority_vote(copies: list[np.ndarray]) -> np.ndarray:
    """Bit-wise majority of three redundant copies (TMR voter)."""
    a, b, c = (copy.astype(np.int64) for copy in copies)
    voted = (a & b) | (a & c) | (b & c)
    return voted.astype(copies[0].dtype)
