"""Analytical area/power model of the QUA vs a uniform-quantization
accelerator (Table 4).

The paper synthesizes both designs with Synopsys Design Compiler on 28 nm
CMOS and reports area plus PrimeTime power at 500 MHz.  Without an EDA
flow, we build the same comparison from a structural component inventory
(Figure 6): per-PE multiplier/accumulator, the decoding units on the array
edges, the quantization units per output column, and QUQ's additions —
the n_sh adder, the product alignment shifter, the widened accumulator and
the n_sh pipeline registers.

Calibration: the NAND2 area constant and per-gate switching energy are
fitted so the *BaseQ* design points land near the paper's Table 4; the QUQ
deltas then *emerge* from the inventory rather than being dialed in.  The
paper's qualitative claims this model must reproduce:

* QUQ area overhead < 5 % and power overhead < 10 % at equal bit-width;
* the relative overhead shrinks as the PE array grows (edge units are
  amortized over n^2 PEs);
* 6-bit QUQ is significantly smaller and less power-hungry than 8-bit
  BaseQ (12.6-16.8 % area, 3.7-5.6 % power in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from .gates import (
    ENERGY_PER_GATE_PJ,
    NAND2_AREA_UM2,
    adder_gates,
    leading_zero_detector_gates,
    multiplier_gates,
    mux_gates,
    register_gates,
    shifter_gates,
)

__all__ = [
    "AcceleratorSpec",
    "AreaPowerReport",
    "evaluate",
    "protection_overhead",
    "table4",
]

#: Both designs share a fixed accumulator width (standard practice: the
#: tile size bounds accumulation length, and the headroom absorbs QUQ's
#: shifted products — the paper's PE keeps the original data flow).
_ACC_WIDTH = 32

#: Maximum total shift (n_sh_x + n_sh_w) the QUA datapath supports; longer
#: tails are legalized at fit time (``repro.quant.qub.legalize_for_hardware``).
_MAX_TOTAL_SHIFT = 7

#: Per-component switching activity factors (fraction of gates toggling per
#: cycle).  Registers toggle with the clock (the paper highlights the n_sh
#: pipeline registers' clock-load as QUQ's main power cost); arithmetic
#: toggles with data; weight-stationary registers barely toggle.
_ACTIVITY = {
    "multiplier": 0.30,
    "adder": 0.25,
    "register": 0.90,
    "static_register": 0.10,
    "shifter": 0.25,
    "decode": 0.20,
    "quantize": 0.20,
    "control": 0.30,
}

_CLOCK_HZ = 500e6


@dataclass(frozen=True)
class AcceleratorSpec:
    """One design point of Table 4."""

    method: str  # "baseq" or "quq"
    bits: int
    array: int  # PE array is array x array

    def __post_init__(self):
        if self.method not in ("baseq", "quq"):
            raise ValueError(f"method must be 'baseq' or 'quq', got {self.method!r}")
        if self.bits < 2:
            raise ValueError("bits must be >= 2")
        if self.array < 1:
            raise ValueError("array must be >= 1")


@dataclass(frozen=True)
class AreaPowerReport:
    spec: AcceleratorSpec
    area_mm2: float
    power_mw: float
    gate_breakdown: dict


def _pe_inventory(method: str, bits: int) -> dict[str, float]:
    """NAND2-equivalent gates of one processing element, by category.

    The QUQ PE keeps the baseline multiplier and (shared-width)
    accumulator; per the paper's own overhead attribution, the product
    alignment is fused into the multiplier's compression tree at
    negligible marginal cost, so the additions reduce to the n_sh
    pipeline register (traveling with the activation), the stationary
    weight n_sh register, and the small shift adder.
    """
    inventory = {
        "multiplier": multiplier_gates(bits, bits),
        "adder": adder_gates(_ACC_WIDTH),
        "register": register_gates(_ACC_WIDTH) + register_gates(2 * bits),
        "static_register": 0.0,
        "shifter": 0.0,
        "decode": 0.0,
        "quantize": 0.0,
        "control": 30.0,
    }
    if method == "quq":
        inventory["register"] += register_gates(3)  # activation n_sh pipeline
        inventory["static_register"] = register_gates(3)  # stationary weight n_sh
        inventory["adder"] += adder_gates(4)  # n_sh_x + n_sh_w
    return inventory


def _edge_inventory(method: str, bits: int, array: int) -> dict[str, float]:
    """Per-array edge units: DUs on both operand edges, QUs per column."""
    inventory = {
        "multiplier": 0.0,
        "adder": 0.0,
        "register": 0.0,
        "static_register": 0.0,
        "shifter": 0.0,
        "decode": 0.0,
        # BaseQ QU: requantization multiply (M), shift (N) and clip/round.
        "quantize": array
        * (
            multiplier_gates(_ACC_WIDTH, 8)
            + shifter_gates(_ACC_WIDTH, 31)
            + adder_gates(_ACC_WIDTH)
        ),
        "control": 0.0,
    }
    if method == "quq":
        # One DU per row and per column edge (activations and weights).
        du = mux_gates(bits, 4) + adder_gates(bits) + 30.0
        inventory["decode"] = 2 * array * du
        # QU additions: leading-zero/one detection for subrange selection,
        # the s_y shift folded into the existing requantization shifter
        # (it simply adds to the shift count N), and the output-code mux.
        inventory["quantize"] += array * (
            leading_zero_detector_gates(_ACC_WIDTH)
            + adder_gates(5)
            + mux_gates(8, 4)
        )
    return inventory


def evaluate(spec: AcceleratorSpec) -> AreaPowerReport:
    """Area (mm^2) and power (mW @ 500 MHz) for one design point."""
    pe = _pe_inventory(spec.method, spec.bits)
    edge = _edge_inventory(spec.method, spec.bits, spec.array)
    total = {
        key: pe[key] * spec.array**2 + edge[key] for key in pe
    }
    gates = sum(total.values())
    area_mm2 = gates * NAND2_AREA_UM2 / 1e6
    power_mw = sum(
        count * _ACTIVITY[key] * ENERGY_PER_GATE_PJ * _CLOCK_HZ / 1e9
        for key, count in total.items()
    )
    return AreaPowerReport(spec, area_mm2, power_mw, total)


def protection_overhead(
    protection, bits: int = 8, array: int = 16
) -> dict:
    """Area/power cost of the soft-error hardening schemes (modeled).

    ``protection`` is a :class:`repro.hw.protect.ProtectionConfig` (any
    object with ``parity`` / ``tmr`` / ``range_guard`` booleans works).
    The inventory prices the incremental hardware over the plain QUQ
    design point, per scheme:

    * **parity** — one stored parity bit plus a ``bits``-wide XOR check
      tree per DU word lane (both operand edges and the SFU load port);
    * **tmr** — two extra copies of the 16-bit FC register file per
      operand edge plus the bit-wise majority voter;
    * **range_guard** — a shadow magnitude adder + accumulator register
      per PE and a magnitude comparator per QU column.

    Returns the per-scheme NAND2-equivalent gate counts, the absolute
    area/power cost, and the relative overhead against the unprotected
    QUQ accelerator of the same geometry.
    """
    _XOR_NAND2 = 3.0  # one XOR2 in NAND2 equivalents
    _MAJ_NAND2 = 4.0  # one bit of 2-of-3 majority voting

    schemes: dict[str, dict[str, float]] = {}
    if getattr(protection, "parity", False):
        lanes = 3 * array  # two DU edges + the SFU load port
        check_tree = bits * _XOR_NAND2  # parity over word + stored bit
        schemes["parity"] = {
            "register": lanes * register_gates(1),
            "decode": lanes * check_tree,
        }
    if getattr(protection, "tmr", False):
        ports = 2  # activation-edge and weight-edge register fetch
        schemes["tmr"] = {
            "static_register": ports * 2 * register_gates(16),
            "control": ports * 16 * _MAJ_NAND2,
        }
    if getattr(protection, "range_guard", False):
        schemes["range_guard"] = {
            "adder": array**2 * adder_gates(_ACC_WIDTH),
            "register": array**2 * register_gates(_ACC_WIDTH),
            "quantize": array * adder_gates(_ACC_WIDTH),  # envelope compare
        }

    def _cost(inventory: dict[str, float]) -> tuple[float, float]:
        gates = sum(inventory.values())
        area = gates * NAND2_AREA_UM2 / 1e6
        power = sum(
            count * _ACTIVITY[key] * ENERGY_PER_GATE_PJ * _CLOCK_HZ / 1e9
            for key, count in inventory.items()
        )
        return area, power

    base = evaluate(AcceleratorSpec("quq", bits, array))
    per_scheme = {}
    area_total = 0.0
    power_total = 0.0
    for name, inventory in schemes.items():
        area, power = _cost(inventory)
        per_scheme[name] = {
            "gates": sum(inventory.values()),
            "area_mm2": area,
            "power_mw": power,
        }
        area_total += area
        power_total += power
    return {
        "bits": bits,
        "array": array,
        "schemes": per_scheme,
        "area_mm2": area_total,
        "power_mw": power_total,
        "base_area_mm2": base.area_mm2,
        "base_power_mw": base.power_mw,
        "area_overhead_pct": 100.0 * area_total / base.area_mm2,
        "power_overhead_pct": 100.0 * power_total / base.power_mw,
    }


def table4(
    bit_widths: tuple[int, ...] = (6, 8), arrays: tuple[int, ...] = (16, 64)
) -> list[dict]:
    """Rows matching the layout of Table 4."""
    rows = []
    for bits in bit_widths:
        for method in ("baseq", "quq"):
            row = {"method": method, "bits": bits}
            for array in arrays:
                report = evaluate(AcceleratorSpec(method, bits, array))
                row[f"area_mm2_{array}"] = report.area_mm2
                row[f"power_mw_{array}"] = report.power_mw
            rows.append(row)
    return rows
