"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``            train/load the mini model zoo and print FP32 accuracy
``quantize``       quantize one model, print Top-1 (method/bits/coverage)
``export``         quantize with QUQ and write a deployable .npz artifact
``table4``         print the accelerator area/power table
``memory``         print the Figure-2 peak-memory table
``inspect``        fit QUQ on a model's calibration tensors, print modes
"""

from __future__ import annotations

import argparse

import numpy as np

from .analysis import format_table
from .data import calibration_set, make_splits
from .models import MINI_CONFIGS, PAPER_CONFIGS, get_trained_model
from .models.zoo import DATASET_SPEC
from .training import evaluate_top1

_TRAINABLE = sorted(MINI_CONFIGS) + ["cnn_mini"]


def _setup(model_name: str, val_count: int):
    model, fp32 = get_trained_model(model_name, verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    return model, fp32, calib, val_set.subset(val_count, seed=11)


def cmd_zoo(args) -> None:
    rows = []
    for name in _TRAINABLE:
        _, fp32 = get_trained_model(name, verbose=True)
        rows.append([name, round(fp32, 2)])
    print(format_table(["model", "fp32 top-1"], rows, title="Model zoo"))


def cmd_quantize(args) -> None:
    from . import quantize_model

    model, fp32, calib, val = _setup(args.model, args.val)
    pipeline = quantize_model(
        model, calib, method=args.method, bits=args.bits,
        coverage=args.coverage, hessian=not args.no_hessian,
    )
    accuracy = evaluate_top1(model, val)
    pipeline.detach()
    print(f"{args.model} fp32 {fp32:.2f}% -> {args.method} "
          f"{args.bits}-bit {args.coverage}: {accuracy:.2f}%")


def cmd_export(args) -> None:
    from . import quantize_model
    from .quant import deployment_report, export_quantized

    model, _, calib, _ = _setup(args.model, 64)
    pipeline = quantize_model(model, calib, method="quq", bits=args.bits,
                              coverage="full")
    artifact = export_quantized(pipeline, args.output)
    report = deployment_report(pipeline)
    pipeline.detach()
    print(f"wrote {args.output}: {len(artifact.weights)} weight tensors, "
          f"{len(artifact.activations)} activation parameter sets")
    print(f"fp32 {report['fp32_megabytes']:.2f} MiB -> "
          f"{report['quantized_megabytes']:.2f} MiB "
          f"({report['compression']:.1f}x)")


def cmd_table4(args) -> None:
    from .hw import table4

    rows = [
        [r["method"], r["bits"], round(r["area_mm2_16"], 3),
         round(r["power_mw_16"], 1), round(r["area_mm2_64"], 3),
         round(r["power_mw_64"], 1)]
        for r in table4()
    ]
    print(format_table(
        ["method", "bits", "16x16 mm^2", "16x16 mW", "64x64 mm^2", "64x64 mW"],
        rows, title="Accelerator area/power (analytical model)",
    ))


def cmd_memory(args) -> None:
    from .hw import memory_table

    configs = [PAPER_CONFIGS[n] for n in ("vit_s", "vit_b", "vit_l")]
    rows = [
        [r["model"], r["batch"], round(r["pq_kib"]), round(r["fq_kib"]),
         f"+{100 * (r['pq_over_fq'] - 1):.0f}%"]
        for r in memory_table(configs, batches=(1, 4, 8), bits=args.bits)
    ]
    print(format_table(
        ["model", "batch", "PQ KiB", "FQ KiB", "overhead"],
        rows, title=f"Peak on-chip memory at {args.bits}-bit",
    ))


def cmd_inspect(args) -> None:
    from .analysis import capture_figure3_tensors
    from .quant import QUQQuantizer

    model, _, calib, _ = _setup(args.model, 64)
    tensors = capture_figure3_tensors(model, calib, block=args.block)
    rows = []
    for name, data in tensors.items():
        quantizer = QUQQuantizer(args.bits).fit(data)
        rows.append([name, quantizer.mode.value, quantizer.params.describe()])
    print(format_table(["tensor", "mode", "parameters"], rows,
                       title=f"QUQ parameters, block {args.block}"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("zoo", help="train/load all mini models").set_defaults(fn=cmd_zoo)

    quantize = commands.add_parser("quantize", help="quantize one model")
    quantize.add_argument("model", choices=_TRAINABLE)
    quantize.add_argument("--method", default="quq",
                          choices=["baseq", "quq", "biscaled", "fqvit", "ptq4vit"])
    quantize.add_argument("--bits", type=int, default=6)
    quantize.add_argument("--coverage", default="full", choices=["partial", "full"])
    quantize.add_argument("--no-hessian", action="store_true")
    quantize.add_argument("--val", type=int, default=512)
    quantize.set_defaults(fn=cmd_quantize)

    export = commands.add_parser("export", help="export a QUQ artifact")
    export.add_argument("model", choices=_TRAINABLE)
    export.add_argument("output")
    export.add_argument("--bits", type=int, default=6)
    export.set_defaults(fn=cmd_export)

    commands.add_parser("table4", help="accelerator area/power").set_defaults(fn=cmd_table4)

    memory = commands.add_parser("memory", help="peak-memory table")
    memory.add_argument("--bits", type=int, default=8)
    memory.set_defaults(fn=cmd_memory)

    inspect = commands.add_parser("inspect", help="QUQ parameter summary")
    inspect.add_argument("model", choices=_TRAINABLE)
    inspect.add_argument("--bits", type=int, default=4)
    inspect.add_argument("--block", type=int, default=0)
    inspect.set_defaults(fn=cmd_inspect)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    main()
