"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``            train/load the mini model zoo and print FP32 accuracy
``quantize``       quantize one model, print Top-1 (method/bits/coverage)
``export``         quantize with QUQ and write a deployable .npz artifact
``table4``         print the accelerator area/power table
``memory``         print the Figure-2 peak-memory table
``inspect``        fit QUQ on a model's calibration tensors, print modes
``serve-bench``    drive synthetic traffic through the serving runtime
``chaos-soak``     serve under a seeded fault plan, audit the recovery
``fault-sweep``    bit-fault injection sweep over the QUA datapath
``corruption-sweep``  SynthShapes-C robustness grid + drift recovery curve
``perf-bench``     hot-path latency: calibrate/first-batch/steady per method
``scale-bench``    flash-crowd trace vs sharded cluster + admission control
``kernel-parity``  reference-vs-fast parity over the kernel registry

Model-dependent commands share ``--seed`` (calibration/val sampling) and
``--batch-size`` (inference batch size) so runs are reproducible from the
command line.
"""

from __future__ import annotations

import argparse

import numpy as np

from .analysis import format_table
from .data import calibration_set, make_splits
from .models import MINI_CONFIGS, PAPER_CONFIGS, get_trained_model
from .models.zoo import DATASET_SPEC
from .training import evaluate_top1

_TRAINABLE = sorted(MINI_CONFIGS) + ["cnn_mini"]


def _setup(model_name: str, val_count: int, seed: int | None = None):
    """Shared command preamble: trained model, calibration set, val subset.

    ``seed`` pins the calibration-image draw and the validation subsample;
    ``None`` keeps the historical defaults (calibration seed 7, val 11).
    """
    model, fp32 = get_trained_model(model_name, verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32, seed=7 if seed is None else seed)
    return model, fp32, calib, val_set.subset(val_count, seed=11 if seed is None else seed)


def _add_repro_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared reproducibility flags to a model-dependent command."""
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for calibration/val sampling (default: built-in)")
    parser.add_argument("--batch-size", type=int, default=32, dest="batch_size",
                        help="inference batch size for calibration/evaluation")


def cmd_zoo(args) -> None:
    rows = []
    for name in _TRAINABLE:
        _, fp32 = get_trained_model(name, verbose=True)
        rows.append([name, round(fp32, 2)])
    print(format_table(["model", "fp32 top-1"], rows, title="Model zoo"))


def cmd_quantize(args) -> None:
    from . import quantize_model

    model, fp32, calib, val = _setup(args.model, args.val, seed=args.seed)
    pipeline = quantize_model(
        model, calib, method=args.method, bits=args.bits,
        coverage=args.coverage, hessian=not args.no_hessian,
        batch_size=args.batch_size,
    )
    accuracy = evaluate_top1(model, val, batch_size=args.batch_size)
    pipeline.detach()
    print(f"{args.model} fp32 {fp32:.2f}% -> {args.method} "
          f"{args.bits}-bit {args.coverage}: {accuracy:.2f}%")


def cmd_export(args) -> None:
    from . import quantize_model
    from .quant import deployment_report, export_quantized

    model, _, calib, _ = _setup(args.model, 64, seed=args.seed)
    pipeline = quantize_model(model, calib, method="quq", bits=args.bits,
                              coverage="full", batch_size=args.batch_size)
    artifact = export_quantized(pipeline, args.output)
    report = deployment_report(pipeline)
    pipeline.detach()
    print(f"wrote {args.output}: {len(artifact.weights)} weight tensors, "
          f"{len(artifact.activations)} activation parameter sets")
    print(f"fp32 {report['fp32_megabytes']:.2f} MiB -> "
          f"{report['quantized_megabytes']:.2f} MiB "
          f"({report['compression']:.1f}x)")


def cmd_table4(args) -> None:
    from .hw import table4

    rows = [
        [r["method"], r["bits"], round(r["area_mm2_16"], 3),
         round(r["power_mw_16"], 1), round(r["area_mm2_64"], 3),
         round(r["power_mw_64"], 1)]
        for r in table4()
    ]
    print(format_table(
        ["method", "bits", "16x16 mm^2", "16x16 mW", "64x64 mm^2", "64x64 mW"],
        rows, title="Accelerator area/power (analytical model)",
    ))


def cmd_memory(args) -> None:
    from .hw import memory_table

    configs = [PAPER_CONFIGS[n] for n in ("vit_s", "vit_b", "vit_l")]
    rows = [
        [r["model"], r["batch"], round(r["pq_kib"]), round(r["fq_kib"]),
         f"+{100 * (r['pq_over_fq'] - 1):.0f}%"]
        for r in memory_table(configs, batches=(1, 4, 8), bits=args.bits)
    ]
    print(format_table(
        ["model", "batch", "PQ KiB", "FQ KiB", "overhead"],
        rows, title=f"Peak on-chip memory at {args.bits}-bit",
    ))
    if args.measured:
        from .analysis import tiny_hotpath_model
        from .backend import PackedWeightStore
        from .hw.memory import measured_weight_summary

        store = PackedWeightStore.from_model(tiny_hotpath_model(), args.bits)
        summary = measured_weight_summary(store)
        detail = [
            [row["tap"], row["elements"], round(row["analytic_bytes"]),
             round(row["measured_bytes"]),
             f"{100 * row['divergence']:+.2f}%" + (" !" if row["flagged"] else "")]
            for row in summary["rows"]
        ]
        print()
        print(format_table(
            ["weight tap", "elems", "analytic B", "measured B", "divergence"],
            detail,
            title=(
                f"Measured QUB-packed weight buffers at {args.bits}-bit "
                f"(tiny hotpath model)"
            ),
        ))
        print(
            f"total {summary['measured_bytes'] / 1024.0:.1f} KiB packed vs "
            f"{summary['fp32_bytes'] / 1024.0:.1f} KiB fp32 "
            f"({summary['reduction']}x); "
            f"flagged taps: {summary['flagged'] or 'none'}"
        )


def cmd_inspect(args) -> None:
    from .analysis import capture_figure3_tensors
    from .quant import QUQQuantizer

    model, _, calib, _ = _setup(args.model, 64, seed=args.seed)
    tensors = capture_figure3_tensors(model, calib, block=args.block)
    rows = []
    for name, data in tensors.items():
        quantizer = QUQQuantizer(args.bits).fit(data)
        rows.append([name, quantizer.mode.value, quantizer.params.describe()])
    print(format_table(["tensor", "mode", "parameters"], rows,
                       title=f"QUQ parameters, block {args.block}"))


def cmd_serve_bench(args) -> None:
    import json

    from .serve import (
        BatchPolicy,
        ModelRegistry,
        ServeEngine,
        format_snapshot,
        run_serve_benchmark,
    )

    from .serve.registry import ModelKey

    spec = f"{args.model}/{args.method}/{args.bits}/{args.coverage}"
    if args.backend != "float":
        spec = f"{spec}/{args.backend}"
    try:
        ModelKey.parse(spec)
        policy = BatchPolicy(
            max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.queue,
            timeout_ms=args.timeout_ms,
        )
    except ValueError as error:
        raise SystemExit(f"repro serve-bench: error: {error}")
    registry = ModelRegistry(capacity=args.cache_capacity)
    with ServeEngine(registry, policy, workers=args.workers) as engine:
        snapshot = run_serve_benchmark(
            engine, spec,
            requests=args.requests, rate=args.rate,
            seed=0 if args.seed is None else args.seed,
        )
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(format_snapshot(snapshot))


def cmd_chaos_soak(args) -> None:
    import json

    from .resilience import ResiliencePolicy, RetryPolicy
    from .resilience.faults import FAULT_KINDS, FaultPlan
    from .resilience.soak import ChaosSoakConfig, format_soak_report, run_chaos_soak
    from .serve import BatchPolicy, ModelRegistry, ServeEngine
    from .serve.registry import ModelKey

    spec = f"{args.model}/{args.method}/{args.bits}/{args.coverage}"
    seed = 0 if args.seed is None else args.seed
    try:
        ModelKey.parse(spec)
        config = ChaosSoakConfig(
            spec=spec,
            requests=args.requests,
            rate=args.rate,
            seed=seed,
            availability_floor=args.floor,
        )
        policy = BatchPolicy(
            max_batch_size=args.max_batch,
            max_wait_ms=5.0,
            max_queue=args.queue,
            timeout_ms=args.timeout_ms,
        )
    except ValueError as error:
        raise SystemExit(f"repro chaos-soak: error: {error}")
    # The fault windows sit within `horizon` injection events so every
    # class is reachable in one run; the defenses are tuned snappy (short
    # breaker cooldown, sub-second watchdog) so recovery also fits.
    plan = FaultPlan.seeded(
        seed=seed, kinds=FAULT_KINDS, horizon=args.horizon,
        max_width=2, stall_s=0.15, spike=args.spike,
    )
    registry = ModelRegistry(
        capacity=args.cache_capacity,
        retry=RetryPolicy(attempts=4, backoff_s=0.05),
        faults=plan,
    )
    resilience = ResiliencePolicy(
        breaker_failures=2, breaker_cooldown_s=0.25, watchdog_stall_s=0.1
    )
    with ServeEngine(registry, policy, resilience=resilience, faults=plan) as engine:
        report = run_chaos_soak(engine, plan, config)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_soak_report(report))
    if not report["passed"]:
        raise SystemExit(1)


def cmd_fault_sweep(args) -> None:
    import json

    from . import quantize_model
    from .hw import FaultSweepConfig, format_fault_sweep, run_fault_sweep
    from .hw.faults import HW_FAULT_SITES

    seed = 0 if args.seed is None else args.seed
    try:
        config = FaultSweepConfig(
            bits=args.bits,
            bers=tuple(args.ber) if args.ber else (1e-4, 1e-3),
            site_cases=tuple(args.sites) if args.sites else HW_FAULT_SITES + ("all",),
            batch=args.sweep_batch,
            seed=seed,
            protected_match_floor=args.floor,
            array=args.array,
        )
    except ValueError as error:
        raise SystemExit(f"repro fault-sweep: error: {error}")
    model, _, calib, val = _setup(args.model, args.images, seed=args.seed)
    pipeline = quantize_model(
        model, calib, method="quq", bits=args.bits, coverage="full",
        hessian=not args.no_hessian, batch_size=args.batch_size,
    )
    pipeline.detach()
    report = run_fault_sweep(model, pipeline, val.images, config, labels=val.labels)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_fault_sweep(report))
    if not report["passed"]:
        raise SystemExit(1)


def cmd_corruption_sweep(args) -> None:
    import json

    from .analysis import (
        CorruptionSweepConfig,
        RecoveryCurveConfig,
        format_corruption_sweep,
        format_recovery_report,
        run_corruption_sweep,
        run_recovery_curve,
    )
    from .data.corruptions import corruption_names
    from .serve import ModelRegistry

    seed = 0 if args.seed is None else args.seed
    try:
        config = CorruptionSweepConfig(
            methods=tuple(args.methods),
            corruptions=(
                tuple(args.corruptions) if args.corruptions else corruption_names()
            ),
            severities=tuple(args.severities),
            bits=args.bits,
            coverage=args.coverage,
            eval_count=args.images,
            batch_size=args.batch_size,
            seed=seed,
        )
        recovery_config = RecoveryCurveConfig(
            spec=f"{args.model}/quq/{args.bits}/{args.coverage}",
            corruption=args.recovery_corruption,
            severity=args.recovery_severity,
            seed=seed,
        ) if args.recovery else None
    except ValueError as error:
        raise SystemExit(f"repro corruption-sweep: error: {error}")
    model, _, calib, _ = _setup(args.model, 64, seed=args.seed)
    _, val_set = make_splits(**DATASET_SPEC)
    report = {"sweep": run_corruption_sweep(model, calib, val_set, config)}
    sections = [format_corruption_sweep(report["sweep"])]
    if recovery_config is not None:
        registry = ModelRegistry(capacity=4)
        report["recovery"] = run_recovery_curve(
            registry, val_set, calib, recovery_config
        )
        sections.append(format_recovery_report(report["recovery"]))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("\n\n".join(sections))
    if "recovery" in report and not report["recovery"]["passed"]:
        raise SystemExit(1)


def cmd_perf_bench(args) -> None:
    import json

    from .analysis import (
        HotpathConfig,
        format_hotpath_report,
        run_hotpath_bench,
        tiny_hotpath_model,
    )

    seed = 0 if args.seed is None else args.seed
    try:
        config = HotpathConfig(
            methods=tuple(args.methods),
            bits=args.bits,
            coverage=args.coverage,
            batch_size=args.batch_size,
            measured_batches=args.batches,
            calib_count=args.calib_count,
            seed=seed,
            backends=("float", "int") if args.backend == "int" else ("float",),
        )
    except ValueError as error:
        raise SystemExit(f"repro perf-bench: error: {error}")

    if args.tiny:
        # Self-contained: random weights, synthetic calibration images —
        # latency and the bit-exactness attestation need neither the zoo
        # nor the dataset, so this path suits CI smoke runs.
        report = run_hotpath_bench(config, model_factory=tiny_hotpath_model)
    else:
        model, _, calib, _ = _setup(args.model, 64, seed=args.seed)
        report = run_hotpath_bench(
            config,
            model_factory=lambda _seed: model,
            calib=calib[: config.calib_count],
        )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_hotpath_report(report))
    if not report["attestation"]["bit_exact"]:
        raise SystemExit(1)


def cmd_kernel_parity(args) -> None:
    import json

    from .kernels import run_kernel_parity

    seed = 0 if args.seed is None else args.seed
    report = run_kernel_parity(seed=seed, cases=args.cases)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for op, entry in sorted(report["ops"].items()):
            for pair in entry["pairs"]:
                verdict = "ok" if pair["passed"] else "FAIL"
                print(f"{op}:{pair['fast_variant']:<10} {verdict:<5} "
                      f"{pair['cases']:>4} cases  ({pair['parity']})")
                for mismatch in pair["mismatches"]:
                    print(f"    {mismatch['case']}: {mismatch['problem']}")
        verdict = "PASS" if report["passed"] else "FAIL"
        print(f"kernel parity: {report['pairs_checked']} pairs, "
              f"{report['failures']} failures -> {verdict}")
    if not report["passed"]:
        raise SystemExit(1)


def cmd_scale_bench(args) -> None:
    import json

    from .analysis.scale import (
        ScaleBenchConfig,
        format_scale_report,
        run_scale_benchmark,
        tiny_scale_servable,
    )
    from .resilience import ResiliencePolicy
    from .serve import AdmissionController, AdmissionPolicy, BatchPolicy
    from .serve.autoscaler import AutoscalePolicy
    from .serve.cluster import ClusterEngine, ClusterPolicy
    from .serve.loadgen import _image_size
    from .serve.registry import ModelKey
    from .serve.traces import TraceConfig, load_trace, tenant_mix

    seed = 0 if args.seed is None else args.seed
    try:
        key = ModelKey.parse(args.spec)
        trace = TraceConfig(
            duration_s=args.duration,
            base_rate=args.rate,
            seed=seed,
            flash_multiplier=args.flash_multiplier,
            tenants=args.tenants,
        )
        autoscale = None
        if not args.no_autoscale:
            autoscale = AutoscalePolicy(
                min_shards=args.min_shards,
                max_shards=args.max_shards,
                # The tick cadence is per-arrival, so sustain/cooldown are
                # tuned for short smoke traces rather than wall-clock SLOs.
                scale_up_sustain=2,
                scale_down_sustain=3,
                cooldown_s=0.5,
                quarantine_base_s=1.0,
            )
        config = ScaleBenchConfig(
            spec=key.spec,
            trace=trace,
            trace_events=load_trace(args.trace) if args.trace else None,
            availability_floor=args.floor,
            kill_shard_at=None if args.no_kill else 0.5,
            crash_burst_at=args.crash_burst_at,
            crash_burst_kills=args.crash_burst_kills,
            autoscale=autoscale,
            secondary_spec=args.secondary_spec,
        )
        policy = BatchPolicy(
            max_batch_size=args.max_batch,
            max_wait_ms=3.0,
            max_queue=args.queue,
            timeout_ms=args.timeout_ms,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro scale-bench: error: {error}")
    # Fair-queue weights mirror the trace's offered mix: every tenant is
    # entitled to the capacity share its long-run demand represents.
    admission = AdmissionController(AdmissionPolicy(
        tenant_weights=tenant_mix(trace),
        rate_limit_rps=args.rate_limit,
    ))
    if args.tiny:
        # Self-contained: a random tiny ViT calibrated on synthetic
        # images, built once in the parent and shared with the forked
        # shard workers copy-on-write (instant shard spawn, no zoo).
        servable = tiny_scale_servable(seed=seed)
        loader = lambda spec: servable  # noqa: E731
        image_hw = 16
    else:
        loader = None  # each shard builds its own registry entry
        image_hw = _image_size(key)
    cluster = ClusterPolicy(shards=args.shards, image_hw=image_hw)
    engine = ClusterEngine(
        loader=loader,
        policy=policy,
        cluster=cluster,
        resilience=ResiliencePolicy(watchdog_stall_s=1.0),
        admission=admission,
    )
    with engine:
        report = run_scale_benchmark(engine, config)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_scale_report(report))
    if not report["passed"]:
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("zoo", help="train/load all mini models").set_defaults(fn=cmd_zoo)

    quantize = commands.add_parser("quantize", help="quantize one model")
    quantize.add_argument("model", choices=_TRAINABLE)
    quantize.add_argument("--method", default="quq",
                          choices=["baseq", "quq", "biscaled", "fqvit", "ptq4vit"])
    quantize.add_argument("--bits", type=int, default=6)
    quantize.add_argument("--coverage", default="full", choices=["partial", "full"])
    quantize.add_argument("--no-hessian", action="store_true")
    quantize.add_argument("--val", type=int, default=512)
    _add_repro_flags(quantize)
    quantize.set_defaults(fn=cmd_quantize)

    export = commands.add_parser("export", help="export a QUQ artifact")
    export.add_argument("model", choices=_TRAINABLE)
    export.add_argument("output")
    export.add_argument("--bits", type=int, default=6)
    _add_repro_flags(export)
    export.set_defaults(fn=cmd_export)

    commands.add_parser("table4", help="accelerator area/power").set_defaults(fn=cmd_table4)

    memory = commands.add_parser("memory", help="peak-memory table")
    memory.add_argument("--bits", type=int, default=8)
    memory.add_argument("--measured", action="store_true",
                        help="also print measured QUB-packed weight buffer "
                             "sizes vs the analytic estimate")
    memory.set_defaults(fn=cmd_memory)

    inspect = commands.add_parser("inspect", help="QUQ parameter summary")
    inspect.add_argument("model", choices=_TRAINABLE)
    inspect.add_argument("--bits", type=int, default=4)
    inspect.add_argument("--block", type=int, default=0)
    _add_repro_flags(inspect)
    inspect.set_defaults(fn=cmd_inspect)

    serve = commands.add_parser(
        "serve-bench", help="synthetic open-loop benchmark of the serving runtime"
    )
    serve.add_argument("--model", default="vit_s",
                       help="paper (vit_s) or zoo (vit_mini_s) model name")
    serve.add_argument("--method", default="quq",
                       choices=["baseq", "quq", "biscaled", "fqvit", "ptq4vit", "fp32"])
    serve.add_argument("--bits", type=int, default=6)
    serve.add_argument("--coverage", default="full", choices=["partial", "full"])
    serve.add_argument("--backend", default="float", choices=["float", "int"],
                       help="serving backend: float fake-quant forward or the "
                            "integer-native QUB datapath (quq/full only)")
    serve.add_argument("--requests", type=int, default=256)
    serve.add_argument("--rate", type=float, default=200.0,
                       help="offered load, requests per second")
    serve.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    serve.add_argument("--max-wait-ms", type=float, default=10.0, dest="max_wait_ms")
    serve.add_argument("--queue", type=int, default=128,
                       help="bounded queue size (backpressure threshold)")
    serve.add_argument("--timeout-ms", type=float, default=5000.0, dest="timeout_ms")
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--cache-capacity", type=int, default=2, dest="cache_capacity")
    serve.add_argument("--json", action="store_true",
                       help="print the raw metrics snapshot as JSON")
    _add_repro_flags(serve)
    serve.set_defaults(fn=cmd_serve_bench)

    soak = commands.add_parser(
        "chaos-soak",
        help="serve synthetic traffic under a seeded fault plan and audit recovery",
    )
    soak.add_argument("--model", default="vit_s",
                      help="paper (vit_s) or zoo (vit_mini_s) model name")
    soak.add_argument("--method", default="quq",
                      choices=["baseq", "quq", "biscaled", "fqvit", "ptq4vit", "fp32"])
    soak.add_argument("--bits", type=int, default=6)
    soak.add_argument("--coverage", default="full", choices=["partial", "full"])
    soak.add_argument("--requests", type=int, default=192)
    soak.add_argument("--rate", type=float, default=150.0,
                      help="offered load, requests per second")
    soak.add_argument("--floor", type=float, default=0.5,
                      help="minimum acceptable availability (completed/offered)")
    soak.add_argument("--horizon", type=int, default=12,
                      help="event horizon for seeded fault-window placement")
    soak.add_argument("--spike", type=int, default=16,
                      help="extra submissions per queue-spike event")
    soak.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    soak.add_argument("--queue", type=int, default=64,
                      help="bounded queue size (backpressure threshold)")
    soak.add_argument("--timeout-ms", type=float, default=5000.0, dest="timeout_ms")
    soak.add_argument("--cache-capacity", type=int, default=2, dest="cache_capacity")
    soak.add_argument("--output", default=None,
                      help="also write the JSON report to this path")
    soak.add_argument("--json", action="store_true",
                      help="print the raw report as JSON")
    _add_repro_flags(soak)
    soak.set_defaults(fn=cmd_chaos_soak)

    sweep = commands.add_parser(
        "fault-sweep",
        help="soft-error sweep: BER x site x protection on the QUA datapath",
    )
    sweep.add_argument("--model", default="vit_mini_s", choices=_TRAINABLE)
    sweep.add_argument("--bits", type=int, default=8)
    sweep.add_argument("--ber", type=float, action="append", default=None,
                       help="bit-error rate; repeatable (default: 1e-4 1e-3)")
    sweep.add_argument("--sites", nargs="+", default=None,
                       choices=["qub", "register", "accumulator", "sfu", "all"],
                       help="site cases to sweep (default: each site plus 'all')")
    sweep.add_argument("--images", type=int, default=32,
                       help="validation images scored per sweep cell")
    sweep.add_argument("--sweep-batch", type=int, default=4, dest="sweep_batch",
                       help="executor batch size (a guard trip fails one batch)")
    sweep.add_argument("--floor", type=float, default=0.75,
                       help="minimum protected agreement with the fault-free run")
    sweep.add_argument("--array", type=int, default=16,
                       help="PE array size for the protection overhead model")
    sweep.add_argument("--no-hessian", action="store_true")
    sweep.add_argument("--output", default=None,
                       help="also write the JSON report to this path")
    sweep.add_argument("--json", action="store_true",
                       help="print the raw report as JSON")
    _add_repro_flags(sweep)
    sweep.set_defaults(fn=cmd_fault_sweep)

    corruption = commands.add_parser(
        "corruption-sweep",
        help="SynthShapes-C robustness grid, optionally with the drift "
             "recovery curve",
    )
    corruption.add_argument("--model", default="vit_mini_s", choices=_TRAINABLE)
    corruption.add_argument(
        "--methods", nargs="+",
        default=["fp32", "quq", "baseq", "biscaled", "ptq4vit"],
        choices=["fp32", "baseq", "quq", "biscaled", "fqvit", "ptq4vit"],
    )
    corruption.add_argument("--corruptions", nargs="+", default=None,
                            help="corruption ops (default: the full suite)")
    corruption.add_argument("--severities", nargs="+", type=int, default=[1, 3, 5])
    corruption.add_argument("--bits", type=int, default=6)
    corruption.add_argument("--coverage", default="full",
                            choices=["partial", "full"])
    corruption.add_argument("--images", type=int, default=128,
                            help="validation images scored per sweep cell")
    corruption.add_argument("--recovery", action="store_true",
                            help="also run the drift-triggered recovery curve")
    corruption.add_argument("--recovery-corruption", default="gaussian_noise",
                            dest="recovery_corruption")
    corruption.add_argument("--recovery-severity", type=int, default=3,
                            dest="recovery_severity")
    corruption.add_argument("--output", default=None,
                            help="also write the JSON report to this path")
    corruption.add_argument("--json", action="store_true",
                            help="print the raw report as JSON")
    _add_repro_flags(corruption)
    corruption.set_defaults(fn=cmd_corruption_sweep)

    perf = commands.add_parser(
        "perf-bench",
        help="hot-path latency benchmark with weight-cache attestation",
    )
    perf.add_argument("--tiny", action="store_true",
                      help="self-contained tiny ViT with synthetic calibration "
                           "(no zoo training; suitable for CI smoke runs)")
    perf.add_argument("--model", default="vit_mini_s", choices=_TRAINABLE,
                      help="zoo model to benchmark when --tiny is not set")
    perf.add_argument("--methods", nargs="+", default=["fp32", "baseq", "quq"],
                      choices=["fp32", "baseq", "quq", "biscaled", "fqvit",
                               "ptq4vit"])
    perf.add_argument("--bits", type=int, default=6)
    perf.add_argument("--coverage", default="full", choices=["partial", "full"])
    perf.add_argument("--backend", default="float", choices=["float", "int"],
                      help="'int' adds the integer-native backend section "
                           "(gated on bit-exactness vs the reference executor)")
    perf.add_argument("--batches", type=int, default=20,
                      help="steady-state batches measured per method")
    perf.add_argument("--calib-count", type=int, default=16, dest="calib_count",
                      help="calibration images used for the timed calibrate")
    perf.add_argument("--output", default="BENCH_serve.json",
                      help="write the JSON report here ('' to skip)")
    perf.add_argument("--json", action="store_true",
                      help="print the raw report as JSON")
    _add_repro_flags(perf)
    perf.set_defaults(fn=cmd_perf_bench, batch_size=2)

    scale = commands.add_parser(
        "scale-bench",
        help="flash-crowd trace against the sharded cluster with admission "
             "control (availability, tail latency, shed rate, fairness)",
    )
    scale.add_argument("--tiny", action="store_true",
                       help="self-contained tiny ViT servable shared with the "
                            "shards copy-on-write (no zoo; CI smoke)")
    scale.add_argument("--spec", default="vit_s/quq/6",
                       help="model spec to serve (ignored weights when --tiny)")
    scale.add_argument("--duration", type=float, default=6.0,
                       help="trace length in seconds")
    scale.add_argument("--rate", type=float, default=600.0,
                       help="steady-state offered load, requests/s")
    scale.add_argument("--flash-multiplier", type=float, default=4.0,
                       dest="flash_multiplier",
                       help="flash-crowd multiple of the steady rate")
    scale.add_argument("--tenants", type=int, default=4,
                       help="tenants in the heavy-tailed request mix")
    scale.add_argument("--shards", type=int, default=2,
                       help="worker processes per model")
    scale.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    scale.add_argument("--queue", type=int, default=64,
                       help="bounded queue capacity per lane")
    scale.add_argument("--timeout-ms", type=float, default=2000.0,
                       dest="timeout_ms")
    scale.add_argument("--rate-limit", type=float, default=None,
                       dest="rate_limit",
                       help="token-bucket admitted-rate cap, requests/s "
                            "(default: no rate limit)")
    scale.add_argument("--floor", type=float, default=0.99,
                       help="availability floor over admitted requests")
    scale.add_argument("--no-kill", action="store_true",
                       help="skip the mid-trace shard kill")
    scale.add_argument("--trace", default="",
                       help="replay a recorded JSONL trace (one arrival per "
                            "line: at_s, tenant, priority, deadline_ms) "
                            "instead of the synthetic generator")
    scale.add_argument("--no-autoscale", action="store_true",
                       help="static shard pool (disable the elastic "
                            "control plane)")
    scale.add_argument("--min-shards", type=int, default=1, dest="min_shards",
                       help="autoscaler floor per lane")
    scale.add_argument("--max-shards", type=int, default=4, dest="max_shards",
                       help="autoscaler ceiling per lane")
    scale.add_argument("--secondary-spec", default=None, dest="secondary_spec",
                       help="warm an idle second lane that can lend shards "
                            "to the hot one (e.g. vit_s/quq/4)")
    scale.add_argument("--crash-burst-at", type=float, default=None,
                       dest="crash_burst_at",
                       help="trace fraction at which to SIGKILL the serving "
                            "shard repeatedly (drives the crash-loop "
                            "quarantine; default: no burst)")
    scale.add_argument("--crash-burst-kills", type=int, default=3,
                       dest="crash_burst_kills",
                       help="kills in the crash burst")
    scale.add_argument("--output", default="",
                       help="write the JSON report here ('' to skip)")
    scale.add_argument("--json", action="store_true",
                       help="print the raw report as JSON")
    _add_repro_flags(scale)
    scale.set_defaults(fn=cmd_scale_bench)

    parity = commands.add_parser(
        "kernel-parity",
        help="pairwise reference-vs-fast parity over every registered "
             "kernel (adversarial inputs included); exit 1 on any mismatch",
    )
    parity.add_argument("--cases", type=int, default=8,
                        help="random cases per generator on top of the "
                             "fixed adversarial set")
    parity.add_argument("--seed", type=int, default=None,
                        help="case-generation seed (default 0; "
                             "deterministic given the seed)")
    parity.add_argument("--output", default="",
                        help="write the JSON report here ('' to skip)")
    parity.add_argument("--json", action="store_true",
                        help="print the raw report as JSON")
    parity.set_defaults(fn=cmd_kernel_parity)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    main()
