"""Bit-exactness attestation for the integer-native backend.

The int backend's claim is strong: it does *not* approximate the QUA
reference executor, it reproduces it bit for bit — the packed weights
decode to the same integers ``encode_tensor`` would produce, the fused
activation kernels emit the same codes, and the float glue copies the
reference operation order.  This module turns that claim into a runtime
check: run both stacks on the same batch and require ``array_equal`` on
the logits, in both SFU modes.  The perf benchmark and the CI perf-smoke
job gate on the result, so a refactor that silently breaks equivalence
fails the build rather than shipping a subtly different model.

Alongside the hard gate it reports soft diagnostics: worst-case logit
divergence from the *fake-quantized* float model (the accuracy-table
reference — expected small but nonzero, since store/load rounding orders
differ) and the packed-weight memory summary.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..hw.executor import ModelExecutor
from .int_backend import IntNativeBackend

__all__ = ["attest_int_backend"]


def attest_int_backend(
    model,
    pipeline,
    images: np.ndarray,
    bits: int | None = None,
    integer_sfu: bool = False,
    backend: IntNativeBackend | None = None,
) -> dict:
    """Attest one batch: int backend vs reference executor vs float model.

    Returns a JSON-serializable report whose ``bit_exact`` field is the
    hard gate (logits of :class:`IntNativeBackend` must equal
    :class:`ModelExecutor`'s exactly); ``float_max_abs_diff`` and
    ``float_top1_agreement`` compare against the fake-quantized forward
    pass for context.  Pass ``backend`` to attest an already-built
    instance (e.g. the one a registry entry serves) instead of building
    a fresh one.
    """
    images = np.asarray(images)
    if backend is None:
        backend = IntNativeBackend(model, pipeline, bits=bits, integer_sfu=integer_sfu)
    executor = ModelExecutor(
        backend.model,
        backend.pipeline,
        bits=backend.bits,
        integer_sfu=backend.integer_sfu,
    )

    int_logits = backend.predict(images)
    ref_logits = executor.run(images)

    backend.model.eval()
    with no_grad():
        float_logits = backend.model(Tensor(images)).data

    bit_exact = bool(np.array_equal(int_logits, ref_logits))
    report = {
        "bits": backend.bits,
        "integer_sfu": backend.integer_sfu,
        "batch": int(images.shape[0]),
        "bit_exact": bit_exact,
        "executor_max_abs_diff": float(np.max(np.abs(int_logits - ref_logits)))
        if int_logits.shape == ref_logits.shape
        else float("inf"),
        "float_max_abs_diff": float(np.max(np.abs(int_logits - float_logits))),
        "float_top1_agreement": float(
            np.mean(int_logits.argmax(axis=-1) == float_logits.argmax(axis=-1))
        ),
        "memory": backend.memory_info(),
    }
    return report
