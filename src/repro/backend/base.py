"""Backend interface: how a servable model turns image batches into logits.

A :class:`ServingBackend` owns one loaded model's inference strategy.  The
registry builds one per entry (selected by the ``backend`` segment of the
model spec) and the serving engine calls :meth:`predict` for every batch;
:meth:`memory_info` and :meth:`counters` feed the registry snapshot so
operators can see what each entry costs and how it is being exercised.

Two implementations exist:

* :class:`~repro.backend.float_backend.FloatFakeQuantBackend` — the tapped
  float forward pass with cached fake-quantization (the historical path).
* :class:`~repro.backend.int_backend.IntNativeBackend` — QUB-packed
  weights plus batched integer GEMM / shift-requantize kernels, bit-exact
  with :class:`repro.hw.executor.ModelExecutor`.

Backends assume the caller serializes :meth:`predict` calls per instance
(the :class:`~repro.serve.registry.ServableModel` lock does this); they
keep no per-call locks of their own.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ServingBackend", "BACKEND_NAMES"]

#: Valid values of the model spec's backend segment.
BACKEND_NAMES = ("float", "int")


class ServingBackend:
    """One model's inference strategy behind the serving hot path."""

    #: Short identifier, also the spec segment that selects the backend.
    name: str = "?"

    def predict(self, images: np.ndarray, recorder=None) -> np.ndarray:
        """Logits for a batch of images.

        ``recorder`` (a :class:`~repro.quant.drift.TapStatsRecorder`) is
        fed the *pre-quantization* activation values at every quantized
        tap, so drift monitoring sees the same distributions regardless
        of which backend serves the batch.
        """
        raise NotImplementedError

    def memory_info(self) -> dict:
        """Weight-storage accounting (bytes), JSON-serializable."""
        return {}

    def counters(self) -> dict:
        """Monotonic usage counters (batches served, kernel calls)."""
        return {}

    def describe(self) -> dict:
        """Registry-snapshot view: name + memory + counters."""
        return {"backend": self.name, **self.memory_info(), **self.counters()}
