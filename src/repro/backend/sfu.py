"""Vectorized integer SFU kernels (softmax / GELU / LayerNorm).

Batched variants of the scalar-reference kernels in
:mod:`repro.hw.int_sfu`, for the integer-native serving backend.  The
contract — pinned by a hypothesis parity suite — is **exact integer
equality** with the references at every bit-width: these are the same
algorithms with the sequential bottlenecks removed, not approximations.

What changes relative to the reference:

* :func:`v_i_sqrt` replaces the 20-round Newton iteration (whose early
  exit is data-dependent and convoys the whole tensor to its slowest
  element) with one float64 ``sqrt`` plus a two-step exact correction —
  floor-exact for every value below ``2**52``, with an automatic fallback
  to the reference iteration above that.
* The polynomial kernels hoist the scale-dependent integer constants out
  of the elementwise pass (:func:`_poly_constants` is cached per scale),
  so repeated batches at one tap pay for ``floor(b/s)``-style conversions
  once instead of per call.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..hw.int_sfu import _ERF_A, _ERF_B, _ERF_C, _EXP_A, _EXP_B, _EXP_C, _LN2, i_sqrt

__all__ = ["v_i_sqrt", "v_i_exp", "v_i_softmax", "v_i_gelu", "v_i_layernorm"]

#: Above this, one float64 sqrt can be off by more than one integer step.
_SQRT_EXACT_LIMIT = np.int64(1) << 52


def v_i_sqrt(n: np.ndarray) -> np.ndarray:
    """Integer square root (floor of the true root), vectorized.

    ``float64`` carries 53 significand bits, so for ``n < 2**52`` the
    rounded float sqrt is within one of the true floor and two exact
    integer corrections pin it; larger inputs (which the LayerNorm
    variance path never produces at serving widths) fall back to the
    Newton reference.
    """
    n = np.asarray(n, dtype=np.int64)
    if (n < 0).any():
        raise ValueError("v_i_sqrt requires non-negative inputs")
    if (n >= _SQRT_EXACT_LIMIT).any():
        return i_sqrt(n)
    root = np.sqrt(n.astype(np.float64)).astype(np.int64)
    root = np.where((root + 1) * (root + 1) <= n, root + 1, root)
    root = np.where(root * root > n, root - 1, root)
    return root


@lru_cache(maxsize=256)
def _poly_constants(s: float, a: float, b: float, c: float) -> tuple[int, int, float]:
    """Integer constants of ``a*(x+b)^2 + c`` at input scale ``s``."""
    q_b = int(np.floor(b / s))
    q_c = int(np.floor(c / (a * s * s)))
    return q_b, q_c, a * s * s


def _v_poly(q: np.ndarray, s: float, a: float, b: float, c: float) -> tuple[np.ndarray, float]:
    q_b, q_c, s_out = _poly_constants(float(s), a, b, c)
    return (q + np.int64(q_b)) ** 2 + np.int64(q_c), s_out


def v_i_exp(q: np.ndarray, s: float) -> tuple[np.ndarray, float]:
    """Integer exp for non-positive inputs; equals ``i_exp`` exactly."""
    q = np.asarray(q, dtype=np.int64)
    if (q > 0).any():
        raise ValueError("v_i_exp expects non-positive inputs (pre-shifted by max)")
    q_ln2 = np.int64(np.floor(_LN2 / s))
    z = np.floor_divide(-q, q_ln2)
    q_l, s_l = _v_poly(q + z * q_ln2, s, _EXP_A, _EXP_B, _EXP_C)
    z = np.minimum(z, 62)
    return np.floor_divide(q_l, np.int64(1) << z), s_l


def v_i_softmax(
    q: np.ndarray, s: float, axis: int = -1, out_bits: int = 16
) -> tuple[np.ndarray, float]:
    """Integer softmax over ``axis``; equals ``i_softmax`` exactly."""
    q = np.asarray(q, dtype=np.int64)
    shifted = q - q.max(axis=axis, keepdims=True)
    q_exp, _ = v_i_exp(shifted, s)
    total = q_exp.sum(axis=axis, keepdims=True)
    factor = np.int64(2**out_bits)
    q_out = np.floor_divide(q_exp * factor, np.maximum(total, 1))
    return q_out, 2.0**-out_bits


def v_i_gelu(q: np.ndarray, s: float) -> tuple[np.ndarray, float]:
    """Integer GELU via the polynomial erf; equals ``i_gelu`` exactly."""
    q = np.asarray(q, dtype=np.int64)
    s_erf_in = s / np.sqrt(2.0)
    q_clip = np.minimum(np.abs(q), np.int64(np.floor(-_ERF_B / s_erf_in)))
    q_l, s_l = _v_poly(q_clip, s_erf_in, _ERF_A, _ERF_B, _ERF_C)
    q_erf = np.sign(q) * q_l
    q_sum = q_erf + np.int64(np.floor(1.0 / s_l))
    return q * q_sum, s * s_l / 2.0


def v_i_layernorm(
    q: np.ndarray,
    s: float,
    weight: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    out_bits: int = 8,
) -> tuple[np.ndarray, float]:
    """Integer LayerNorm over the last axis; equals ``i_layernorm`` exactly.

    The inverse standard deviation goes through :func:`v_i_sqrt`, which is
    where the batched path wins: the reference Newton loop runs ~20 full
    tensor passes, the vectorized root exactly one (plus two corrections).
    """
    q = np.asarray(q, dtype=np.int64)
    n = q.shape[-1]
    mean = np.floor_divide(q.sum(axis=-1, keepdims=True), n)
    centered = q - mean
    var = np.floor_divide((centered * centered).sum(axis=-1, keepdims=True), n)
    std = np.maximum(v_i_sqrt(var), 1)
    factor = np.int64(1) << out_bits
    normalized = np.floor_divide(centered * factor, std)
    s_out = 2.0**-out_bits
    if weight is not None:
        q_w = np.rint(np.asarray(weight, dtype=np.float64) / s_out).astype(np.int64)
        normalized = np.floor_divide(normalized * q_w, factor)
    if bias is not None:
        normalized = normalized + np.rint(
            np.asarray(bias, dtype=np.float64) / s_out
        ).astype(np.int64)
    return normalized, s_out
