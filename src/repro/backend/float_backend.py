"""The float fake-quantization backend: today's tapped forward pass.

Wraps the historical serving path — the model's own forward with the PTQ
pipeline's tap dispatcher attached, fake-quantizing activations in float
and replaying cached pre-quantized weights — behind the
:class:`~repro.backend.base.ServingBackend` interface, so the registry
and engine treat it and the integer-native backend uniformly.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from .base import ServingBackend

__all__ = ["FloatFakeQuantBackend"]


class FloatFakeQuantBackend(ServingBackend):
    """Tapped float forward with cached fake-quantization."""

    name = "float"

    def __init__(self, model, pipeline):
        self.model = model
        self.pipeline = pipeline
        self._batches = 0

    def predict(self, images: np.ndarray, recorder=None) -> np.ndarray:
        self._batches += 1
        if recorder is not None and self.pipeline is not None:
            self.pipeline.env.stats_recorder = recorder
        try:
            self.model.eval()
            with no_grad():
                return self.model(Tensor(images)).data
        finally:
            if recorder is not None and self.pipeline is not None:
                self.pipeline.env.stats_recorder = None

    def memory_info(self) -> dict:
        from .packed import iter_linear_weight_taps

        try:
            float_bytes = sum(
                layer.weight.data.nbytes for _, layer in iter_linear_weight_taps(self.model)
            )
        except AttributeError:  # non-ViT topologies: no packed-format peer
            float_bytes = 0
        return {"packed_weight_bytes": 0, "float_weight_bytes": int(float_bytes)}

    def counters(self) -> dict:
        return {"batches_total": self._batches}
