"""QUB-packed weight storage: the int backend's at-rest weight format.

The QUA simulator keeps QUB words one-per-``uint8``/``uint16`` for
indexing convenience, so a 4-bit model still occupies a byte per weight.
This module stores each weight tensor as a *dense bitstream*
(:func:`repro.quant.qub.pack_qub_words`): ``ceil(elements * bits / 8)``
bytes plus the two FC register bytes — the real memory footprint the
paper's Section 2 argues for (8x smaller than float32 at 4 bits).

A :class:`PackedWeightStore` is built once, at model load/calibration
time, from the pipeline's fitted weight quantizers; per batch the int
backend unpacks a buffer and decodes it through a per-tensor LUT (op
``qub.decode_lut`` of the kernel registry, shared per register pair)
into the shifted PE-array operands.  Packing is lossless, so the unpacked words are identical to
what :func:`repro.hw.accelerator.encode_tensor` would produce from the
float weights — the foundation of the backend's bit-exactness guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import get_kernel
from ..quant.qub import FCRegisters, unpack_qub_words

__all__ = ["PackedWeight", "PackedWeightStore", "iter_linear_weight_taps"]

#: Per-tensor metadata stored alongside the bitstream, in bytes: the two
#: FC register bytes (the base delta and shape live with the host struct,
#: as they would in a descriptor table).
_REGISTER_BYTES = 2


def iter_linear_weight_taps(model):
    """Yield ``(weight_tap_name, linear_layer)`` for every GEMM the
    integer datapath executes on a ViT/DeiT, in execution order."""
    prefix = model.config.name
    yield f"{prefix}.patch_embed.proj.weight", model.patch_embed.proj
    for index, block in enumerate(model.blocks):
        base = f"{prefix}.blocks.{index}"
        yield f"{base}.attn.qkv.weight", block.attn.qkv
        yield f"{base}.attn.proj.weight", block.attn.proj
        yield f"{base}.mlp.fc1.weight", block.mlp.fc1
        yield f"{base}.mlp.fc2.weight", block.mlp.fc2
    yield f"{prefix}.head.weight", model.head
    if getattr(model, "head_dist", None) is not None:
        yield f"{prefix}.head_dist.weight", model.head_dist


@dataclass
class PackedWeight:
    """One weight tensor in packed wire format plus its decode state."""

    tap: str
    shape: tuple[int, ...]
    bits: int
    buffer: np.ndarray  # uint8 dense bitstream
    registers: FCRegisters
    base_delta: float
    lut: np.ndarray  # int64 (2^bits,): QUB word -> D << n_sh

    @property
    def elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def packed_bytes(self) -> int:
        """Measured storage: the bitstream plus the FC register pair."""
        return int(self.buffer.nbytes) + _REGISTER_BYTES

    @property
    def float_bytes(self) -> int:
        """What the same tensor costs as float32."""
        return self.elements * 4

    def words(self) -> np.ndarray:
        """Unpack the bitstream back into per-element QUB words."""
        return unpack_qub_words(self.buffer, self.bits, self.elements).reshape(
            self.shape
        )

    def shifted(self) -> np.ndarray:
        """PE-array operand ``D << n_sh`` (int64), one gather per batch."""
        return self.lut[self.words().astype(np.intp)]

    def to_float(self) -> np.ndarray:
        """Dequantized values (the SFU load view of the weights)."""
        return self.shifted().astype(np.float64) * self.base_delta


class PackedWeightStore:
    """All of one model's GEMM weights, packed once at build time."""

    def __init__(self, weights: dict[str, PackedWeight], bits: int):
        self.weights = weights
        self.bits = bits

    @classmethod
    def from_pipeline(cls, model, pipeline, bits: int) -> "PackedWeightStore":
        """Pack every linear weight under the pipeline's fitted QUQ params.

        Uses the exact reference encode path (``encode_tensor``), so the
        packed words match what :class:`repro.hw.executor.ModelExecutor`
        would re-encode from float on every call.
        """
        from ..hw.accelerator import encode_tensor

        weights: dict[str, PackedWeight] = {}
        for tap, layer in iter_linear_weight_taps(model):
            params = pipeline.quantizer_for(tap).params
            encoded = encode_tensor(layer.weight.data, bits, params=params)
            weights[tap] = cls._pack_encoded(tap, encoded)
        return cls(weights, bits)

    @classmethod
    def from_model(cls, model, bits: int) -> "PackedWeightStore":
        """Pack weights with per-tensor parameters fitted on the spot.

        Calibration-free: weights are static, so progressive relaxation
        runs directly on each tensor.  Used by the memory-table tooling
        to measure packed footprints without a calibrated pipeline.
        """
        from ..hw.accelerator import encode_tensor

        weights: dict[str, PackedWeight] = {}
        for tap, layer in iter_linear_weight_taps(model):
            encoded = encode_tensor(layer.weight.data, bits)
            weights[tap] = cls._pack_encoded(tap, encoded)
        return cls(weights, bits)

    @staticmethod
    def _pack_encoded(tap: str, encoded) -> PackedWeight:
        # Both the bit-packer and the decode LUT dispatch through the
        # kernel registry; the LUT comes from the process-wide shared
        # cache, so tensors under one register pair (and the int
        # backend's FusedEncoders) no longer rebuild it per construction.
        return PackedWeight(
            tap=tap,
            shape=tuple(encoded.qubs.shape),
            bits=encoded.bits,
            buffer=get_kernel("qub.pack")(encoded.qubs, encoded.bits),
            registers=encoded.registers,
            base_delta=encoded.base_delta,
            lut=get_kernel("qub.decode_lut")(encoded.registers, encoded.bits),
        )

    # ------------------------------------------------------------------
    def __getitem__(self, tap: str) -> PackedWeight:
        return self.weights[tap]

    def __len__(self) -> int:
        return len(self.weights)

    def __iter__(self):
        return iter(self.weights.values())

    @property
    def packed_bytes(self) -> int:
        return sum(w.packed_bytes for w in self.weights.values())

    @property
    def float_bytes(self) -> int:
        return sum(w.float_bytes for w in self.weights.values())

    @property
    def reduction(self) -> float:
        """Float32 bytes over packed bytes (>= 2 required at 4 bits)."""
        packed = self.packed_bytes
        return self.float_bytes / packed if packed else 0.0

    def summary(self) -> dict:
        """JSON-serializable accounting for snapshots and benchmarks."""
        return {
            "bits": self.bits,
            "tensors": len(self.weights),
            "packed_weight_bytes": self.packed_bytes,
            "float_weight_bytes": self.float_bytes,
            "reduction": round(self.reduction, 4),
        }
