"""Fused QUQ quantize→encode kernels for the integer-native backend.

The QUA reference path (:mod:`repro.hw.accelerator`) quantizes a tensor
in up to four masked passes (:func:`repro.quant.quq.quantize_with_params`)
and then encodes the codes into QUB words — correct, but it re-derives
registers and walks the tensor several times per call.  The serving hot
path quantizes *every* activation tensor of *every* batch under the same
fitted parameters, so this module precomputes everything that depends
only on the parameters — the hardware-legalized specs, the FC registers,
and a four-slot ``(delta, lo, hi, shift)`` table indexed by the 2-bit
``side*2 + fine`` selector (the PR-5 fused-table trick, extended from
fake-quantization to integer codes) — and runs the route/divide/round/
clamp sequence exactly once per tensor.

Exactness contract (pinned by the parity tests): for any finite input,

* :meth:`FusedEncoder.encode` equals the QUB words of
  ``encode_tensor(x, bits, params=params)``;
* :meth:`FusedEncoder.shifted` equals ``D << n_sh`` of decoding those
  words — the PE-array operand of Eq. (5);
* :meth:`FusedEncoder.store_load` equals ``EncodedTensor.to_float()``
  bit for bit, including the float operation order.
"""

from __future__ import annotations

import numpy as np

from ..quant.params import QUQParams, Subrange, SubrangeSpec
from ..quant.qub import FCRegisters, decode, legalize_for_hardware

__all__ = ["FusedEncoder", "decode_lut"]


def decode_lut(registers: FCRegisters, bits: int) -> np.ndarray:
    """Decode LUT: QUB word -> shifted integer ``D << n_sh`` (int64).

    Decoding is elementwise given the registers, so a ``2^bits``-entry
    gather reproduces :func:`repro.quant.qub.decode` exactly; the packed
    weight store keeps one LUT per weight tensor (at most 64 KiB at
    16 bits, bytes at serving widths) so QUB buffers decode in one
    vectorized lookup per batch.
    """
    words = np.arange(2**bits, dtype=np.uint32)
    d, n_sh = decode(words, registers, bits)
    return d << n_sh


class FusedEncoder:
    """Quantize + QUB-encode one tap's tensors under fixed parameters."""

    # Selector slots (side*2 + fine): 0=C+, 1=F+, 2=C-, 3=F-.
    _SLOTS = (
        (Subrange.C_POS, False),
        (Subrange.F_POS, False),
        (Subrange.C_NEG, True),
        (Subrange.F_NEG, True),
    )

    def __init__(self, params: QUQParams, bits: int):
        params = legalize_for_hardware(params)
        if params.bits > bits:
            raise ValueError(
                f"{params.bits}-bit parameters do not fit {bits}-bit QUBs"
            )
        self.params = params
        self.bits = bits
        self.base_delta = params.base_delta
        self.registers = FCRegisters.from_params(params)
        self._half = 2 ** (bits - 1)
        self._has_pos = params.f_pos is not None or params.c_pos is not None
        self._has_neg = params.f_neg is not None or params.c_neg is not None
        self._build_tables(params)
        self._lut: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _build_tables(self, params: QUQParams) -> None:
        delta = np.ones(4, dtype=np.float64)
        lo = np.zeros(4, dtype=np.float64)
        hi = np.zeros(4, dtype=np.float64)
        shift = np.zeros(4, dtype=np.int64)
        for slot, (subrange, negative) in enumerate(self._SLOTS):
            spec = params.spec(subrange)
            if spec is None:
                # Mirror the side's active subrange: the slot is routed to
                # only by non-finite inputs, which must still gather sane
                # table entries (quq._fused_tables does the same).
                mirror = Subrange.F_NEG if negative else Subrange.F_POS
                if subrange.is_fine:
                    mirror = Subrange.C_NEG if negative else Subrange.C_POS
                spec = params.spec(mirror)
                if spec is None:  # fully absent side: inert, never selected
                    continue
                subrange = mirror
            delta[slot] = spec.delta
            lo[slot] = float(-spec.levels) if negative else 0.0
            hi[slot] = 0.0 if negative else float(spec.levels - 1)
            shift[slot] = params.shift(subrange)

        def span(fine: SubrangeSpec | None, coarse: SubrangeSpec | None,
                 negative: bool) -> float:
            if fine is None:
                return -np.inf  # coarse-only (or absent): never route fine
            if coarse is None:
                return np.inf  # fine-only: always route fine
            base = fine.levels if negative else fine.levels - 1
            return base * fine.delta * (1.0 + 1e-6)

        self._delta, self._lo, self._hi, self._shift = delta, lo, hi, shift
        self._pow2 = (np.int64(1) << shift).astype(np.float64)
        self._span_pos = span(params.f_pos, params.c_pos, False)
        self._span_neg = span(params.f_neg, params.c_neg, True)
        # Negative zeros re-home into the positive code space (zero has no
        # pattern in a negative-reserved layout); -1 disables re-homing.
        if self._has_pos and self._has_neg:
            self._rehome_slot = 1 if params.f_pos is not None else 0
        else:
            self._rehome_slot = -1
        self._clamp_slots = tuple(
            slot
            for slot, register in ((3, self.registers.fine), (2, self.registers.coarse))
            if register.negative_reserved
        )
        # Non-finite inputs fail every routing comparison; the reference
        # parks NaNs at code -1 in the negative space when one exists.
        if self._has_neg:
            self._nan_slot = 3 if params.f_neg is not None else 2
            self._nan_code = -1.0
        else:
            self._nan_slot = 1 if params.f_pos is not None else 0
            self._nan_code = 0.0

    # ------------------------------------------------------------------
    def route(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Eq. (3) in one pass: per-element ``(codes, selector)``.

        Codes are the clamped integer codes *after* zero re-homing and
        the negative-reserved zero clamp — i.e. exactly the codes the
        QUB words carry — and ``selector`` indexes the four-slot tables
        (bit 0 = fine space, bit 1 = negative side).
        """
        x = np.asarray(x, dtype=np.float64)
        if self._has_pos and self._has_neg:
            negative = x < 0  # zero lives in the positive code space
        elif self._has_pos:
            negative = np.zeros(x.shape, dtype=bool)
        else:
            negative = np.ones(x.shape, dtype=bool)
        with np.errstate(invalid="ignore"):
            magnitude = np.where(negative, -x, x)
            fine = magnitude <= np.where(negative, self._span_neg, self._span_pos)
            selector = negative * 2 + fine
            codes = np.clip(
                np.rint(x / self._delta[selector]),
                self._lo[selector],
                self._hi[selector],
            )
        invalid = np.isnan(codes)
        if invalid.any():
            codes = np.where(invalid, self._nan_code, codes)
            selector = np.where(invalid, self._nan_slot, selector)
        codes = codes.astype(np.int64)
        if self._rehome_slot >= 0:
            zero_neg = (selector >= 2) & (codes == 0)
            selector = np.where(zero_neg, self._rehome_slot, selector)
        for slot in self._clamp_slots:
            # A one-sided negative space cannot express zero: clamp to -1.
            codes = np.where((selector == slot) & (codes == 0), np.int64(-1), codes)
        return codes, selector

    def encode(self, x: np.ndarray) -> np.ndarray:
        """QUB words for ``x``; equals ``encode_tensor(...).qubs`` exactly."""
        codes, selector = self.route(x)
        fine_mask = selector & 1
        payload = codes & (self._half - 1)
        qubs = (fine_mask.astype(np.int64) << (self.bits - 1)) | payload
        return qubs.astype(np.uint8 if self.bits <= 8 else np.uint16)

    def shifted(self, x: np.ndarray) -> np.ndarray:
        """PE-array operand ``D << n_sh`` (int64), skipping the QUB trip."""
        codes, selector = self.route(x)
        return codes << self._shift[selector]

    def store_load(self, x: np.ndarray) -> np.ndarray:
        """Store-then-reload through the SFU path: quantize, decode, scale.

        Bit-identical to ``encode_tensor(x, bits, params).to_float()``
        (same float operation order: ``D * 2^n_sh`` then ``* base_delta``).
        """
        codes, selector = self.route(x)
        return (codes.astype(np.float64) * self._pow2[selector]) * self.base_delta

    @property
    def lut(self) -> np.ndarray:
        """Decode LUT under this tap's registers.

        Dispatches through the kernel registry (op ``qub.decode_lut``):
        the process-wide shared cache by default — every consumer of one
        ``(registers, bits)`` pair (this encoder, the packed weight
        store) gathers from the same write-protected table, computed
        once — a fresh table under ``REPRO_KERNELS=reference``.
        """
        if self._lut is None:
            from ..kernels import get_kernel

            self._lut = get_kernel("qub.decode_lut")(self.registers, self.bits)
        return self._lut
