"""Pluggable serving backends for quantized inference.

Two implementations of one interface (:class:`ServingBackend`):

``float``
    :class:`FloatFakeQuantBackend` — the historical path: the model's own
    forward pass with fake-quantization simulated in float and cached
    pre-quantized weights.
``int``
    :class:`IntNativeBackend` — batched integer-native execution: QUB
    bit-packed weight storage (:class:`PackedWeightStore`), fused
    quantize→encode activation kernels (:class:`FusedEncoder`), int64
    GEMMs, and vectorized integer SFUs — attested bit-exact against the
    reference :class:`repro.hw.executor.ModelExecutor` by
    :func:`attest_int_backend`.

The serve registry picks a backend per model spec (``.../int`` suffix)
and the engine dispatches through it uniformly; see DESIGN.md for the
selection and parity story.
"""

from .attest import attest_int_backend
from .base import BACKEND_NAMES, ServingBackend
from .float_backend import FloatFakeQuantBackend
from .int_backend import IntNativeBackend
from .kernels import FusedEncoder, decode_lut
from .packed import PackedWeight, PackedWeightStore, iter_linear_weight_taps
from .sfu import v_i_exp, v_i_gelu, v_i_layernorm, v_i_softmax, v_i_sqrt

__all__ = [
    "BACKEND_NAMES",
    "ServingBackend",
    "FloatFakeQuantBackend",
    "IntNativeBackend",
    "FusedEncoder",
    "decode_lut",
    "PackedWeight",
    "PackedWeightStore",
    "iter_linear_weight_taps",
    "attest_int_backend",
    "make_backend",
    "v_i_exp",
    "v_i_gelu",
    "v_i_layernorm",
    "v_i_softmax",
    "v_i_sqrt",
]


def make_backend(name: str, model, pipeline, bits: int | None = None) -> ServingBackend:
    """Build the backend ``name`` (``"float"`` or ``"int"``) for a model."""
    if name == "float":
        return FloatFakeQuantBackend(model, pipeline)
    if name == "int":
        return IntNativeBackend(model, pipeline, bits=bits)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
