"""Integer-native serving backend: batched QUA kernels, packed weights.

Runs a calibrated QUQ model the way the accelerator would — activations
quantize through the fused four-slot kernels into shifted integers, every
GEMM is an int64 matmul against QUB-packed weights decoded by LUT, and
requantization is the Eq. (6)-(7) shift/scale — while staying bit-exact
with the reference :class:`repro.hw.executor.ModelExecutor` (attested in
:mod:`repro.backend.attest` and in the perf benchmark).

Differences from the reference executor are purely mechanical:

* weights are encoded and bit-packed **once** at build time
  (:class:`~repro.backend.packed.PackedWeightStore`) instead of
  re-encoded from float on every call — the memory story;
* activation taps reuse precomputed :class:`~repro.backend.kernels.FusedEncoder`
  tables instead of re-deriving registers per tensor — the latency story;
* the integer SFU variants dispatch through the kernel registry to the
  vectorized kernels of :mod:`repro.backend.sfu` (exact-equal to the
  :mod:`repro.hw.int_sfu` references, which ``REPRO_KERNELS=reference``
  restores).

The float special functions (LayerNorm / Softmax / GELU over decoded
values) replicate the executor's expressions operation for operation, so
``predict`` reproduces ``ModelExecutor.run`` to the last bit in both SFU
modes.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from ..autograd import Tensor, no_grad
from ..kernels import fused_encoder, get_kernel
from ..quant.qmodel import PTQPipeline
from ..quant.quq import QUQQuantizer
from .base import ServingBackend
from .kernels import FusedEncoder
from .packed import PackedWeightStore

__all__ = ["IntNativeBackend"]


class IntNativeBackend(ServingBackend):
    """Batched integer inference over a calibrated QUQ pipeline."""

    name = "int"

    def __init__(self, model, pipeline: PTQPipeline, bits: int | None = None,
                 integer_sfu: bool = False):
        if not pipeline.calibrated:
            raise RuntimeError("pipeline must be calibrated first")
        if pipeline.method != "quq":
            raise ValueError("the int backend requires a QUQ-calibrated pipeline")
        for attribute in ("patch_embed", "blocks", "cls_token", "pos_embed", "head"):
            if getattr(model, attribute, None) is None:
                raise ValueError(
                    "the int backend runs ViT/DeiT models; "
                    f"{type(model).__name__} has no {attribute!r}"
                )
        self.model = model
        self.pipeline = pipeline
        self.bits = pipeline.bits if bits is None else bits
        self.integer_sfu = integer_sfu
        self._prefix = model.config.name
        self._encoders: dict[str, FusedEncoder] = {}
        self.weights = PackedWeightStore.from_pipeline(model, pipeline, self.bits)
        self._batches = 0
        self._gemm_calls = 0
        self._sfu_calls = 0

    # ------------------------------------------------------------------
    def _encoder(self, tap: str) -> FusedEncoder:
        encoder = self._encoders.get(tap)
        if encoder is None:
            quantizer = self.pipeline.quantizer_for(f"{self._prefix}.{tap}")
            if not isinstance(quantizer, QUQQuantizer):
                raise TypeError(f"tap {tap} is not QUQ-quantized")
            # Shared process-wide memo (registry op ``qub.encode``'s fast
            # variant): replicas serving the same calibration reuse one
            # encoder's tables instead of rebuilding them per backend.
            encoder = fused_encoder(quantizer.params, self.bits)
            self._encoders[tap] = encoder
        return encoder

    def _record(self, recorder, tap: str, values: np.ndarray) -> None:
        if recorder is not None:
            # Pre-quantization values, same as the float path's tap hook,
            # so drift fingerprints compare like with like.
            recorder.record(f"{self._prefix}.{tap}", values)

    def _store_load(self, values: np.ndarray, tap: str, recorder) -> np.ndarray:
        self._record(recorder, tap, values)
        self._sfu_calls += 1
        return self._encoder(tap).store_load(values)

    def _linear(self, values: np.ndarray, tap_in: str, layer, recorder) -> np.ndarray:
        shape = values.shape
        flat = values.reshape(-1, shape[-1])
        self._record(recorder, tap_in, flat)
        encoder = self._encoder(tap_in)
        weight_tap = f"{self._prefix}.{tap_in.rsplit('.', 1)[0]}.weight"
        weight = self.weights[weight_tap]
        acc = get_kernel("gemm.int")(encoder.shifted(flat), weight.shifted())
        self._gemm_calls += 1
        out = acc.astype(np.float64) * (encoder.base_delta * weight.base_delta)
        if layer.bias is not None:
            out = out + layer.bias.data
        return out.reshape(*shape[:-1], -1)

    # ------------------------------------------------------------------
    # Integer SFU paths dispatch through the kernel registry (vectorized
    # kernels by default, scalar references under REPRO_KERNELS=reference;
    # exact-integer-equal either way).
    def _layernorm(self, values: np.ndarray, weight, bias) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-14
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.layernorm")(
                q, scale, weight=weight, bias=bias, out_bits=12
            )
            return q_out * s_out
        mean = values.mean(axis=-1, keepdims=True)
        var = values.var(axis=-1, keepdims=True)
        return (values - mean) / np.sqrt(var + 1e-6) * weight + bias

    def _softmax(self, values: np.ndarray) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-10
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.softmax")(q, scale, out_bits=16)
            return q_out * s_out
        shifted = values - values.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def _gelu(self, values: np.ndarray) -> np.ndarray:
        if self.integer_sfu:
            scale = 2.0**-10
            q = np.rint(values / scale).astype(np.int64)
            q_out, s_out = get_kernel("sfu.gelu")(q, scale)
            return q_out * s_out
        return values * 0.5 * (1.0 + erf(values / np.sqrt(2.0)))

    # ------------------------------------------------------------------
    def _run_block(self, x: np.ndarray, block, index: int, recorder) -> np.ndarray:
        attn = block.attn
        b, n, c = x.shape
        heads, head_dim = attn.num_heads, attn.head_dim
        tap = f"blocks.{index}"

        x = self._store_load(x, f"{tap}.block_input", recorder)

        normed = self._layernorm(x, block.norm1.weight.data, block.norm1.bias.data)
        qkv = self._linear(normed, f"{tap}.attn.qkv.input", attn.qkv, recorder)
        qkv = qkv.reshape(b, n, 3, heads, head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]

        self._record(recorder, f"{tap}.attn.q", q)
        self._record(recorder, f"{tap}.attn.k", k)
        enc_q = self._encoder(f"{tap}.attn.q")
        enc_k = self._encoder(f"{tap}.attn.k")
        acc = get_kernel("gemm.int")(
            enc_q.shifted(q), np.swapaxes(enc_k.shifted(k), -1, -2)
        )
        self._gemm_calls += 1
        scores = acc * (enc_q.base_delta * enc_k.base_delta) * attn.scale
        scores = self._store_load(scores, f"{tap}.attn.scores", recorder)

        probs = self._softmax(scores)
        self._record(recorder, f"{tap}.attn.probs", probs)
        self._record(recorder, f"{tap}.attn.v", v)
        enc_p = self._encoder(f"{tap}.attn.probs")
        enc_v = self._encoder(f"{tap}.attn.v")
        ctx_acc = get_kernel("gemm.int")(enc_p.shifted(probs), enc_v.shifted(v))
        self._gemm_calls += 1
        ctx = ctx_acc * (enc_p.base_delta * enc_v.base_delta)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, n, c)

        attn_out = self._linear(ctx, f"{tap}.attn.proj.input", attn.proj, recorder)
        attn_out = self._store_load(attn_out, f"{tap}.attn_residual", recorder)
        x = x + attn_out

        x = self._store_load(x, f"{tap}.mid_input", recorder)
        normed = self._layernorm(x, block.norm2.weight.data, block.norm2.bias.data)
        hidden = self._linear(normed, f"{tap}.mlp.fc1.input", block.mlp.fc1, recorder)
        hidden = self._store_load(hidden, f"{tap}.mlp.act.input", recorder)
        hidden = self._gelu(hidden)
        mlp_out = self._linear(hidden, f"{tap}.mlp.fc2.input", block.mlp.fc2, recorder)
        mlp_out = self._store_load(mlp_out, f"{tap}.mlp_residual", recorder)
        return x + mlp_out

    def predict(self, images: np.ndarray, recorder=None) -> np.ndarray:
        """Logits for a batch; mirrors ``ModelExecutor.run`` exactly."""
        self._batches += 1
        model = self.model
        batch = np.asarray(images).shape[0]
        from ..autograd.ops import unfold_patches

        with no_grad():
            windows = unfold_patches(Tensor(images), model.patch_embed.patch_size).data
        tokens = self._linear(
            windows.astype(np.float64),
            "patch_embed.proj.input",
            model.patch_embed.proj,
            recorder,
        )

        specials = [np.broadcast_to(model.cls_token.data, (batch, 1, tokens.shape[-1]))]
        if model.dist_token is not None:
            specials.append(
                np.broadcast_to(model.dist_token.data, (batch, 1, tokens.shape[-1]))
            )
        tokens = np.concatenate(specials + [tokens], axis=1)
        tokens = tokens + model.pos_embed.data

        for index, block in enumerate(model.blocks):
            tokens = self._run_block(tokens, block, index, recorder)

        tokens = self._store_load(tokens, "final_norm_input", recorder)
        mean = tokens.mean(axis=-1, keepdims=True)
        var = tokens.var(axis=-1, keepdims=True)
        normed = (tokens - mean) / np.sqrt(var + 1e-6)
        normed = normed * model.norm.weight.data + model.norm.bias.data

        logits = self._linear(normed[:, 0], "head.input", model.head, recorder)
        if model.head_dist is not None:
            dist = self._linear(normed[:, 1], "head_dist.input", model.head_dist, recorder)
            logits = 0.5 * (logits + dist)
        return logits

    # ------------------------------------------------------------------
    def memory_info(self) -> dict:
        return self.weights.summary()

    def counters(self) -> dict:
        return {
            "batches_total": self._batches,
            "int_gemm_calls": self._gemm_calls,
            "int_sfu_calls": self._sfu_calls,
        }
