"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .init import trunc_normal, zeros
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with weight shape ``(in, out)``.

    The weight is stored input-major so a GEMM on the accelerator maps
    directly onto ``x @ W`` without transposition.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(trunc_normal((in_features, out_features), rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.tap("weight", self.weight)
        x = self.tap("input", x)
        out = x @ weight
        if self.bias is not None:
            out = out + self.bias
        return out
