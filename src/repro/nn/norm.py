"""Layer normalization."""

from __future__ import annotations

from ..autograd import Tensor, layer_norm
from .init import ones, zeros
from .module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """LayerNorm over the last dimension with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(ones((dim,)))
        self.bias = Parameter(zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        # No tap here: in the transformer dataflow the LayerNorm input is
        # the same stored tensor as the residual stream, which the blocks
        # already tap (block_input / mid_input).  Standalone LayerNorms
        # (final norm, patch merging) tap explicitly at their call sites.
        return layer_norm(x, self.weight, self.bias, eps=self.eps)
