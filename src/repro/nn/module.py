"""Module system: parameter containers, submodule registration, taps.

Modules follow the familiar layer-object pattern: parameters and submodules
are registered automatically on attribute assignment, ``parameters()`` walks
the tree, and ``state_dict``/``load_state_dict`` serialize weights as plain
NumPy arrays (used to cache trained model zoo checkpoints).

Quantization taps
-----------------
The QUQ pipeline needs to observe and rewrite activations at named points in
the dataflow (the green and red arrows of Figure 1 in the paper).  Rather
than hard-wiring quantizers into layers, every model calls
``self.tap("name", x)`` at each dataflow point.  By default this is the
identity; attaching a :class:`TapDispatcher` (see
:mod:`repro.quant.qmodel`) reroutes those calls through observers or
fake-quantizers without touching model code.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module", "TapDispatcher", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor registered as a learnable weight of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class TapDispatcher:
    """Identity tap dispatcher; subclasses intercept named activations."""

    def tap(self, name: str, value: Tensor) -> Tensor:
        """Observe and/or transform the activation ``value`` at tap ``name``."""
        return value


_IDENTITY_DISPATCHER = TapDispatcher()


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self):
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_qualified_name", "")
        object.__setattr__(self, "_dispatcher", _IDENTITY_DISPATCHER)
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> list["Module"]:
        return [m for _, m in self.named_modules()]

    # ------------------------------------------------------------------
    # Mode switches
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Taps
    # ------------------------------------------------------------------
    def set_tap_dispatcher(self, dispatcher: TapDispatcher | None) -> None:
        """Attach (or detach, with ``None``) a tap dispatcher to the tree."""
        dispatcher = dispatcher or _IDENTITY_DISPATCHER
        for module in self.modules():
            object.__setattr__(module, "_dispatcher", dispatcher)

    def assign_tap_names(self, prefix: str = "") -> None:
        """Give every module its dotted path so taps are globally unique."""
        for name, module in self.named_modules(prefix=prefix):
            object.__setattr__(module, "_qualified_name", name)

    def tap(self, point: str, value: Tensor) -> Tensor:
        """Route activation ``value`` through the dispatcher at ``point``."""
        name = f"{self._qualified_name}.{point}" if self._qualified_name else point
        return self._dispatcher.tap(name, value)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of submodules registered under their indices."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output to the next module's input."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(self._items):
            setattr(self, str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
