"""Convolution layer (the paper's conclusion: QUQ extends beyond ViTs).

Implemented as im2col + Linear, the lowering an accelerator like the QUA
uses anyway: the inner projection's taps (``proj.weight`` / ``proj.input``)
are ordinary GEMM taps, so the whole PTQ pipeline (partial/full coverage,
every method) applies to CNNs unchanged.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, unfold_windows
from .linear import Linear
from .module import Module

__all__ = ["Conv2d", "GlobalAveragePool"]


class Conv2d(Module):
    """2-D convolution over ``(B, H, W, C)`` tensors (channels-last)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel_size/stride must be >= 1 and padding >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.proj = Linear(
            kernel_size * kernel_size * in_channels, out_channels, bias=bias, rng=rng
        )

    def output_size(self, size: int) -> int:
        return (size + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        b, h, w, c = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        windows = unfold_windows(x, self.kernel_size, self.stride, self.padding)
        out = self.proj(windows)
        return out.reshape(b, self.output_size(h), self.output_size(w), self.out_channels)


class GlobalAveragePool(Module):
    """Average over the spatial dims: ``(B, H, W, C) -> (B, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(1, 2))
