"""Patch embedding for vision transformers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, unfold_patches
from .linear import Linear
from .module import Module

__all__ = ["PatchEmbedding"]


class PatchEmbedding(Module):
    """Split ``(B, H, W, C)`` images into patches and project to ``dim``.

    Equivalent to the strided-convolution stem of ViT: patch extraction is
    a reshape, the projection is a Linear layer (so its weight/input flow
    through the standard quantization taps).
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        in_channels: int,
        dim: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if image_size % patch_size:
            raise ValueError(
                f"image size {image_size} not divisible by patch size {patch_size}"
            )
        self.image_size = image_size
        self.patch_size = patch_size
        self.grid_size = image_size // patch_size
        self.num_patches = self.grid_size**2
        self.proj = Linear(patch_size * patch_size * in_channels, dim, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        patches = unfold_patches(images, self.patch_size)
        return self.proj(patches)
