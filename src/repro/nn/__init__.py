"""Neural-network layer library built on :mod:`repro.autograd`."""

from .module import Module, ModuleList, Parameter, Sequential, TapDispatcher
from .linear import Linear
from .norm import LayerNorm
from .activations import GELU, Dropout, ReLU, Softmax
from .attention import Mlp, MultiHeadSelfAttention, TransformerBlock
from .conv import Conv2d, GlobalAveragePool
from .embedding import PatchEmbedding
from .losses import CrossEntropyLoss, cross_entropy
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "TapDispatcher",
    "Linear",
    "LayerNorm",
    "GELU",
    "Dropout",
    "ReLU",
    "Softmax",
    "Mlp",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "Conv2d",
    "GlobalAveragePool",
    "PatchEmbedding",
    "CrossEntropyLoss",
    "cross_entropy",
    "init",
]
