"""Weight initializers used by the transformer models.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["trunc_normal", "xavier_uniform", "zeros", "ones"]


def trunc_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    std: float = 0.02,
    bound: float = 2.0,
) -> np.ndarray:
    """Truncated normal init (the ViT/DeiT default), +/- ``bound`` sigma."""
    out = rng.normal(0.0, std, size=shape)
    limit = bound * std
    # Resample out-of-bound draws; a couple of rounds is enough in practice,
    # clip as a final guarantee.
    for _ in range(4):
        mask = np.abs(out) > limit
        if not mask.any():
            break
        out[mask] = rng.normal(0.0, std, size=int(mask.sum()))
    return np.clip(out, -limit, limit).astype(np.float32)


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform init for a ``(fan_in, fan_out)`` weight matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
