"""Attention and MLP blocks shared by the transformer models.

Every GEMM input and every hard-to-quantize activation boundary is routed
through a named tap (see :class:`repro.nn.module.Module.tap`), mirroring the
green/red dataflow arrows of Figure 1 in the QUQ paper:

* green (quantized even in *partial* quantization): Linear/MatMul inputs —
  ``qkv.input``, ``proj.input``, ``fc1.input``, ``fc2.input`` and the matmul
  operand taps ``q``, ``k``, ``v``, ``probs``;
* red (quantized only in *full* quantization): Softmax input ``scores``,
  GELU input (``act.input``), LayerNorm inputs and the residual-add
  operands (tapped at the block level in the model files).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, gelu, softmax
from .linear import Linear
from .module import Module
from .norm import LayerNorm

__all__ = ["MultiHeadSelfAttention", "Mlp", "TransformerBlock"]


class MultiHeadSelfAttention(Module):
    """Standard ViT multi-head self-attention.

    Stores the most recent attention probabilities in ``last_attention``
    (detached, shape ``(B, heads, N, N)``) for the attention-map analysis
    of Figure 7.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        qkv_bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = self.head_dim**-0.5
        self.qkv = Linear(dim, dim * 3, bias=qkv_bias, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.last_attention: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        b, n, c = x.shape
        qkv = self.qkv(x)
        qkv = qkv.reshape(b, n, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, heads, N, head_dim)
        q, k, v = qkv[0], qkv[1], qkv[2]

        q = self.tap("q", q)
        k = self.tap("k", k)
        scores = (q @ k.swapaxes(-1, -2)) * self.scale
        scores = self.tap("scores", scores)
        probs = softmax(scores, axis=-1)
        self.last_attention = probs.data.copy()
        probs = self.tap("probs", probs)

        v = self.tap("v", v)
        out = probs @ v  # (B, heads, N, head_dim)
        out = out.transpose(0, 2, 1, 3).reshape(b, n, c)
        return self.proj(out)


class Mlp(Module):
    """Transformer feed-forward block: Linear -> GELU -> Linear."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        hidden = self.tap("act.input", hidden)
        hidden = gelu(hidden)
        return self.fc2(hidden)


class TransformerBlock(Module):
    """Pre-norm transformer block: ``x + MSA(LN(x))`` then ``x + MLP(LN(x))``.

    The residual-add operands are tapped (``attn_residual`` / ``mlp_residual``
    for the branch outputs, ``block_input`` / ``mid_input`` for the stream)
    because the paper's *full* quantization covers the inputs of element-wise
    addition.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.tap("block_input", x)
        branch = self.attn(self.norm1(x))
        branch = self.tap("attn_residual", branch)
        x = x + branch
        x = self.tap("mid_input", x)
        branch = self.mlp(self.norm2(x))
        branch = self.tap("mlp_residual", branch)
        return x + branch
