"""Activation modules."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, gelu, relu, softmax
from .module import Module

__all__ = ["GELU", "ReLU", "Softmax", "Dropout"]


class GELU(Module):
    """Exact (erf-based) Gaussian error linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        x = self.tap("input", x)
        return gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class Softmax(Module):
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        x = self.tap("input", x)
        return softmax(x, axis=self.axis)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Takes an explicit generator at construction so training runs are
    reproducible.
    """

    def __init__(self, p: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)
