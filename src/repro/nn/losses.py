"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax

__all__ = ["cross_entropy", "CrossEntropyLoss"]


def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross entropy between ``(B, C)`` logits and integer targets."""
    targets = np.asarray(targets)
    batch, classes = logits.shape
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros((batch, classes), dtype=np.float32)
    one_hot[np.arange(batch), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / classes
    return -(log_probs * Tensor(one_hot)).sum() * (1.0 / batch)


class CrossEntropyLoss:
    """Callable wrapper for :func:`cross_entropy`."""

    def __init__(self, label_smoothing: float = 0.0):
        self.label_smoothing = label_smoothing

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets, label_smoothing=self.label_smoothing)
