"""Training and evaluation loops for the mini model zoo."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..data import SynthShapes, batches
from ..nn import Module, cross_entropy
from .optim import AdamW
from .schedule import cosine_warmup

__all__ = ["TrainConfig", "train_classifier", "evaluate_top1", "predict_logits"]


@dataclass
class TrainConfig:
    """Hyperparameters for one model-zoo training run."""

    epochs: int = 15
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 0.05
    warmup_epochs: int = 1
    label_smoothing: float = 0.0
    seed: int = 0
    log_every: int = 0  # batches between progress prints; 0 disables


def _loss_for(logits: Tensor, labels: np.ndarray, smoothing: float) -> Tensor:
    if logits.ndim == 3:  # DeiT training output: (B, 2, classes)
        cls_loss = cross_entropy(logits[:, 0], labels, label_smoothing=smoothing)
        dist_loss = cross_entropy(logits[:, 1], labels, label_smoothing=smoothing)
        return (cls_loss + dist_loss) * 0.5
    return cross_entropy(logits, labels, label_smoothing=smoothing)


def train_classifier(
    model: Module, train_set: SynthShapes, config: TrainConfig | None = None
) -> list[float]:
    """Train ``model`` on ``train_set``; returns per-epoch mean losses."""
    config = config or TrainConfig()
    optimizer = AdamW(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    steps_per_epoch = max(1, len(train_set) // config.batch_size)
    total_steps = steps_per_epoch * config.epochs
    warmup_steps = steps_per_epoch * config.warmup_epochs

    model.train()
    history: list[float] = []
    step = 0
    for epoch in range(config.epochs):
        losses: list[float] = []
        for i, (images, labels) in enumerate(
            batches(
                train_set, config.batch_size, shuffle=True,
                seed=config.seed + epoch, drop_last=True,
            )
        ):
            optimizer.lr = cosine_warmup(step, total_steps, config.lr, warmup_steps)
            logits = model(Tensor(images))
            loss = _loss_for(logits, labels, config.label_smoothing)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
            step += 1
            if config.log_every and (i + 1) % config.log_every == 0:
                print(f"epoch {epoch} batch {i + 1}: loss {np.mean(losses):.4f}")
        history.append(float(np.mean(losses)))
    model.eval()
    return history


def predict_logits(model: Module, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Inference-mode logits over an image array."""
    model.eval()
    outputs = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            chunk = Tensor(images[start : start + batch_size])
            outputs.append(model(chunk).data)
    return np.concatenate(outputs, axis=0)


def evaluate_top1(model: Module, dataset: SynthShapes, batch_size: int = 128) -> float:
    """Top-1 accuracy (percent) of ``model`` on ``dataset``."""
    logits = predict_logits(model, dataset.images, batch_size=batch_size)
    predictions = logits.argmax(axis=-1)
    return float(100.0 * np.mean(predictions == dataset.labels))
