"""Learning-rate schedules."""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_warmup"]


def cosine_warmup(
    step: int, total_steps: int, base_lr: float, warmup_steps: int = 0, min_lr: float = 0.0
) -> float:
    """Linear warmup followed by cosine decay to ``min_lr``."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    if step < warmup_steps:
        return base_lr * (step + 1) / max(1, warmup_steps)
    span = max(1, total_steps - warmup_steps)
    progress = min(1.0, (step - warmup_steps) / span)
    return min_lr + 0.5 * (base_lr - min_lr) * (1.0 + np.cos(np.pi * progress))
