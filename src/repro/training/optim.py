"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "AdamW"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and optional weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class AdamW(Optimizer):
    """Adam with decoupled weight decay (the ViT training default)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.05,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update
