"""Quantization-aware fine-tuning (extension experiment).

The paper is pure PTQ; the straight-through fake-quantization nodes the
pipeline inserts also make gradient-based recovery trivial: with the
pipeline attached, every forward runs quantized while gradients flow
unchanged, so a few epochs of fine-tuning let the weights adapt to the
quantization grid.  This module implements that loop and is exercised by
the QAT ablation bench, which shows it recovering most of the stress-point
(low-bit full-quantization) accuracy drop.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data import SynthShapes, batches
from ..nn import Module
from ..quant.qmodel import PTQPipeline
from .optim import AdamW
from .trainer import _loss_for

__all__ = ["quantization_aware_finetune"]


def quantization_aware_finetune(
    pipeline: PTQPipeline,
    train_set: SynthShapes,
    epochs: int = 2,
    batch_size: int = 64,
    lr: float = 2e-4,
    seed: int = 0,
    recalibrate_every: int = 0,
) -> list[float]:
    """Fine-tune the quantized model through the STE; returns epoch losses.

    The pipeline must be calibrated and attached.  Weight quantizers were
    fitted to the original weights; by default they are kept fixed (the
    weights adapt to the grid).  Set ``recalibrate_every=N`` to refit all
    quantizers from fresh calibration data every ``N`` epochs.
    """
    if not pipeline.calibrated:
        raise RuntimeError("calibrate the pipeline before fine-tuning")
    model: Module = pipeline.model
    pipeline.attach()
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.0)

    model.train()
    history: list[float] = []
    for epoch in range(epochs):
        losses = []
        for images, labels in batches(
            train_set, batch_size, shuffle=True, seed=seed + epoch, drop_last=True
        ):
            logits = model(Tensor(images))
            loss = _loss_for(logits, labels, smoothing=0.0)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        history.append(float(np.mean(losses)))
        if recalibrate_every and (epoch + 1) % recalibrate_every == 0:
            calib = train_set.subset(32, seed=seed).images
            pipeline.calibrate(calib)
    model.eval()
    return history
