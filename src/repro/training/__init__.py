"""Optimizers, schedules and training loops."""

from .optim import AdamW, Optimizer, SGD
from .schedule import cosine_warmup
from .trainer import TrainConfig, evaluate_top1, predict_logits, train_classifier
from .qat import quantization_aware_finetune

__all__ = [
    "AdamW",
    "Optimizer",
    "SGD",
    "cosine_warmup",
    "TrainConfig",
    "train_classifier",
    "evaluate_top1",
    "predict_logits",
    "quantization_aware_finetune",
]
