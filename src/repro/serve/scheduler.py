"""Dynamic micro-batching scheduler for single-image requests.

Requests arrive one image at a time; the quantized models (and the QUA
accelerator they simulate) amortize per-call overhead over batches, so the
scheduler coalesces the queue into NumPy batches under a
:class:`BatchPolicy`:

* dispatch when a full ``max_batch_size`` batch is waiting,
* or when the oldest queued request has waited ``max_wait_ms``,
* or immediately when the executor is idle (work conservation — a single
  request on an otherwise-idle system never stalls behind the batching
  timer; coalescing happens while the worker is busy with the previous
  batch).

Requests carry a **priority band** (:data:`PRIORITIES`: ``interactive``
> ``batch`` > ``best_effort``) and an optional **deadline**: the queue is
ordered earliest-deadline-first *within* priority bands (band first, then
deadline, then FIFO arrival), and a request whose deadline passes while
queued is failed fast with :class:`DeadlineExceededError` — never
silently served late.  Requests without a deadline still expire under the
policy-wide ``timeout_ms``.

Bounded queue with reject-with-reason backpressure, per-request timeouts
while queued, and an injectable clock so every policy decision is unit
testable without sleeping: :meth:`MicroBatchScheduler.poll` is a pure
state transition on (queue, now).
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .timing import DualDeadline

__all__ = [
    "PRIORITIES",
    "PRIORITY_BANDS",
    "DEFAULT_PRIORITY",
    "BatchPolicy",
    "Batch",
    "QueueFullError",
    "RequestTimeoutError",
    "DeadlineExceededError",
    "ServeRequest",
    "MicroBatchScheduler",
]

#: Priority bands, highest first.  The scheduler serves lower band
#: indices first; the admission ladder sheds higher band indices first.
PRIORITIES = ("interactive", "batch", "best_effort")
PRIORITY_BANDS = {name: index for index, name in enumerate(PRIORITIES)}
#: The band requests land in when the caller does not say — the middle
#: band, so unlabelled traffic neither preempts interactive work nor is
#: discarded with the best-effort tier.
DEFAULT_PRIORITY = "batch"


class QueueFullError(RuntimeError):
    """Backpressure rejection: the bounded queue cannot accept the request."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RequestTimeoutError(TimeoutError):
    """The request exceeded the policy timeout while waiting in the queue."""


class DeadlineExceededError(TimeoutError):
    """The request's own deadline passed before it could be served.

    Raised both for requests that expire while queued and for requests
    that complete after their deadline (late results are failed, never
    silently served).  ``reason`` matches the ``rejections_total`` label.
    """

    reason = "deadline"


@dataclass
class BatchPolicy:
    """Coalescing policy: how long and how wide batches may grow."""

    max_batch_size: int = 8
    max_wait_ms: float = 10.0
    max_queue: int = 64
    timeout_ms: float = 2000.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_wait_ms < 0 or self.timeout_ms <= 0:
            raise ValueError("max_wait_ms must be >= 0 and timeout_ms > 0")


class ServeRequest:
    """One queued image plus the completion slot its submitter waits on.

    Completion wakes waiters through a :class:`threading.Condition`, so
    :meth:`result` returns the moment the worker completes the request —
    latency is never quantized by a poll interval, which matters under
    load where thousands of submitters wait concurrently.
    """

    def __init__(self, payload: np.ndarray, enqueued_at: float,
                 priority: str = DEFAULT_PRIORITY,
                 deadline_at: float | None = None, seq: int = 0):
        self.payload = payload
        self.enqueued_at = enqueued_at
        self.priority = priority
        self.band = PRIORITY_BANDS.get(priority, PRIORITY_BANDS[DEFAULT_PRIORITY])
        self.deadline_at = deadline_at
        self.seq = seq  # submission order, the FIFO tie-break within a band
        self.dispatched_at: float | None = None
        self.completed_at: float | None = None
        self.expire_reason: str | None = None  # "timeout" | "deadline" once expired
        self._cond = threading.Condition()
        self._completed = False
        self._result = None
        self._error: BaseException | None = None

    def sort_key(self) -> tuple:
        """Queue order: priority band, then earliest deadline, then FIFO."""
        deadline = self.deadline_at if self.deadline_at is not None else math.inf
        return (self.band, deadline, self.seq)

    # ------------------------------------------------------------------
    # Completion is first-wins: a watchdog-abandoned worker finishing late,
    # or shutdown failing an already-completed request, must not overwrite
    # the outcome the submitter may already have observed.
    def set_result(self, result, now: float | None = None) -> None:
        with self._cond:
            if self._completed:
                return
            self._result = result
            self.completed_at = now
            self._completed = True
            self._cond.notify_all()

    def set_exception(self, error: BaseException, now: float | None = None) -> None:
        with self._cond:
            if self._completed:
                return
            self._error = error
            self.completed_at = now
            self._completed = True
            self._cond.notify_all()

    def done(self) -> bool:
        with self._cond:
            return self._completed

    def result(self, timeout: float | None = None):
        """Block until completion; raises the stored exception on failure."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._completed, timeout):
                raise TimeoutError("request not completed within wait timeout")
            if self._error is not None:
                raise self._error
            return self._result

    def exception(self) -> BaseException | None:
        with self._cond:
            return self._error if self._completed else None


@dataclass
class Batch:
    """A dispatched group of requests, stacked for the model."""

    requests: list[ServeRequest]
    created_at: float
    reason: str  # "full" | "timer" | "idle"
    images: np.ndarray = field(init=False)

    def __post_init__(self):
        self.images = np.stack([r.payload for r in self.requests])

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatchScheduler:
    """Coalesce single requests into batches under a :class:`BatchPolicy`.

    The queue is kept sorted by :meth:`ServeRequest.sort_key` (priority
    band, then deadline, then arrival), so batch assembly is a prefix
    slice and the head of the queue is always the most urgent request.
    The decision logic (:meth:`poll`, :meth:`expire_timeouts`,
    :meth:`next_event`) takes an explicit ``now`` so tests drive it with a
    fake clock; :meth:`wait_for_batch` is the blocking wrapper the engine's
    worker thread uses, built on the same primitives.
    """

    def __init__(self, policy: BatchPolicy | None = None, clock=time.monotonic,
                 on_expire=None):
        self.policy = BatchPolicy() if policy is None else policy
        self.clock = clock
        self._queue: list[ServeRequest] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self.timed_out: int = 0  # total requests expired while queued
        self.rejected: int = 0  # total submissions refused (queue full / closed)
        # Called once per expired request (after its exception is set),
        # with the scheduler lock held — must not re-enter the scheduler.
        # The engine uses it to count timeouts/deadline misses in its
        # rejection metrics; request.expire_reason says which it was.
        self._on_expire = on_expire

    # ------------------------------------------------------------------
    def submit(self, payload: np.ndarray, now: float | None = None,
               priority: str = DEFAULT_PRIORITY,
               deadline_ms: float | None = None) -> ServeRequest:
        """Enqueue one image; raises :class:`QueueFullError` on backpressure.

        ``priority`` must be a :data:`PRIORITIES` member; ``deadline_ms``
        (optional, relative to submit time) fails the request with
        :class:`DeadlineExceededError` if it cannot be served in time.
        """
        if priority not in PRIORITY_BANDS:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        with self._wakeup:
            now = self.clock() if now is None else now
            if self._closed:
                self.rejected += 1
                raise QueueFullError("scheduler is shut down")
            self._expire_locked(now)
            if len(self._queue) >= self.policy.max_queue:
                self.rejected += 1
                raise QueueFullError(
                    f"queue full ({len(self._queue)}/{self.policy.max_queue} "
                    f"requests waiting); retry later"
                )
            deadline_at = None if deadline_ms is None else now + deadline_ms / 1000.0
            request = ServeRequest(
                payload, enqueued_at=now, priority=priority,
                deadline_at=deadline_at, seq=self._seq,
            )
            self._seq += 1
            bisect.insort(self._queue, request, key=ServeRequest.sort_key)
            self._wakeup.notify_all()
            return request

    def qsize(self) -> int:
        with self._lock:
            return len(self._queue)

    def stats(self) -> dict:
        """Queued/timed-out/rejected counts read atomically under one lock.

        The engine's snapshot uses this so the three numbers describe the
        same instant — reading them through separate calls can interleave
        with a concurrent expiry and show a timeout that is in neither the
        queue count nor the timed-out count.
        """
        with self._lock:
            return {
                "queued": len(self._queue),
                "timed_out": self.timed_out,
                "rejected": self.rejected,
            }

    # ------------------------------------------------------------------
    def _expires_at(self, request: ServeRequest) -> float:
        """When the request dies in the queue: its own deadline or the
        policy timeout, whichever lands first."""
        timeout_at = request.enqueued_at + self.policy.timeout_ms / 1000.0
        if request.deadline_at is None:
            return timeout_at
        return min(timeout_at, request.deadline_at)

    def _expire_locked(self, now: float) -> list[ServeRequest]:
        expired = [r for r in self._queue if now >= self._expires_at(r)]
        if expired:
            self._queue = [r for r in self._queue if r not in expired]
            self.timed_out += len(expired)
            for request in expired:
                waited_ms = (now - request.enqueued_at) * 1000.0
                timeout_at = (
                    request.enqueued_at + self.policy.timeout_ms / 1000.0
                )
                if request.deadline_at is not None and request.deadline_at <= timeout_at:
                    request.expire_reason = "deadline"
                    error: BaseException = DeadlineExceededError(
                        f"deadline passed after {waited_ms:.1f} ms in queue "
                        f"({request.priority} request); failed fast"
                    )
                else:
                    request.expire_reason = "timeout"
                    error = RequestTimeoutError(
                        f"timed out after {waited_ms:.1f} ms in queue "
                        f"(limit {self.policy.timeout_ms:.1f} ms)"
                    )
                request.set_exception(error, now=now)
                if self._on_expire is not None:
                    self._on_expire(request)
        return expired

    def expire_timeouts(self, now: float | None = None) -> list[ServeRequest]:
        """Fail-and-remove every queued request past its deadline."""
        with self._lock:
            return self._expire_locked(self.clock() if now is None else now)

    def _poll_locked(self, now: float, idle: bool) -> Batch | None:
        self._expire_locked(now)
        if not self._queue:
            return None  # timer fired on an empty queue: nothing to flush
        oldest = min(r.enqueued_at for r in self._queue)
        if len(self._queue) >= self.policy.max_batch_size:
            reason = "full"
        elif now - oldest >= self.policy.max_wait_ms / 1000.0:
            reason = "timer"
        elif idle:
            reason = "idle"
        else:
            return None
        take = self._queue[: self.policy.max_batch_size]
        self._queue = self._queue[self.policy.max_batch_size:]
        for request in take:
            request.dispatched_at = now
        return Batch(take, created_at=now, reason=reason)

    def poll(self, now: float | None = None, idle: bool = False) -> Batch | None:
        """Return the next batch if one is due at ``now``, else ``None``.

        ``idle=True`` means no batch is currently executing, which enables
        the immediate single-request path.
        """
        with self._lock:
            return self._poll_locked(self.clock() if now is None else now, idle)

    def next_event(self, now: float | None = None) -> float | None:
        """Seconds until the next flush or expiry is due (None if empty)."""
        with self._lock:
            now = self.clock() if now is None else now
            if not self._queue:
                return None
            oldest = min(r.enqueued_at for r in self._queue)
            flush_at = oldest + self.policy.max_wait_ms / 1000.0
            expire_at = min(self._expires_at(r) for r in self._queue)
            return max(0.0, min(flush_at, expire_at) - now)

    # ------------------------------------------------------------------
    def wait_for_batch(self, timeout: float, idle: bool = True) -> Batch | None:
        """Block up to ``timeout`` seconds for a dispatchable batch.

        The timeout runs on the injected clock with an equal wall-clock
        cap (:class:`~repro.serve.timing.DualDeadline`), so a frozen fake
        clock cannot pin the calling worker thread forever.
        """
        deadline = DualDeadline(self.clock, timeout)
        with self._wakeup:
            while True:
                now = self.clock()
                batch = self._poll_locked(now, idle)
                if batch is not None:
                    return batch
                if self._closed or deadline.expired(now):
                    return None
                wait = deadline.remaining(now)
                if self._queue:
                    oldest = min(r.enqueued_at for r in self._queue)
                    next_due = oldest + self.policy.max_wait_ms / 1000.0 - now
                    wait = min(wait, max(next_due, 0.0))
                self._wakeup.wait(max(wait, 1e-4))

    def close(self) -> None:
        """Stop accepting work and fail everything still queued."""
        with self._wakeup:
            self._closed = True
            for request in self._queue:
                request.set_exception(QueueFullError("scheduler is shut down"))
            self._queue.clear()
            self._wakeup.notify_all()
