"""Admission control: keep the serving engine available by refusing work early.

Backpressure (the bounded queue) protects the engine only after latency
has already collapsed — by the time ``QueueFullError`` fires, every
queued request is eating the full queue delay.  The admission controller
sits in *front* of ``submit`` and decides per request whether to admit,
degrade, or refuse, so offered overload (a flash crowd, a runaway
tenant) turns into explicit, typed rejections instead of timeout storms:

* a **token bucket** bounds the global admitted rate
  (:class:`RateLimitedError`);
* **load shedding** watches queue depth and the live p99 end-to-end
  latency; past the shed threshold a deterministic credit accumulator
  drops the overload fraction (:class:`ShedError`), ramping from the
  shed threshold to the reject ceiling;
* **weighted fair queuing** decides *who* is shed: per-tenant admitted
  shares over a sliding window are compared against fair-queue weights,
  so a heavy-hitter tenant absorbs the shedding while light tenants ride
  through — with a **starvation guard** that always admits a tenant with
  no recent admissions;
* a **degrade ladder** escalates with pressure and is wired into the
  lane's circuit-breaker state: ``shed`` (level 1) → ``shed + force the
  float fallback path`` (level 2, cheap requests only — mirrors the
  breaker's degraded-but-available stance) → ``reject`` (level 3, only
  starvation-guard admits survive); an open breaker under pressure
  rejects outright with reason ``breaker_open``;
* shedding is **priority-banded** (lowest band first): ``best_effort``
  absorbs double the shed fraction and is dropped outright from level 2;
  ``batch`` (the default band) sheds at the legacy credit fraction;
  ``interactive`` rides through untouched until the level-3 reject
  ceiling.  Each band has its own deterministic credit accumulator so
  one band's traffic cannot consume another band's drop credit.

Every decision is a pure function of (tenant, priority, lane view, now)
on an injected clock, so the whole ladder is unit-testable without load.
The engines translate refusals into ``rejections_total{reason=...}``
counters; :data:`REJECT_REASONS` enumerates the full label set.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..resilience.breaker import CLOSED, OPEN
from .scheduler import DEFAULT_PRIORITY, PRIORITIES, PRIORITY_BANDS

__all__ = [
    "REJECT_REASONS",
    "ShedError",
    "RateLimitedError",
    "BreakerOpenError",
    "AdmissionError",
    "AdmissionPolicy",
    "TokenBucket",
    "FairShareTracker",
    "LaneView",
    "Decision",
    "AdmissionController",
]

#: Every reason label the engines may attach to a refused or expired
#: request.  ``queue_full``, ``timeout``, and ``deadline`` come from the
#: scheduler; the other three are admission-controller verdicts.
REJECT_REASONS = (
    "queue_full", "timeout", "deadline", "shed", "rate_limited", "breaker_open",
)


class AdmissionError(RuntimeError):
    """Base class for admission refusals (typed, never silent)."""

    reason: str = "shed"


class ShedError(AdmissionError):
    """Load shedding refused the request (overload, not a full queue)."""

    reason = "shed"

    def __init__(self, message: str, level: int = 1):
        super().__init__(message)
        self.level = level


class RateLimitedError(AdmissionError):
    """The token bucket is empty: offered rate exceeds the admitted rate."""

    reason = "rate_limited"


class BreakerOpenError(AdmissionError):
    """Overload while the lane's breaker is open: reject rather than pile on."""

    reason = "breaker_open"


@dataclass
class AdmissionPolicy:
    """Tunables for one :class:`AdmissionController`."""

    rate_limit_rps: float | None = None  # None disables the token bucket
    burst_s: float = 2.0  # bucket capacity in seconds of admitted rate
    shed_queue_fraction: float = 0.6  # depth/capacity where shedding starts
    degrade_queue_fraction: float = 0.8  # where force-float kicks in
    reject_queue_fraction: float = 0.95  # where only guarded admits survive
    p99_target_ms: float | None = None  # latency-derived shedding (None = off)
    p99_degrade_factor: float = 1.5  # p99 over target*this -> level 2
    p99_reject_factor: float = 2.5  # p99 over target*this -> level 3
    latency_refresh_s: float = 0.25  # p99 probe cache window
    tenant_weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0  # weight for tenants not in the table
    fair_window: int = 512  # sliding window of admissions for shares
    fairness_slack: float = 1.5  # admitted share may exceed fair share by this
    starvation_guard: int = 1  # min admits per window no shed may take away
    degrade_hold_s: float = 0.5  # how long a force-float verdict sticks

    def __post_init__(self):
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError(f"rate_limit_rps must be > 0, got {self.rate_limit_rps}")
        if self.burst_s <= 0:
            raise ValueError(f"burst_s must be > 0, got {self.burst_s}")
        fractions = (self.shed_queue_fraction, self.degrade_queue_fraction,
                     self.reject_queue_fraction)
        if not all(0.0 < f <= 1.0 for f in fractions):
            raise ValueError(f"queue fractions must be in (0, 1], got {fractions}")
        if not (self.shed_queue_fraction <= self.degrade_queue_fraction
                <= self.reject_queue_fraction):
            raise ValueError("queue fractions must be ordered shed <= degrade <= reject")
        if self.p99_target_ms is not None and self.p99_target_ms <= 0:
            raise ValueError(f"p99_target_ms must be > 0, got {self.p99_target_ms}")
        if not 1.0 <= self.p99_degrade_factor <= self.p99_reject_factor:
            raise ValueError("p99 factors must satisfy 1 <= degrade <= reject")
        if self.fair_window < 1 or self.starvation_guard < 0:
            raise ValueError("fair_window must be >= 1 and starvation_guard >= 0")
        if self.fairness_slack < 1.0:
            raise ValueError(f"fairness_slack must be >= 1, got {self.fairness_slack}")
        if any(w <= 0 for w in self.tenant_weights.values()) or self.default_weight <= 0:
            raise ValueError("tenant weights must be > 0")
        if self.latency_refresh_s < 0 or self.degrade_hold_s < 0:
            raise ValueError("latency_refresh_s and degrade_hold_s must be >= 0")


class TokenBucket:
    """Classic token bucket on an injected clock."""

    def __init__(self, rate: float, capacity: float, clock=time.monotonic):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be > 0")
        self.rate = rate
        self.capacity = capacity
        self.clock = clock
        self._tokens = capacity
        self._refilled_at: float | None = None
        self._lock = threading.Lock()

    def try_take(self, amount: float = 1.0, now: float | None = None) -> bool:
        with self._lock:
            now = self.clock() if now is None else now
            if self._refilled_at is None:
                self._refilled_at = now
            elapsed = max(0.0, now - self._refilled_at)
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._refilled_at = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def level(self) -> float:
        with self._lock:
            return self._tokens


class FairShareTracker:
    """Sliding window of admissions, giving per-tenant admitted shares."""

    def __init__(self, window: int):
        self._window: deque[str] = deque(maxlen=window)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, tenant: str) -> None:
        with self._lock:
            if len(self._window) == self._window.maxlen:
                evicted = self._window[0]
                remaining = self._counts.get(evicted, 1) - 1
                if remaining:
                    self._counts[evicted] = remaining
                else:
                    self._counts.pop(evicted, None)
            self._window.append(tenant)
            self._counts[tenant] = self._counts.get(tenant, 0) + 1

    def admitted(self, tenant: str) -> int:
        with self._lock:
            return self._counts.get(tenant, 0)

    def share(self, tenant: str) -> float:
        with self._lock:
            total = len(self._window)
            return self._counts.get(tenant, 0) / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))


@dataclass(frozen=True)
class LaneView:
    """What the controller sees of one lane at decision time."""

    queue_depth: int
    queue_capacity: int
    breaker_state: str = CLOSED  # repro.resilience.breaker state constant


@dataclass(frozen=True)
class Decision:
    """One admission verdict."""

    admitted: bool
    reason: str | None = None  # a REJECT_REASONS member when refused
    error: AdmissionError | None = None
    force_float: bool = False  # degrade ladder level 2: serve the float path
    level: int = 0  # ladder level the lane sat at (0..3)


class AdmissionController:
    """Stateful admission decisions for one engine (all lanes share it).

    Thread-safe: ``decide`` is called from every submitting thread.  The
    deterministic shed accumulator means the same request sequence on the
    same clock always produces the same admit/shed pattern — no RNG.
    """

    def __init__(self, policy: AdmissionPolicy | None = None, clock=time.monotonic,
                 p99_probe=None):
        self.policy = AdmissionPolicy() if policy is None else policy
        self.clock = clock
        # Optional zero-arg callable returning the live p99 end-to-end
        # latency in ms (the engine wires its e2e histogram in); cached
        # for latency_refresh_s so a submit storm does not recompute
        # percentiles per request.
        self._p99_probe = p99_probe
        self._p99_cached = 0.0
        self._p99_read_at: float | None = None
        self.bucket = None
        if self.policy.rate_limit_rps is not None:
            self.bucket = TokenBucket(
                rate=self.policy.rate_limit_rps,
                capacity=self.policy.rate_limit_rps * self.policy.burst_s,
                clock=clock,
            )
        self.fair = FairShareTracker(self.policy.fair_window)
        self._lock = threading.Lock()
        # One deterministic drop accumulator per priority band, so the
        # same band-wise request sequence always sheds the same requests
        # regardless of how other bands interleave.
        self._shed_credit = {name: 0.0 for name in PRIORITIES}
        self._level = 0  # last ladder level, for observability
        self.stats = {
            "admitted": 0,
            "shed": 0,
            "rate_limited": 0,
            "breaker_rejects": 0,
            "degraded_admits": 0,
            "starvation_admits": 0,
            "shed_by_band": {name: 0 for name in PRIORITIES},
        }

    # ------------------------------------------------------------------
    def attach_latency_probe(self, probe) -> None:
        """Late-bind the p99 probe (the engine builds the controller first)."""
        self._p99_probe = probe

    def _p99_ms(self, now: float) -> float:
        if self._p99_probe is None or self.policy.p99_target_ms is None:
            return 0.0
        if (
            self._p99_read_at is None
            or now - self._p99_read_at >= self.policy.latency_refresh_s
        ):
            try:
                self._p99_cached = float(self._p99_probe())
            except Exception:
                self._p99_cached = 0.0  # a broken probe must not block admits
            self._p99_read_at = now
        return self._p99_cached

    def weight_share(self, tenant: str) -> float:
        """Fair-queue share of ``tenant``: weight over total known weight.

        Tenants absent from the weight table count at ``default_weight``;
        the denominator covers the configured table plus every tenant the
        fair tracker has seen, so shares stay meaningful as tenants appear.
        """
        weights = dict(self.policy.tenant_weights)
        for seen in self.fair.snapshot():
            weights.setdefault(seen, self.policy.default_weight)
        weights.setdefault(tenant, self.policy.default_weight)
        total = sum(weights.values())
        return weights[tenant] / total if total else 1.0

    # ------------------------------------------------------------------
    def _ladder_level(self, lane: LaneView, p99_ms: float) -> int:
        p = self.policy
        depth_frac = lane.queue_depth / max(1, lane.queue_capacity)
        level = 0
        if depth_frac >= p.shed_queue_fraction:
            level = 1
        if depth_frac >= p.degrade_queue_fraction:
            level = 2
        if depth_frac >= p.reject_queue_fraction:
            level = 3
        if p.p99_target_ms is not None and p99_ms > 0:
            if p99_ms >= p.p99_target_ms * p.p99_reject_factor:
                level = max(level, 3)
            elif p99_ms >= p.p99_target_ms * p.p99_degrade_factor:
                level = max(level, 2)
            elif p99_ms >= p.p99_target_ms:
                level = max(level, 1)
        return level

    def _shed_fraction(self, level: int, lane: LaneView) -> float:
        """How much of the offered load to drop at this ladder level.

        Ramps with queue pressure inside the shed band so shedding starts
        gentle and saturates as the queue approaches the reject ceiling.
        """
        p = self.policy
        depth_frac = lane.queue_depth / max(1, lane.queue_capacity)
        span = max(1e-9, p.reject_queue_fraction - p.shed_queue_fraction)
        ramp = min(1.0, max(0.0, (depth_frac - p.shed_queue_fraction) / span))
        base = {1: 0.25, 2: 0.5, 3: 1.0}[level]
        return min(1.0, base + (1.0 - base) * ramp)

    def _band_shed_fraction(self, priority: str, level: int, lane: LaneView) -> float:
        """Band-weighted shed fraction: the lowest band is shed first.

        ``batch`` keeps the legacy ladder fraction unchanged (so the
        single-band behavior of earlier releases is the default band's
        behavior exactly); ``best_effort`` takes double that fraction and
        is dropped outright from level 2; ``interactive`` is untouched
        below the level-3 reject ceiling.
        """
        base = self._shed_fraction(level, lane)
        if priority == "interactive":
            return base if level >= 3 else 0.0
        if priority == "best_effort":
            return 1.0 if level >= 2 else min(1.0, 2.0 * base)
        return base

    def current_level(self) -> int:
        """Last ladder level computed by :meth:`decide` (0..3)."""
        with self._lock:
            return self._level

    def decide(self, tenant: str, lane: LaneView, now: float | None = None,
               priority: str = DEFAULT_PRIORITY) -> Decision:
        """Admit / degrade / refuse one ``priority``-band request from ``tenant``."""
        if priority not in PRIORITY_BANDS:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        now = self.clock() if now is None else now
        # Rate limit first: an over-rate tenant population should see
        # rate_limited, not shed, even under simultaneous queue pressure.
        if self.bucket is not None and not self.bucket.try_take(now=now):
            with self._lock:
                self.stats["rate_limited"] += 1
            return Decision(
                admitted=False, reason="rate_limited",
                error=RateLimitedError(
                    f"admitted rate limit {self.policy.rate_limit_rps:.1f} rps "
                    "exceeded; retry later"
                ),
                level=self._level,
            )
        p99_ms = self._p99_ms(now)
        level = self._ladder_level(lane, p99_ms)
        with self._lock:
            self._level = level
        if level == 0:
            return self._admit(tenant, level, force_float=False)

        # Overload while the quantized path is already broken: the float
        # fallback is carrying the lane alone, so do not pile load onto
        # it — reject (the breaker's open state escalates the ladder).
        if lane.breaker_state == OPEN:
            with self._lock:
                self.stats["breaker_rejects"] += 1
            return Decision(
                admitted=False, reason="breaker_open",
                error=BreakerOpenError(
                    "lane breaker open under overload; request rejected"
                ),
                level=level,
            )

        force_float = level >= 2
        starved = (
            self.policy.starvation_guard > 0
            and self.fair.admitted(tenant) < self.policy.starvation_guard
        )
        if starved:
            # The starvation guard outranks every shed verdict: a tenant
            # with no recent admissions gets through even at level 3.
            with self._lock:
                self.stats["starvation_admits"] += 1
            return self._admit(tenant, level, force_float)

        shed_fraction = self._band_shed_fraction(priority, level, lane)
        if shed_fraction >= 1.0:
            # Outright drop band: level 3 for everyone, level >= 2 for
            # best_effort.  No credit bookkeeping — nothing survives.
            return self._shed(tenant, level, priority)
        if shed_fraction <= 0.0:
            # Protected band (interactive below the reject ceiling):
            # admitted without touching the fairness or credit machinery,
            # though level-2 degraded admits still ride the float path.
            return self._admit(tenant, level, force_float)

        # Weighted fair queuing: tenants over their fair share absorb the
        # shedding before the deterministic credit drop touches anyone.
        share = self.fair.share(tenant)
        fair_share = self.weight_share(tenant)
        if share > fair_share * self.policy.fairness_slack:
            return self._shed(tenant, level, priority)

        with self._lock:
            credit = self._shed_credit[priority] + shed_fraction
            if credit >= 1.0:
                credit -= 1.0
                drop = True
            else:
                drop = False
            self._shed_credit[priority] = credit
        if drop:
            return self._shed(tenant, level, priority)
        return self._admit(tenant, level, force_float)

    def _admit(self, tenant: str, level: int, force_float: bool) -> Decision:
        self.fair.record(tenant)
        with self._lock:
            self.stats["admitted"] += 1
            if force_float:
                self.stats["degraded_admits"] += 1
        return Decision(admitted=True, force_float=force_float, level=level)

    def _shed(self, tenant: str, level: int,
              priority: str = DEFAULT_PRIORITY) -> Decision:
        with self._lock:
            self.stats["shed"] += 1
            self.stats["shed_by_band"][priority] += 1
        return Decision(
            admitted=False, reason="shed",
            error=ShedError(
                f"load shed at degrade level {level} "
                f"(tenant {tenant!r}, {priority} band); retry with backoff",
                level=level,
            ),
            level=level,
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            stats = dict(self.stats)
            stats["shed_by_band"] = dict(self.stats["shed_by_band"])
            level = self._level
        return {
            **stats,
            "level": level,
            "p99_ms_seen": round(self._p99_cached, 4),
            "bucket_tokens": round(self.bucket.level(), 2) if self.bucket else None,
            "window_admits": self.fair.snapshot(),
        }
