"""Batched inference serving runtime over calibrated PTQ models.

Turns the offline reproduction into a request-serving system:

* :mod:`repro.serve.registry` — named model artifacts (``vit_s/quq/6``),
  calibrated on first use, cached with LRU eviction, warm-started from
  serialized quantizer state across restarts.
* :mod:`repro.serve.scheduler` — dynamic micro-batching with bounded
  queues, per-request timeouts, and reject-with-reason backpressure.
* :mod:`repro.serve.engine` — worker threads running batches through the
  quantized model, degrading to the float model on artifact failure.
* :mod:`repro.serve.metrics` — counters, batch/queue distributions, and
  latency histograms exported as a JSON snapshot.
* :mod:`repro.serve.loadgen` — synthetic open-loop benchmark driver
  (``python -m repro serve-bench``).
* :mod:`repro.serve.drift` — activation-drift monitoring and online
  recalibration (fingerprint compare -> shadow recalibrate -> canary ->
  atomic swap).
* :mod:`repro.serve.admission` — admission control in front of submit:
  token-bucket rate limits, queue/p99-derived load shedding, weighted
  fair queuing with starvation guards, and a degrade ladder.
* :mod:`repro.serve.cluster` — sharded multi-process serving: replica
  worker processes per model over shared-memory rings, supervised
  (health checks, restarts, in-flight re-routing) by the parent.
* :mod:`repro.serve.traces` — seeded traffic traces (diurnal cycles,
  flash crowds, heavy-tailed tenant mixes, priority bands/deadlines)
  for the scale benchmark (``python -m repro scale-bench``), plus JSONL
  record/replay.
* :mod:`repro.serve.autoscaler` — elastic control plane: scales shard
  replicas between ``min_shards``/``max_shards`` on ladder/queue/ring
  pressure with hysteresis + cooldown, quarantines crash-looping specs
  to float fallback with exponential respawn backoff, and lends idle
  shard capacity to saturated lanes under a bounded borrow budget.
* :mod:`repro.serve.timing` — the shared dual-clock deadline helper
  (injected-clock timeout + wall-clock cap) behind every drain loop.
"""

from .metrics import Counter, Distribution, Gauge, Histogram, Metrics
from .drift import DriftOutcome, DriftPolicy, RecalibrationManager
from .scheduler import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    PRIORITY_BANDS,
    Batch,
    BatchPolicy,
    DeadlineExceededError,
    MicroBatchScheduler,
    QueueFullError,
    RequestTimeoutError,
    ServeRequest,
)
from .timing import DualDeadline, wait_until
from .registry import ModelKey, ModelRegistry, ServableModel
from .admission import (
    REJECT_REASONS,
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
    BreakerOpenError,
    RateLimitedError,
    ShedError,
)
from .engine import ServeEngine, ServeResult
from .cluster import ClusterEngine, ClusterPolicy
from .autoscaler import AutoscalePolicy, Autoscaler
from .traces import (
    TraceConfig,
    TraceEvent,
    generate_trace,
    load_trace,
    save_trace,
    tenant_mix,
    trace_stats,
)
from .loadgen import format_snapshot, run_serve_benchmark, synthetic_requests

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "Histogram",
    "Metrics",
    "Batch",
    "BatchPolicy",
    "DEFAULT_PRIORITY",
    "PRIORITIES",
    "PRIORITY_BANDS",
    "DeadlineExceededError",
    "DualDeadline",
    "wait_until",
    "MicroBatchScheduler",
    "QueueFullError",
    "RequestTimeoutError",
    "ServeRequest",
    "ModelKey",
    "ModelRegistry",
    "ServableModel",
    "ServeEngine",
    "ServeResult",
    "DriftOutcome",
    "DriftPolicy",
    "RecalibrationManager",
    "REJECT_REASONS",
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "BreakerOpenError",
    "RateLimitedError",
    "ShedError",
    "ClusterEngine",
    "ClusterPolicy",
    "AutoscalePolicy",
    "Autoscaler",
    "TraceConfig",
    "TraceEvent",
    "generate_trace",
    "load_trace",
    "save_trace",
    "tenant_mix",
    "trace_stats",
    "format_snapshot",
    "run_serve_benchmark",
    "synthetic_requests",
]
