"""Seeded traffic traces: diurnal cycles, flash crowds, tenant mixes.

Real serving load is nothing like a constant-rate Poisson stream: offered
traffic breathes with a diurnal cycle, spikes by integer multiples when a
flash crowd hits, and is shared by tenants whose demand is heavy-tailed
(a few tenants dominate, a long tail trickles).  The scale benchmark
(:mod:`repro.analysis.scale`) replays these traces open-loop against an
engine to measure exactly the regime admission control exists for —
offered load well past capacity.

Everything is derived from one seed through ``numpy``'s Generator, so a
trace is a pure function of its :class:`TraceConfig`: the same config
replays the same arrivals, tenants, and flash crowd on every run.
Arrivals are an inhomogeneous Poisson process, sampled per ``bin_s`` bin
with the instantaneous rate

``rate(t) = base_rate x (1 + A sin(2 pi t / period)) x flash(t)``

where ``flash(t)`` is ``flash_multiplier`` inside the crowd window and 1
outside.

Each arrival also carries a **priority band** and optional **deadline**
(sampled from ``priority_mix`` / ``band_deadline_ms`` with an rng stream
*separate* from the arrival stream, so adding bands never changes the
arrival times of an existing seed), and traces round-trip through JSONL
(:func:`save_trace` / :func:`load_trace`) so a recorded production trace
replays through the same harness as the synthetic generator
(``python -m repro scale-bench --trace FILE``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from .scheduler import DEFAULT_PRIORITY, PRIORITY_BANDS

__all__ = [
    "TraceConfig",
    "TraceEvent",
    "tenant_mix",
    "offered_rate",
    "generate_trace",
    "trace_stats",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One arrival: when it lands, who sent it, and how urgent it is.

    ``spec`` is optional routing for recorded traces that interleave
    multiple model specs; synthetic traces leave it ``None`` (the
    harness's configured spec applies).
    """

    at_s: float
    tenant: str
    priority: str = DEFAULT_PRIORITY
    deadline_ms: float | None = None
    spec: str | None = None


@dataclass
class TraceConfig:
    """Shape of one synthetic traffic trace (all rates in requests/s)."""

    duration_s: float = 8.0
    base_rate: float = 120.0  # steady-state offered load
    seed: int = 0
    bin_s: float = 0.05  # Poisson sampling resolution
    diurnal_amplitude: float = 0.35  # sinusoid swing as a fraction of base
    diurnal_period_s: float = 8.0
    flash_at: float = 0.45  # crowd start, as a fraction of the duration
    flash_len: float = 0.25  # crowd length, as a fraction of the duration
    flash_multiplier: float = 4.0  # offered-load multiple inside the crowd
    tenants: int = 4
    tenant_skew: float = 1.1  # Zipf exponent; 0 = uniform mix
    # Priority-band mix of the offered traffic; sampled from a *separate*
    # rng stream so the arrival times of a seed never depend on the mix.
    priority_mix: dict[str, float] = field(
        default_factory=lambda: {
            "interactive": 0.3, "batch": 0.5, "best_effort": 0.2,
        }
    )
    # Per-band deadline attached to sampled arrivals (None = no deadline).
    band_deadline_ms: dict[str, float] = field(
        default_factory=lambda: {"interactive": 1500.0}
    )

    def __post_init__(self):
        if self.duration_s <= 0 or self.base_rate <= 0 or self.bin_s <= 0:
            raise ValueError("duration_s, base_rate and bin_s must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be within [0, 1)")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be > 0")
        if not 0.0 <= self.flash_at <= 1.0 or not 0.0 <= self.flash_len <= 1.0:
            raise ValueError("flash_at and flash_len are fractions of the duration")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash_multiplier must be >= 1 (1 disables the crowd)")
        if self.tenants < 1 or self.tenant_skew < 0:
            raise ValueError("tenants must be >= 1 and tenant_skew >= 0")
        for band in list(self.priority_mix) + list(self.band_deadline_ms):
            if band not in PRIORITY_BANDS:
                raise ValueError(f"unknown priority band {band!r}")
        if not self.priority_mix:
            raise ValueError("priority_mix must not be empty")
        total = sum(self.priority_mix.values())
        if any(v < 0 for v in self.priority_mix.values()) or total <= 0:
            raise ValueError("priority_mix fractions must be >= 0 and sum > 0")
        if any(v <= 0 for v in self.band_deadline_ms.values()):
            raise ValueError("band_deadline_ms values must be > 0")

    @property
    def flash_window(self) -> tuple[float, float]:
        start = self.flash_at * self.duration_s
        return (start, min(self.duration_s, start + self.flash_len * self.duration_s))


def tenant_mix(config: TraceConfig) -> dict[str, float]:
    """Per-tenant offered-traffic fractions (Zipf-skewed, sums to 1).

    These double as the fair-queue weights the admission controller is
    configured with in the scale benchmark: each tenant is entitled to
    the share of capacity proportional to its long-run demand.
    """
    ranks = np.arange(1, config.tenants + 1, dtype=np.float64)
    weights = ranks ** -config.tenant_skew
    weights /= weights.sum()
    return {f"tenant-{i}": float(w) for i, w in enumerate(weights)}


def offered_rate(config: TraceConfig, t: float) -> float:
    """Instantaneous offered load (requests/s) at trace time ``t``."""
    diurnal = 1.0 + config.diurnal_amplitude * np.sin(
        2.0 * np.pi * t / config.diurnal_period_s
    )
    start, end = config.flash_window
    flash = config.flash_multiplier if start <= t < end else 1.0
    return float(config.base_rate * diurnal * flash)


def generate_trace(config: TraceConfig) -> list[TraceEvent]:
    """Sample the full arrival sequence for ``config`` (sorted by time)."""
    rng = np.random.default_rng(config.seed)
    mix = tenant_mix(config)
    names = list(mix)
    probs = np.array([mix[name] for name in names])
    events: list[TraceEvent] = []
    t = 0.0
    while t < config.duration_s:
        lam = offered_rate(config, t + config.bin_s / 2.0) * config.bin_s
        count = int(rng.poisson(lam))
        if count:
            offsets = rng.uniform(0.0, config.bin_s, size=count)
            tenants = rng.choice(len(names), size=count, p=probs)
            events.extend(
                TraceEvent(at_s=min(t + off, config.duration_s), tenant=names[k])
                for off, k in zip(offsets, tenants)
            )
        t += config.bin_s
    events.sort(key=lambda e: e.at_s)
    # Priority bands come from their own generator (seeded off the same
    # config seed but a distinct stream), so the arrival process above is
    # bit-identical to what the seed produced before bands existed.
    band_rng = np.random.default_rng([config.seed, 1])
    bands = sorted(config.priority_mix, key=lambda b: PRIORITY_BANDS[b])
    band_probs = np.array([config.priority_mix[b] for b in bands], dtype=np.float64)
    band_probs /= band_probs.sum()
    picks = band_rng.choice(len(bands), size=len(events), p=band_probs)
    return [
        TraceEvent(
            at_s=event.at_s,
            tenant=event.tenant,
            priority=bands[k],
            deadline_ms=config.band_deadline_ms.get(bands[k]),
        )
        for event, k in zip(events, picks)
    ]


def trace_stats(events: list[TraceEvent], config: TraceConfig) -> dict:
    """Summary of one sampled trace (JSON-serializable)."""
    per_tenant: dict[str, int] = {name: 0 for name in tenant_mix(config)}
    for event in events:
        per_tenant[event.tenant] = per_tenant.get(event.tenant, 0) + 1
    start, end = config.flash_window
    in_flash = sum(1 for e in events if start <= e.at_s < end)
    flash_rate = in_flash / (end - start) if end > start else 0.0
    steady = len(events) - in_flash
    steady_time = config.duration_s - (end - start)
    steady_rate = steady / steady_time if steady_time > 0 else 0.0
    per_band: dict[str, int] = {}
    for event in events:
        per_band[event.priority] = per_band.get(event.priority, 0) + 1
    return {
        "events": len(events),
        "duration_s": config.duration_s,
        "mean_rate_rps": round(len(events) / config.duration_s, 2),
        "steady_rate_rps": round(steady_rate, 2),
        "flash_rate_rps": round(flash_rate, 2),
        "flash_over_steady": round(flash_rate / steady_rate, 2) if steady_rate else 0.0,
        "flash_window_s": [round(start, 3), round(end, 3)],
        "per_tenant": per_tenant,
        "per_band": dict(sorted(per_band.items())),
    }


# ----------------------------------------------------------------------
# Recorded-trace round trip (JSONL: one arrival per line)
def save_trace(events: list[TraceEvent], path) -> None:
    """Write a trace as JSONL — one ``TraceEvent`` per line, ``None``
    fields omitted, so recorded and synthetic traces share a format."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            row = {k: v for k, v in asdict(event).items() if v is not None}
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def load_trace(path) -> list[TraceEvent]:
    """Load a JSONL trace; validates fields and returns time-sorted events."""
    events: list[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({error})")
            if "at_s" not in row or "tenant" not in row:
                raise ValueError(f"{path}:{lineno}: needs at_s and tenant fields")
            priority = row.get("priority", DEFAULT_PRIORITY)
            if priority not in PRIORITY_BANDS:
                raise ValueError(
                    f"{path}:{lineno}: unknown priority {priority!r}"
                )
            deadline_ms = row.get("deadline_ms")
            if deadline_ms is not None and float(deadline_ms) <= 0:
                raise ValueError(f"{path}:{lineno}: deadline_ms must be > 0")
            events.append(TraceEvent(
                at_s=float(row["at_s"]),
                tenant=str(row["tenant"]),
                priority=priority,
                deadline_ms=None if deadline_ms is None else float(deadline_ms),
                spec=row.get("spec"),
            ))
    events.sort(key=lambda e: e.at_s)
    return events
