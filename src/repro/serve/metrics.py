"""Serving metrics: counters, distributions, and latency histograms.

Everything here is plain Python + NumPy and thread-safe under one lock per
instrument, so the scheduler, worker threads, and the load generator can
record concurrently.  :meth:`Metrics.snapshot` renders the whole registry
as a JSON-serializable dict — the interface the CLI prints and the
benchmarks persist.
"""

from __future__ import annotations

import json
import threading

import numpy as np

__all__ = ["Counter", "Distribution", "Gauge", "Histogram", "Metrics"]


def _labelled(name: str, labels: dict | None) -> str:
    """Canonical instrument name with sorted Prometheus-style labels."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter."""

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value that can move both ways (e.g. live shard count)."""

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Distribution:
    """Counts per discrete integer value (e.g. dispatched batch sizes)."""

    def __init__(self):
        self._counts: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: int) -> None:
        with self._lock:
            self._counts[int(value)] = self._counts.get(int(value), 0) + 1

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {str(k): v for k, v in sorted(self._counts.items())}


class Histogram:
    """Latency histogram with exact quantiles over a bounded reservoir.

    Keeps up to ``max_samples`` observations; beyond that, reservoir
    sampling (deterministic seed) keeps an unbiased subsample while count,
    sum, min, and max stay exact.  Serving runs here are small enough that
    the reservoir is rarely exercised, so quantiles are usually exact too.

    :meth:`snapshot` fields describe two different populations:

    * ``count``/``mean``/``min``/``max`` — the **full stream** of every
      value ever observed (since construction or the last :meth:`reset`).
      Min and max are tracked alongside sum/count, so they are exact even
      after reservoir eviction has dropped the extreme samples.
    * ``p50``/``p95``/``p99`` — the **reservoir subsample** only.  Once
      ``count`` exceeds ``max_samples`` these are unbiased estimates, not
      exact stream quantiles.

    The two populations coincide while ``count <= max_samples``.
    """

    def __init__(self, max_samples: int = 65536, seed: int = 0):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._rng = np.random.default_rng(seed)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                slot = int(self._rng.integers(0, self._count))
                if slot < self._max_samples:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    def reset(self) -> None:
        """Drop all state: stream statistics and the reservoir alike."""
        with self._lock:
            self._samples.clear()
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def percentile(self, q: float) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(self._samples, q))

    def snapshot(self) -> dict[str, float]:
        """See the class docstring for which population each field covers:
        count/mean/min/max are exact over the full stream; the percentiles
        come from the reservoir subsample."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            if self._samples:
                p50, p95, p99 = (
                    float(p)
                    for p in np.percentile(self._samples, (50, 95, 99))
                )
            else:
                # count > 0 with an empty reservoir cannot happen through
                # observe()/reset(); degrade to the stream mean rather
                # than reporting quantiles of nothing as zero.
                p50 = p95 = p99 = self._sum / self._count
            return {
                "count": self._count,
                "mean": round(self._sum / self._count, 4),
                "min": round(self._min, 4),
                "max": round(self._max, 4),
                "p50": round(p50, 4),
                "p95": round(p95, 4),
                "p99": round(p99, 4),
            }


class Metrics:
    """Named registry of counters, distributions, and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._distributions: dict[str, Distribution] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        with self._lock:
            return self._counters.setdefault(_labelled(name, labels), Counter())

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(_labelled(name, labels), Gauge())

    def distribution(self, name: str, labels: dict | None = None) -> Distribution:
        with self._lock:
            return self._distributions.setdefault(_labelled(name, labels), Distribution())

    def histogram(self, name: str, labels: dict | None = None) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(_labelled(name, labels), Histogram())

    def snapshot(self, extra: dict | None = None) -> dict:
        """JSON-serializable view of every instrument (plus ``extra``)."""
        with self._lock:
            counters = dict(self._counters)
            distributions = dict(self._distributions)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        out: dict = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "distributions": {
                name: d.snapshot() for name, d in sorted(distributions.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
        }
        if extra:
            out.update(extra)
        return out

    def to_json(self, extra: dict | None = None) -> str:
        return json.dumps(self.snapshot(extra), indent=2, sort_keys=True)
