"""Dual-clock deadlines: injected-clock timeouts with a wall-clock cap.

Every blocking loop in the serving layer measures its timeout on the
*injected* engine clock so fake-clock tests can drive the deadline
deterministically — but a clock that never advances (or advances only
when a test steps it) must not be able to spin a real thread forever.
The pattern is therefore always the same pair of deadlines: one on the
injected clock, one on ``time.monotonic`` as a real-time safety bound.

Before this module the pair was hand-copied into
:meth:`ServeEngine.drain`, :meth:`ClusterEngine.drain`, and
:meth:`MicroBatchScheduler.wait_for_batch`, and the three copies had
already begun to drift (the scheduler's copy had no wall cap at all).
:class:`DualDeadline` is the single implementation; the drain loops go
through :func:`wait_until`.
"""

from __future__ import annotations

import time

__all__ = ["DualDeadline", "wait_until"]


class DualDeadline:
    """A timeout on an injected clock, capped by real elapsed time.

    ``timeout`` is measured on ``clock`` (the engine's injected clock, so
    fake-clock tests can expire it by stepping the clock); ``wall_cap``
    (default: ``timeout``) is measured on ``time.monotonic`` so a frozen
    or slow-stepping clock cannot hold a real thread hostage.  The
    deadline expires when *either* bound is reached.
    """

    def __init__(self, clock, timeout: float, wall_cap: float | None = None):
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        if wall_cap is not None and wall_cap < 0:
            raise ValueError(f"wall_cap must be >= 0, got {wall_cap}")
        self._clock = clock
        self._deadline = clock() + timeout
        self._wall_deadline = time.monotonic() + (
            timeout if wall_cap is None else wall_cap
        )

    def expired(self, now: float | None = None) -> bool:
        """True once the clock deadline or the wall cap has been reached."""
        now = self._clock() if now is None else now
        return now >= self._deadline or time.monotonic() >= self._wall_deadline

    def remaining(self, now: float | None = None) -> float:
        """Seconds left before expiry — the tighter of the two bounds.

        The clock bound is measured on the injected clock, the wall bound
        on real time; a condition wait sized by this value therefore
        wakes in time for whichever deadline lands first.
        """
        now = self._clock() if now is None else now
        clock_left = self._deadline - now
        wall_left = self._wall_deadline - time.monotonic()
        return max(0.0, min(clock_left, wall_left))


def wait_until(predicate, clock, timeout: float, wall_cap: float | None = None,
               poll_s: float = 0.002) -> bool:
    """Poll ``predicate`` until it returns truthy or the deadline expires.

    The shared drain loop: returns ``True`` the moment ``predicate()``
    holds, ``False`` when the :class:`DualDeadline` built from
    ``(clock, timeout, wall_cap)`` expires first.  The predicate is
    always evaluated at least once, even with a zero timeout.
    """
    deadline = DualDeadline(clock, timeout, wall_cap)
    while True:
        if predicate():
            return True
        if deadline.expired():
            return False
        time.sleep(poll_s)
