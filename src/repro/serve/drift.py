"""Drift-aware serving: per-lane monitors and online recalibration.

Ties :mod:`repro.quant.drift` into the serving runtime.  Each quantized
lane gets a :class:`~repro.quant.drift.DriftMonitor` seeded with the
calibration fingerprints its :class:`~repro.serve.registry.ServableModel`
was built with, plus a bounded buffer of recent input images.  Every
batch feeds the monitor (the ``input`` pseudo-tap always; activation taps
via a sampled :class:`~repro.quant.drift.TapStatsRecorder`), and when
drift is *sustained* the :class:`RecalibrationManager` reacts:

1. **shadow recalibration** — a fresh model instance is loaded and its
   pipeline calibrated on the recent-input buffer
   (:meth:`~repro.serve.registry.ModelRegistry.shadow_build`) while the
   stale entry keeps serving;
2. **canary validation** — the candidate's quantized logits are checked
   against its own float path on held-out buffer images (finite, and
   top-1 agreement above the policy floor);
3. **atomic swap** — only a passing candidate is installed via
   :meth:`~repro.serve.registry.ModelRegistry.swap`; lanes resolve
   through ``registry.get`` every batch, so the next batch serves it;
4. **cooldown** — breaker-style: after any attempt (swap or reject) no
   new attempt starts until ``cooldown_s`` elapses on the injected
   clock, so a noisy monitor cannot flap the quantizer.

Everything is observable through the engine's metrics snapshot
(``drift_alerts_total``, ``recalibrations_total``,
``recalibration_swaps_total``, ``recalibration_rejects_total`` and the
per-lane ``drift`` section).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..quant.drift import (
    INPUT_TAP,
    DriftMonitor,
    DriftThresholds,
    DriftVerdict,
    TapStatsRecorder,
)
from .metrics import Metrics
from .registry import ModelKey, ModelRegistry, ServableModel

__all__ = ["DriftPolicy", "DriftOutcome", "RecalibrationManager"]


@dataclass
class DriftPolicy:
    """Tunables for drift monitoring and the recalibrate-swap reaction."""

    thresholds: DriftThresholds = field(default_factory=DriftThresholds)
    sample_every: int = 4  # attach the activation recorder every Nth batch
    buffer_size: int = 128  # recent input images retained per lane
    min_recalibration_images: int = 32  # buffer needed before acting
    canary_count: int = 16  # held-out buffer images for validation
    canary_agreement_floor: float = 0.7  # quantized-vs-float top-1 agreement
    cooldown_s: float = 60.0  # breaker-style pause between attempts

    def __post_init__(self):
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.canary_count < 1 or self.min_recalibration_images < 1:
            raise ValueError("canary_count and min_recalibration_images must be >= 1")
        if self.buffer_size < self.min_recalibration_images + self.canary_count:
            raise ValueError(
                "buffer_size must hold min_recalibration_images + canary_count "
                f"images, got {self.buffer_size}"
            )
        if not 0.0 <= self.canary_agreement_floor <= 1.0:
            raise ValueError("canary_agreement_floor must be within [0, 1]")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")


@dataclass
class DriftOutcome:
    """What one monitored batch led to."""

    verdict: DriftVerdict
    alerted: bool = False  # this batch entered the sustained state
    attempted: bool = False  # a recalibration attempt ran
    swapped: bool = False  # ... and the candidate passed canary + swapped
    rejected: bool = False  # ... or it failed and was discarded
    skip_reason: str | None = None  # sustained but no attempt (cooldown/buffer)


class _LaneDrift:
    """Per-lane monitor, buffer, and recalibration bookkeeping."""

    def __init__(self, servable: ServableModel, policy: DriftPolicy):
        self.servable = servable
        self.monitor = DriftMonitor(servable.fingerprints, policy.thresholds)
        self.buffer: deque[np.ndarray] = deque(maxlen=policy.buffer_size)
        self.lock = threading.Lock()
        self.batches = 0
        self.attempts = 0
        self.swaps = 0
        self.rejects = 0
        self.last_attempt_at: float | None = None
        self.last_canary_agreement: float | None = None


class RecalibrationManager:
    """Reacts to sustained drift with shadow recalibration and atomic swap."""

    def __init__(
        self,
        registry: ModelRegistry,
        policy: DriftPolicy | None = None,
        metrics: Metrics | None = None,
        clock=None,
    ):
        import time

        self.registry = registry
        self.policy = DriftPolicy() if policy is None else policy
        self.metrics = Metrics() if metrics is None else metrics
        self.clock = time.monotonic if clock is None else clock
        self._lanes: dict[ModelKey, _LaneDrift] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _state_for(self, key: ModelKey, servable: ServableModel) -> _LaneDrift | None:
        """The lane's drift state, rebound when the servable was replaced.

        Returns None for lanes that cannot be monitored (float fallback,
        fp32, or fingerprinting unavailable).
        """
        if not servable.quantized or not servable.fingerprints:
            return None
        with self._lock:
            state = self._lanes.get(key)
            if state is None or state.servable is not servable:
                fresh = _LaneDrift(servable, self.policy)
                if state is not None:
                    # Keep cross-swap bookkeeping so cooldown survives the
                    # swap (otherwise a swap re-arms itself immediately).
                    fresh.attempts = state.attempts
                    fresh.swaps = state.swaps
                    fresh.rejects = state.rejects
                    fresh.last_attempt_at = state.last_attempt_at
                    fresh.last_canary_agreement = state.last_canary_agreement
                self._lanes[key] = fresh
                state = fresh
            return state

    def recorder_for(
        self, key: ModelKey, servable: ServableModel
    ) -> TapStatsRecorder | None:
        """Activation-stats recorder for this batch, if it is a sampled one."""
        state = self._state_for(key, servable)
        if state is None:
            return None
        with state.lock:
            if state.batches % self.policy.sample_every == 0:
                return TapStatsRecorder(state.monitor)
            return None

    # ------------------------------------------------------------------
    def finish_batch(
        self, key: ModelKey, servable: ServableModel, images: np.ndarray
    ) -> DriftOutcome | None:
        """Fold one served batch into the lane's drift state and react.

        Called after the batch's logits were produced (on either path).
        Returns None when the lane is not monitored.  Recalibration runs
        synchronously on the calling worker thread — deterministic, and
        the stale entry keeps serving other lanes meanwhile.
        """
        state = self._state_for(key, servable)
        if state is None:
            return None
        spec = key.spec
        with state.lock:
            state.batches += 1
            state.monitor.observe(INPUT_TAP, images)
            alerts_before = state.monitor.alerts
            verdict = state.monitor.complete_batch()
            outcome = DriftOutcome(
                verdict, alerted=state.monitor.alerts > alerts_before
            )
            for image in np.asarray(images):
                state.buffer.append(np.array(image, dtype=np.float32))
            if outcome.alerted:
                self._inc("drift_alerts_total", spec)
            if not verdict.sustained:
                return outcome
            now = self.clock()
            if (
                state.last_attempt_at is not None
                and now - state.last_attempt_at < self.policy.cooldown_s
            ):
                outcome.skip_reason = "cooldown"
                return outcome
            needed = self.policy.min_recalibration_images + self.policy.canary_count
            if len(state.buffer) < needed:
                outcome.skip_reason = f"buffer {len(state.buffer)} < {needed}"
                return outcome
            state.last_attempt_at = now
            state.attempts += 1
            buffered = np.stack(list(state.buffer))
        # Shadow build outside the state lock: the lane keeps serving the
        # stale entry (registry.get) while the candidate calibrates.
        outcome.attempted = True
        self._inc("recalibrations_total", spec)
        swapped, agreement = self._recalibrate(key, buffered)
        with state.lock:
            state.last_canary_agreement = agreement
            if swapped:
                state.swaps += 1
                state.monitor.reset()
            else:
                state.rejects += 1
        outcome.swapped = swapped
        outcome.rejected = not swapped
        self._inc(
            "recalibration_swaps_total" if swapped else "recalibration_rejects_total",
            spec,
        )
        return outcome

    def _recalibrate(
        self, key: ModelKey, buffered: np.ndarray
    ) -> tuple[bool, float | None]:
        """Shadow-recalibrate on the buffer; swap only a canary-clean result."""
        canary = buffered[-self.policy.canary_count :]
        calib = buffered[: -self.policy.canary_count]
        try:
            candidate = self.registry.shadow_build(key, calib)
            quant_logits = candidate.predict(canary)
            float_logits = candidate.predict_float(canary)
            if not (np.isfinite(quant_logits).all() and np.isfinite(float_logits).all()):
                return False, None
            agreement = float(
                np.mean(quant_logits.argmax(axis=-1) == float_logits.argmax(axis=-1))
            )
            if agreement < self.policy.canary_agreement_floor:
                return False, agreement
            self.registry.swap(key, candidate)
            return True, agreement
        except Exception:
            return False, None

    # ------------------------------------------------------------------
    def _inc(self, name: str, spec: str) -> None:
        self.metrics.counter(name).inc()
        self.metrics.counter(name, labels={"spec": spec}).inc()

    def snapshot(self) -> dict:
        """JSON-serializable per-lane drift state for the metrics snapshot."""
        with self._lock:
            lanes = dict(self._lanes)
        out = {}
        for key, state in lanes.items():
            with state.lock:
                cooldown = 0.0
                if state.last_attempt_at is not None:
                    cooldown = max(
                        0.0,
                        self.policy.cooldown_s - (self.clock() - state.last_attempt_at),
                    )
                out[key.spec] = {
                    "monitor": state.monitor.snapshot(),
                    "buffered_images": len(state.buffer),
                    "batches": state.batches,
                    "attempts": state.attempts,
                    "swaps": state.swaps,
                    "rejects": state.rejects,
                    "cooldown_remaining_s": round(cooldown, 4),
                    "last_canary_agreement": state.last_canary_agreement,
                }
        return out
