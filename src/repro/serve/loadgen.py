"""Synthetic open-loop load generator for the serving runtime.

Open loop means arrivals follow a fixed schedule (``rate`` requests per
second) regardless of how fast responses come back — the standard way to
measure a serving system's latency under load, since closed-loop clients
self-throttle and hide queueing delay.  Rejected (backpressure) and
timed-out requests count against the run rather than stopping it.
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis import format_table
from ..models import get_config
from ..models.cnn import CNN_MINI
from .engine import ServeEngine
from .registry import ModelKey
from .scheduler import QueueFullError

__all__ = ["synthetic_requests", "run_serve_benchmark", "format_snapshot"]


def _image_size(key: ModelKey) -> int:
    if key.model == CNN_MINI.name:
        return CNN_MINI.image_size
    return get_config(key.model).image_size


def synthetic_requests(count: int, size: int, seed: int = 0) -> np.ndarray:
    """Unit-normal noise images, shaped like normalized dataset samples."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, size, size, 3)).astype(np.float32)


def run_serve_benchmark(
    engine: ServeEngine,
    spec: str,
    requests: int = 256,
    rate: float = 200.0,
    seed: int = 0,
    warm: bool = True,
    image_size: int | None = None,
) -> dict:
    """Drive ``requests`` synthetic images at ``rate`` rps; return the snapshot.

    The returned dict is the engine's full metrics snapshot plus a
    ``summary`` section (throughput, completion counts, wall time).
    """
    if requests < 1 or rate <= 0:
        raise ValueError("requests must be >= 1 and rate > 0")
    key = ModelKey.parse(spec)
    if warm:
        engine.warm(key)  # load/calibrate before the clock starts
    images = synthetic_requests(requests, image_size or _image_size(key), seed=seed)

    handles = []
    rejected = 0
    start = time.monotonic()
    for index in range(requests):
        arrival = start + index / rate
        delay = arrival - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            handles.append(engine.submit(key, images[index]))
        except QueueFullError:
            rejected += 1

    completed = failed = 0
    wait_budget = max(5.0, 2.0 * engine.policy.timeout_ms / 1000.0)
    for handle in handles:
        try:
            handle.result(timeout=wait_budget)
            completed += 1
        except Exception:
            failed += 1
    duration = time.monotonic() - start

    snapshot = engine.snapshot()
    snapshot["summary"] = {
        "spec": key.spec,
        "requests": requests,
        "completed": completed,
        "rejected": rejected,
        "failed": failed,
        "duration_s": round(duration, 4),
        "throughput_rps": round(completed / duration, 2) if duration > 0 else 0.0,
        "offered_rate_rps": rate,
        # Fraction of offered requests answered successfully — the
        # availability number the chaos soak holds a floor against.
        "availability": round(completed / requests, 4),
    }
    return snapshot


def format_snapshot(snapshot: dict) -> str:
    """Human-readable rendering of a benchmark snapshot."""
    summary = snapshot.get("summary", {})
    registry = snapshot.get("registry", {})
    latency = snapshot["histograms"].get("e2e_latency_ms", {})
    sections = []
    if summary:
        sections.append(format_table(
            ["spec", "requests", "completed", "rejected", "failed",
             "throughput rps", "duration s"],
            [[summary.get("spec", "?"), summary.get("requests", 0),
              summary.get("completed", 0), summary.get("rejected", 0),
              summary.get("failed", 0), summary.get("throughput_rps", 0.0),
              summary.get("duration_s", 0.0)]],
            title="Serving benchmark",
        ))
    sections.append(format_table(
        ["metric", "count", "mean", "p50", "p95", "p99", "max"],
        [
            [name, h.get("count", 0), h.get("mean", 0.0), h.get("p50", 0.0),
             h.get("p95", 0.0), h.get("p99", 0.0), h.get("max", 0.0)]
            for name, h in sorted(snapshot["histograms"].items())
        ],
        title="Latency (ms)",
    ))
    batch_sizes = snapshot["distributions"].get("batch_size", {})
    if batch_sizes:
        sections.append(format_table(
            ["batch size", "batches"],
            [[size, count] for size, count in batch_sizes.items()],
            title="Batch-size distribution",
        ))
    if registry:
        sections.append(format_table(
            ["hits", "misses", "hit rate", "warm loads", "calibrations",
             "evictions", "fallbacks"],
            [[registry.get("hits", 0), registry.get("misses", 0),
              registry.get("hit_rate", 0.0), registry.get("warm_loads", 0),
              registry.get("calibrations", 0), registry.get("evictions", 0),
              registry.get("fallbacks", 0)]],
            title="Registry",
        ))
    counters = snapshot.get("counters", {})
    resilience = [
        [name, counters[name]]
        for name in ("failovers_total", "guard_trips_total",
                     "watchdog_restarts_total", "errors_total", "rejected_total")
        if counters.get(name)
    ]
    breakers = [
        [spec, lane["breaker"]["state"], lane["breaker"]["trips"],
         lane["breaker"]["recoveries"], lane.get("watchdog_restarts", 0)]
        for spec, lane in sorted(snapshot.get("lanes", {}).items())
        if "breaker" in lane and (lane["breaker"]["trips"]
                                  or lane.get("watchdog_restarts"))
    ]
    if resilience:
        sections.append(format_table(["event", "count"], resilience,
                                     title="Resilience events"))
    if breakers:
        sections.append(format_table(
            ["lane", "breaker", "trips", "recoveries", "restarts"],
            breakers, title="Lane health",
        ))
    return "\n\n".join(sections)
