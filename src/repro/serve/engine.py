"""Worker executor: registry + micro-batching scheduler + metrics.

One *lane* per model spec, each with its own bounded queue and worker
thread(s): workers pull coalesced batches from the lane's scheduler, run
them through the registry's (quantized) model, and complete the waiting
requests.  The registry already degrades to the float model when a
quantized artifact fails to load, so a lane keeps serving either way.

Single worker per lane is the right default for the NumPy substrate (one
batch saturates the BLAS threads); more workers mainly exercise the
scheduler's busy/idle dispatch paths.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .metrics import Metrics
from .registry import ModelKey, ModelRegistry
from .scheduler import Batch, BatchPolicy, MicroBatchScheduler, QueueFullError, ServeRequest

__all__ = ["ServeResult", "ServeEngine"]


@dataclass
class ServeResult:
    """Completed classification for one request."""

    label: int
    logits: np.ndarray
    batch_size: int
    quantized: bool


class _Lane:
    """Per-model-spec queue, workers, and in-flight accounting."""

    def __init__(self, key: ModelKey, scheduler: MicroBatchScheduler):
        self.key = key
        self.scheduler = scheduler
        self.threads: list[threading.Thread] = []
        self.in_flight = 0
        self.lock = threading.Lock()


class ServeEngine:
    """Batched inference over a :class:`~repro.serve.registry.ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        policy: BatchPolicy | None = None,
        metrics: Metrics | None = None,
        workers: int = 1,
        clock=time.monotonic,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # `is None` rather than `or`: an empty registry has len() == 0 and
        # would otherwise be silently replaced with a default-loader one.
        self.registry = ModelRegistry() if registry is None else registry
        self.policy = BatchPolicy() if policy is None else policy
        self.metrics = Metrics() if metrics is None else metrics
        self.workers = workers
        self.clock = clock
        self._lanes: dict[ModelKey, _Lane] = {}
        self._lock = threading.Lock()
        self._stopping = False

    # ------------------------------------------------------------------
    def _lane(self, key: ModelKey) -> _Lane:
        with self._lock:
            if self._stopping:
                raise RuntimeError("engine is stopped")
            lane = self._lanes.get(key)
            if lane is None:
                lane = _Lane(key, MicroBatchScheduler(self.policy, clock=self.clock))
                for index in range(self.workers):
                    thread = threading.Thread(
                        target=self._worker,
                        args=(lane,),
                        name=f"serve-{key.slug}-{index}",
                        daemon=True,
                    )
                    lane.threads.append(thread)
                    thread.start()
                self._lanes[key] = lane
            return lane

    def warm(self, spec: str | ModelKey) -> None:
        """Load (and calibrate or warm-start) a model before traffic arrives."""
        self.registry.get(spec)

    def submit(self, spec: str | ModelKey, image: np.ndarray) -> ServeRequest:
        """Enqueue one image; returns the request handle to wait on.

        Raises :class:`~repro.serve.scheduler.QueueFullError` when the
        lane's bounded queue is full (backpressure).
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        lane = self._lane(key)
        self.metrics.counter("requests_total").inc()
        self.metrics.distribution("queue_depth").observe(lane.scheduler.qsize())
        try:
            return lane.scheduler.submit(np.asarray(image, dtype=np.float32))
        except QueueFullError:
            self.metrics.counter("rejected_total").inc()
            raise

    # ------------------------------------------------------------------
    def _worker(self, lane: _Lane) -> None:
        while not self._stopping:
            with lane.lock:
                idle = lane.in_flight == 0
            batch = lane.scheduler.wait_for_batch(timeout=0.1, idle=idle)
            if batch is None:
                continue
            with lane.lock:
                lane.in_flight += 1
            try:
                self._execute(lane, batch)
            finally:
                with lane.lock:
                    lane.in_flight -= 1

    def _execute(self, lane: _Lane, batch: Batch) -> None:
        started = self.clock()
        try:
            servable = self.registry.get(lane.key)
            logits = servable.predict(batch.images)
        except Exception as error:
            self.metrics.counter("errors_total").inc()
            for request in batch.requests:
                request.set_exception(error, now=self.clock())
            return
        finished = self.clock()
        self.metrics.counter("batches_total").inc()
        self.metrics.distribution("batch_size").observe(len(batch))
        self.metrics.histogram("exec_latency_ms").observe((finished - started) * 1e3)
        labels = logits.argmax(axis=-1)
        for request, label, row in zip(batch.requests, labels, logits):
            self.metrics.histogram("queue_wait_ms").observe(
                (batch.created_at - request.enqueued_at) * 1e3
            )
            self.metrics.histogram("e2e_latency_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            self.metrics.counter("responses_total").inc()
            request.set_result(
                ServeResult(int(label), row, len(batch), servable.quantized),
                now=finished,
            )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full metrics snapshot: engine instruments + scheduler + registry."""
        with self._lock:
            lanes = dict(self._lanes)
        timeouts = sum(l.scheduler.timed_out for l in lanes.values())
        return self.metrics.snapshot(
            extra={
                "registry": self.registry.snapshot(),
                "lanes": {
                    lane.key.spec: {
                        "queued": lane.scheduler.qsize(),
                        "timed_out": lane.scheduler.timed_out,
                        "rejected": lane.scheduler.rejected,
                    }
                    for lane in lanes.values()
                },
                "timeouts_total": timeouts,
            }
        )

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every queue is empty and nothing is in flight."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                lanes = list(self._lanes.values())
            busy = any(
                lane.scheduler.qsize() > 0 or lane.in_flight > 0 for lane in lanes
            )
            if not busy:
                return True
            time.sleep(0.002)
        return False

    def stop(self) -> None:
        self._stopping = True
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.scheduler.close()
        for lane in lanes:
            for thread in lane.threads:
                thread.join(timeout=2.0)

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
