"""Worker executor: registry + micro-batching scheduler + metrics + defenses.

One *lane* per model spec, each with its own bounded queue and worker
thread(s): workers pull coalesced batches from the lane's scheduler, run
them through the registry's (quantized) model, and complete the waiting
requests.  The registry already degrades to the float model when a
quantized artifact fails to load; the engine protects the steady state
on top of that (:mod:`repro.resilience`):

* a per-lane **circuit breaker** — after ``breaker_failures`` consecutive
  quantized-path failures the lane trips to the float model, then
  re-admits the quantized artifact through a half-open probe after
  ``breaker_cooldown_s`` on the engine clock;
* a **numeric guardrail** — every batch's logits are scanned for
  NaN/Inf/saturation before completion; a failed scan fails over to the
  float path, and a batch that is bad on both paths is failed, never
  served;
* a **worker watchdog** — a lane that is busy but silent past
  ``watchdog_stall_s`` gets a replacement worker via
  :meth:`ServeEngine.check_watchdog` (the wedged daemon thread finishes
  or dies on its own; late completions are first-wins no-ops);
* optional **drift-aware recalibration** (:mod:`repro.serve.drift`) —
  lanes sample input/activation statistics against the calibration
  fingerprint, and sustained drift triggers a shadow recalibration on
  recent inputs, canary-validated and atomically swapped into the
  registry.

An optional :class:`~repro.resilience.faults.FaultPlan` injects
deterministic faults at the batch-execution sites (exceptions, polluted
logits, stalls) — the mechanism the resilience tests and the chaos soak
harness drive.

Single worker per lane is the right default for the NumPy substrate (one
batch saturates the BLAS threads); more workers mainly exercise the
scheduler's busy/idle dispatch paths.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..resilience import ResiliencePolicy
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import BATCH_EXCEPTION, FaultPlan
from ..resilience.guards import NumericGuard, NumericGuardError
from ..resilience.watchdog import WorkerWatchdog
from .admission import AdmissionController, LaneView
from .drift import DriftPolicy, RecalibrationManager
from .metrics import Metrics
from .registry import ModelKey, ModelRegistry
from .scheduler import (
    DEFAULT_PRIORITY,
    Batch,
    BatchPolicy,
    DeadlineExceededError,
    MicroBatchScheduler,
    QueueFullError,
    ServeRequest,
)
from .timing import wait_until

__all__ = ["ServeResult", "ServeEngine"]


@dataclass
class ServeResult:
    """Completed classification for one request."""

    label: int
    logits: np.ndarray
    batch_size: int
    quantized: bool


class _Lane:
    """Per-model-spec queue, workers, breaker, and in-flight accounting."""

    def __init__(self, key: ModelKey, scheduler: MicroBatchScheduler,
                 breaker: CircuitBreaker):
        self.key = key
        self.scheduler = scheduler
        self.breaker = breaker
        self.threads: list[threading.Thread] = []
        self.in_flight = 0
        self.active: list[Batch] = []  # batches currently executing
        self.restarts = 0  # watchdog-spawned replacement workers
        self.force_float_until = 0.0  # admission degrade: serve float until then
        self.lock = threading.Lock()

    def degraded(self, now: float) -> bool:
        with self.lock:
            return now < self.force_float_until

    def degrade(self, until: float) -> None:
        with self.lock:
            self.force_float_until = max(self.force_float_until, until)


class ServeEngine:
    """Batched inference over a :class:`~repro.serve.registry.ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        policy: BatchPolicy | None = None,
        metrics: Metrics | None = None,
        workers: int = 1,
        clock=time.monotonic,
        resilience: ResiliencePolicy | None = None,
        faults: FaultPlan | None = None,
        drift: DriftPolicy | RecalibrationManager | None = None,
        admission: AdmissionController | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # `is None` rather than `or`: an empty registry has len() == 0 and
        # would otherwise be silently replaced with a default-loader one.
        self.registry = ModelRegistry() if registry is None else registry
        self.policy = BatchPolicy() if policy is None else policy
        self.metrics = Metrics() if metrics is None else metrics
        self.workers = workers
        self.clock = clock
        self.resilience = ResiliencePolicy() if resilience is None else resilience
        self.faults = faults
        # Drift-aware serving is opt-in: pass a DriftPolicy (the engine
        # builds the manager over its own registry/metrics/clock) or a
        # pre-wired RecalibrationManager.
        if isinstance(drift, DriftPolicy):
            drift = RecalibrationManager(
                self.registry, drift, metrics=self.metrics, clock=clock
            )
        self.drift = drift
        # Admission control is opt-in; when present every submit passes
        # through its degrade ladder before touching the lane queue.  The
        # p99 probe is wired here so latency-derived shedding reads the
        # engine's own end-to-end histogram.
        self.admission = admission
        if admission is not None:
            admission.attach_latency_probe(
                lambda: self.metrics.histogram("e2e_latency_ms").percentile(99)
            )
        self.guard = NumericGuard(saturation_limit=self.resilience.guard_saturation)
        self.watchdog = WorkerWatchdog(
            stall_after_s=self.resilience.watchdog_stall_s, clock=clock
        )
        self._lanes: dict[ModelKey, _Lane] = {}
        self._lock = threading.Lock()
        self._stopping = False

    # ------------------------------------------------------------------
    def _lane(self, key: ModelKey) -> _Lane:
        with self._lock:
            if self._stopping:
                raise RuntimeError("engine is stopped")
            lane = self._lanes.get(key)
            if lane is None:
                lane = _Lane(
                    key,
                    MicroBatchScheduler(
                        self.policy, clock=self.clock,
                        on_expire=lambda req, spec=key.spec: self._count_expiry(
                            spec, req
                        ),
                    ),
                    CircuitBreaker(
                        failure_threshold=self.resilience.breaker_failures,
                        cooldown_s=self.resilience.breaker_cooldown_s,
                        clock=self.clock,
                    ),
                )
                self.watchdog.reset(key.spec, now=self.clock())
                for _ in range(self.workers):
                    self._start_worker(lane)
                self._lanes[key] = lane
            return lane

    def _start_worker(self, lane: _Lane) -> None:
        thread = threading.Thread(
            target=self._worker,
            args=(lane,),
            name=f"serve-{lane.key.slug}-{len(lane.threads)}",
            daemon=True,
        )
        lane.threads.append(thread)
        thread.start()

    def warm(self, spec: str | ModelKey) -> None:
        """Load (and calibrate or warm-start) a model before traffic arrives."""
        self.registry.get(spec)

    def _count_rejection(self, spec: str, reason: str) -> None:
        """One refused/expired request: ``rejected_total`` plus the
        reason-labelled ``rejections_total`` family (global + per-spec,
        the PR 5 ``requests_total`` parity pattern)."""
        self.metrics.counter("rejected_total").inc()
        self.metrics.counter("rejected_total", labels={"spec": spec}).inc()
        self.metrics.counter("rejections_total", labels={"reason": reason}).inc()
        self.metrics.counter(
            "rejections_total", labels={"reason": reason, "spec": spec}
        ).inc()

    def _count_deadline_miss(self, spec: str, priority: str) -> None:
        """One request that could not meet its deadline: the per-band
        ``deadline_misses_total`` family (global + {band} + {band, spec},
        same parity pattern as ``rejections_total``)."""
        self.metrics.counter("deadline_misses_total").inc()
        self.metrics.counter(
            "deadline_misses_total", labels={"band": priority}
        ).inc()
        self.metrics.counter(
            "deadline_misses_total", labels={"band": priority, "spec": spec}
        ).inc()

    def _count_expiry(self, spec: str, request: ServeRequest) -> None:
        """Queue-expiry accounting: the scheduler tells us whether the
        request died of the policy timeout or its own deadline."""
        reason = request.expire_reason or "timeout"
        self._count_rejection(spec, reason)
        if reason == "deadline":
            self._count_deadline_miss(spec, request.priority)

    def submit(
        self, spec: str | ModelKey, image: np.ndarray, tenant: str = "default",
        priority: str = DEFAULT_PRIORITY, deadline_ms: float | None = None,
    ) -> ServeRequest:
        """Enqueue one image; returns the request handle to wait on.

        Raises :class:`~repro.serve.scheduler.QueueFullError` when the
        lane's bounded queue is full (backpressure), or an
        :class:`~repro.serve.admission.AdmissionError` subclass when the
        admission controller refuses the request (shed, rate-limited, or
        breaker-open reject).  Only *accepted* requests count toward
        ``requests_total`` (global and per-spec, like every other counter
        family) and the queue-depth distribution; every refusal
        increments ``rejected_total`` (global and per-lane) plus the
        reason-labelled ``rejections_total`` family.

        ``priority`` selects the shedding/scheduling band
        (:data:`~repro.serve.scheduler.PRIORITIES`); ``deadline_ms``
        (optional) fails the request with
        :class:`~repro.serve.scheduler.DeadlineExceededError` if it
        cannot be served in time — late results are never silently
        delivered.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        lane = self._lane(key)
        if self.admission is not None:
            now = self.clock()
            decision = self.admission.decide(
                tenant,
                LaneView(
                    queue_depth=lane.scheduler.qsize(),
                    queue_capacity=self.policy.max_queue,
                    breaker_state=lane.breaker.state,
                ),
                now=now,
                priority=priority,
            )
            if not decision.admitted:
                self._count_rejection(key.spec, decision.reason)
                raise decision.error
            if decision.force_float:
                lane.degrade(now + self.admission.policy.degrade_hold_s)
        try:
            request = lane.scheduler.submit(
                np.asarray(image, dtype=np.float32),
                priority=priority, deadline_ms=deadline_ms,
            )
        except QueueFullError:
            self._count_rejection(key.spec, "queue_full")
            raise
        self.metrics.counter("requests_total").inc()
        self.metrics.counter("requests_total", labels={"spec": key.spec}).inc()
        self.metrics.distribution("queue_depth").observe(lane.scheduler.qsize())
        return request

    # ------------------------------------------------------------------
    def _worker(self, lane: _Lane) -> None:
        spec = lane.key.spec
        while not self._stopping:
            self.watchdog.beat(spec, now=self.clock())
            with lane.lock:
                idle = lane.in_flight == 0
            batch = lane.scheduler.wait_for_batch(timeout=0.1, idle=idle)
            if batch is None:
                continue
            with lane.lock:
                lane.in_flight += 1
                lane.active.append(batch)
            try:
                self._execute(lane, batch)
            finally:
                with lane.lock:
                    lane.in_flight -= 1
                    if batch in lane.active:
                        lane.active.remove(batch)

    def _fail_batch(self, lane: _Lane, batch: Batch, error: BaseException) -> None:
        spec = lane.key.spec
        if isinstance(error, NumericGuardError):
            self.metrics.counter("guard_trips_total").inc()
            self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
        self.metrics.counter("errors_total").inc()
        self.metrics.counter("errors_total", labels={"spec": spec}).inc()
        now = self.clock()
        for request in batch.requests:
            request.set_exception(error, now=now)

    def _execute(self, lane: _Lane, batch: Batch) -> None:
        spec = lane.key.spec
        started = self.clock()
        self.watchdog.beat(spec, now=started)
        if self.faults is not None:
            self.faults.serve_stall(site=spec)  # stuck/slow-worker injection
        try:
            servable = self.registry.get(lane.key)
        except Exception as error:
            lane.breaker.record_failure()
            self._fail_batch(lane, batch, error)
            return
        # Admission degrade ladder level 2 forces the float fallback for
        # the hold window — same degraded-but-available stance as an open
        # breaker, driven by overload instead of failures.
        degraded = lane.degraded(started)
        if degraded:
            self.metrics.counter("degraded_batches_total").inc()
            self.metrics.counter(
                "degraded_batches_total", labels={"spec": spec}
            ).inc()
        # breaker.allow() is consulted last so a degraded batch never
        # consumes (and then abandons) a half-open probe slot.
        quantized = servable.quantized and not degraded and lane.breaker.allow()
        logits = None
        if quantized:
            try:
                if self.faults is not None:
                    self.faults.raise_if(BATCH_EXCEPTION, site=spec)
                recorder = (
                    self.drift.recorder_for(lane.key, servable)
                    if self.drift is not None
                    else None
                )
                candidate = servable.predict(batch.images, recorder=recorder)
                if self.faults is not None:
                    candidate = self.faults.corrupt_logits(candidate, site=spec)
                verdict = self.guard.scan(candidate)
                if not verdict.ok:
                    raise NumericGuardError(verdict.reason)
                logits = candidate
                lane.breaker.record_success()
                backend = getattr(servable, "backend", None)
                if backend is not None and backend.name == "int":
                    # Integer-native batches get their own counter family
                    # so dashboards can split traffic by datapath.
                    self.metrics.counter("int_batches_total").inc()
                    self.metrics.counter(
                        "int_batches_total", labels={"spec": spec}
                    ).inc()
            except Exception as error:
                # The quantized artifact misbehaved: count it against the
                # breaker, then fail over to the float path for this batch
                # rather than failing the waiting requests.
                lane.breaker.record_failure()
                quantized = False
                self.metrics.counter("failovers_total").inc()
                self.metrics.counter("failovers_total", labels={"spec": spec}).inc()
                if isinstance(error, NumericGuardError):
                    self.metrics.counter("guard_trips_total").inc()
                    self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
        if logits is None:
            try:
                candidate = servable.predict_float(batch.images)
                verdict = self.guard.scan(candidate)
                if not verdict.ok:
                    raise NumericGuardError(verdict.reason)
                logits = candidate
            except Exception as error:
                self._fail_batch(lane, batch, error)
                return
        finished = self.clock()
        self.metrics.counter("batches_total").inc()
        self.metrics.distribution("batch_size").observe(len(batch))
        self.metrics.histogram("exec_latency_ms").observe((finished - started) * 1e3)
        labels = logits.argmax(axis=-1)
        for request, label, row in zip(batch.requests, labels, logits):
            self.metrics.histogram("queue_wait_ms").observe(
                (batch.created_at - request.enqueued_at) * 1e3
            )
            self.metrics.histogram("e2e_latency_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            if request.deadline_at is not None and finished > request.deadline_at:
                # The answer exists but arrived late: fail fast rather
                # than silently serving past the deadline the caller set.
                late_ms = (finished - request.deadline_at) * 1e3
                self._count_rejection(spec, "deadline")
                self._count_deadline_miss(spec, request.priority)
                request.set_exception(
                    DeadlineExceededError(
                        f"completed {late_ms:.1f} ms past the deadline "
                        f"({request.priority} request); result withheld"
                    ),
                    now=finished,
                )
                continue
            self.metrics.counter("responses_total").inc()
            request.set_result(
                ServeResult(int(label), row, len(batch), quantized),
                now=finished,
            )
        if self.drift is not None:
            # Drift bookkeeping after the requests were answered; a
            # sustained verdict recalibrates synchronously on this worker
            # (the stale entry keeps serving via registry.get meanwhile),
            # so keep the watchdog fed across the potentially long swap.
            self.watchdog.beat(spec, now=self.clock())
            self.drift.finish_batch(lane.key, servable, batch.images)
            self.watchdog.beat(spec, now=self.clock())

    # ------------------------------------------------------------------
    def check_watchdog(self, now: float | None = None) -> list[str]:
        """Restart any lane that is busy but has stopped heartbeating.

        Returns the specs restarted.  Callers drive this explicitly (the
        chaos soak does so between arrivals; tests with a fake clock call
        it directly) so detection is deterministic.
        """
        now = self.clock() if now is None else now
        with self._lock:
            if self._stopping:
                return []
            lanes = list(self._lanes.values())
        restarted = []
        for lane in lanes:
            with lane.lock:
                busy = lane.in_flight > 0
            if not busy or not self.watchdog.stalled(lane.key.spec, now=now):
                continue
            with self._lock:
                if self._stopping:
                    break
                self._start_worker(lane)
            lane.restarts += 1
            self.watchdog.reset(lane.key.spec, now=now)
            self.metrics.counter("watchdog_restarts_total").inc()
            self.metrics.counter(
                "watchdog_restarts_total", labels={"spec": lane.key.spec}
            ).inc()
            restarted.append(lane.key.spec)
        return restarted

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full metrics snapshot: engine instruments + scheduler + registry.

        Lane state is collected under the engine lock with each lane's
        own lock and the scheduler's atomic :meth:`~MicroBatchScheduler.stats`
        held per lane, so the queued/timed-out/rejected/breaker/in-flight
        numbers for a lane describe one consistent instant — concurrent
        submits and completions cannot interleave between the reads.
        """
        lane_views: dict[str, dict] = {}
        with self._lock:
            for lane in self._lanes.values():
                with lane.lock:
                    stats = lane.scheduler.stats()
                    lane_views[lane.key.spec] = {
                        **stats,
                        "breaker": lane.breaker.snapshot(),
                        "watchdog_restarts": lane.restarts,
                        "in_flight": lane.in_flight,
                        "degraded": self.clock() < lane.force_float_until,
                    }
        timeouts = sum(view["timed_out"] for view in lane_views.values())
        extra = {
            "registry": self.registry.snapshot(),
            "drift": self.drift.snapshot() if self.drift is not None else {},
            "lanes": lane_views,
            "timeouts_total": timeouts,
        }
        if self.admission is not None:
            extra["admission"] = self.admission.snapshot()
        return self.metrics.snapshot(extra=extra)

    def drain(self, timeout: float = 30.0, wall_cap: float | None = None) -> bool:
        """Wait until every queue is empty and nothing is in flight.

        ``timeout`` is measured on the injected engine clock, so
        fake-clock tests can exercise the deadline; ``wall_cap`` (default:
        ``timeout``) is a real-time safety bound so a clock that never
        advances cannot spin forever (:func:`~repro.serve.timing.wait_until`).
        """
        def settled() -> bool:
            with self._lock:
                lanes = list(self._lanes.values())
            return not any(
                lane.scheduler.qsize() > 0 or lane.in_flight > 0 for lane in lanes
            )

        return wait_until(settled, self.clock, timeout, wall_cap)

    def stop(self) -> None:
        self._stopping = True
        if self.faults is not None:
            self.faults.release_stalls()  # let injected stalls unwind
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.scheduler.close()
        for lane in lanes:
            for thread in lane.threads:
                thread.join(timeout=2.0)
        # A worker that would not join is wedged inside a batch; fail that
        # batch's requests so no submitter hangs (late completions by the
        # wedged daemon are first-wins no-ops).
        for lane in lanes:
            with lane.lock:
                pending = [r for b in lane.active for r in b.requests]
            for request in pending:
                if not request.done():
                    request.set_exception(
                        RuntimeError("engine stopped before batch completed")
                    )

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
