"""Elastic control plane: scale, quarantine, and lend shard capacity.

The :class:`~repro.serve.cluster.ClusterEngine` exposes the mechanisms —
:meth:`add_shard` / :meth:`retire_shard` (fenced drain) /
:meth:`quarantine_lane` / :meth:`clear_quarantine` — and this module is
the policy loop that drives them.  :meth:`Autoscaler.tick` reads one
pressure sample per lane (queue depth fraction, admission ladder level,
in-flight count, crash history) and decides:

* **scale up** when pressure stays above ``scale_up_pressure`` (or the
  admission ladder sits at/above ``scale_up_level``) for
  ``scale_up_sustain`` consecutive ticks, bounded by ``max_shards``;
* **scale down** when a lane stays idle for ``scale_down_sustain``
  ticks, bounded by ``min_shards`` — the retire is a *drain* (the engine
  fences the shard, finishes in-flight work, then releases rings) and an
  aborted drain is retried on a later tick, never forced;
* **hysteresis + cooldown** — the sustain counters are the hysteresis
  (one noisy sample never scales), and ``cooldown_s`` separates
  consecutive actions on the same lane so the controller cannot flap;
* **crash-loop quarantine** — ``crash_loop_threshold`` shard deaths
  within ``crash_window_s`` quarantines the spec (the engine stops
  respawning and serves in-parent float); respawn probes back off
  exponentially from ``quarantine_base_s`` up to ``quarantine_max_s``,
  and a probe that crash-loops again re-quarantines at the next rung;
* **capacity borrowing** — when one lane saturates past
  ``borrow_pressure`` while another idles below ``lender_idle``, an idle
  lane's shard is retired (drained) and re-spawned on the hot lane,
  bounded by ``borrow_budget`` concurrent loans and returned when the
  pressure reverses; a loan may dip the lender below ``min_shards``
  (never below one shard) because, unlike a voluntary scale-down, it is
  unwound on reversal.

Everything runs on the injected clock and the engine surface is
duck-typed (``lane_specs`` / ``lane_stats`` / ``add_shard`` /
``retire_shard`` / ``quarantine_lane`` / ``clear_quarantine``), so the
unit tests drive the whole policy against a fake engine on a fake clock.
Every action lands in an event ledger the scale benchmark audits.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass
class AutoscalePolicy:
    """Tunables for one :class:`Autoscaler`."""

    min_shards: int = 1
    max_shards: int = 4
    scale_up_pressure: float = 0.5  # queue fraction that counts as pressured
    scale_up_level: int = 1  # admission ladder level that counts as pressured
    scale_up_sustain: int = 2  # consecutive pressured ticks before scaling
    scale_down_idle: float = 0.05  # queue fraction that counts as idle
    scale_down_sustain: int = 4  # consecutive idle ticks before retiring
    cooldown_s: float = 1.0  # min spacing between actions on one lane
    crash_loop_threshold: int = 3  # crashes within the window -> quarantine
    crash_window_s: float = 10.0
    quarantine_base_s: float = 2.0  # first respawn-probe backoff
    quarantine_max_s: float = 30.0  # backoff ceiling
    borrow_budget: int = 1  # max concurrent cross-lane loans
    borrow_pressure: float = 0.8  # borrower queue fraction to trigger a loan
    lender_idle: float = 0.1  # lender queue fraction to be eligible

    def __post_init__(self):
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards}..{self.max_shards}"
            )
        if self.scale_up_sustain < 1 or self.scale_down_sustain < 1:
            raise ValueError("sustain counts must be >= 1")
        if not 0.0 <= self.scale_down_idle < self.scale_up_pressure <= 1.0:
            raise ValueError(
                "need 0 <= scale_down_idle < scale_up_pressure <= 1"
            )
        if self.cooldown_s < 0 or self.crash_window_s <= 0:
            raise ValueError("cooldown_s must be >= 0, crash_window_s > 0")
        if self.crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be >= 1")
        if not 0 < self.quarantine_base_s <= self.quarantine_max_s:
            raise ValueError("need 0 < quarantine_base_s <= quarantine_max_s")
        if self.borrow_budget < 0:
            raise ValueError("borrow_budget must be >= 0")
        if not 0.0 <= self.lender_idle < self.borrow_pressure <= 1.0:
            raise ValueError("need 0 <= lender_idle < borrow_pressure <= 1")


class _LaneState:
    """Controller-side memory for one lane."""

    def __init__(self):
        self.pressure_ticks = 0
        self.idle_ticks = 0
        self.last_action_at: float | None = None
        self.quarantined_until = 0.0
        self.quarantine_count = 0  # backoff rung
        self.crash_ignore_before = 0.0  # crashes before this are settled
        self.borrowed = 0  # shards currently borrowed *into* this lane


class Autoscaler:
    """Drive an elastic engine from periodic pressure samples.

    ``engine`` is duck-typed (see the module docstring); ``admission``
    (optional) supplies the degrade-ladder level via ``current_level()``
    so sustained shedding scales the pool up even before the queue depth
    alone would.  Call :meth:`tick` on whatever cadence suits the caller
    — the harness ticks between trace arrivals, production would tick on
    a timer; determinism comes from the injected clock, not the cadence.
    """

    def __init__(self, engine, policy: AutoscalePolicy | None = None,
                 clock=time.monotonic, admission=None):
        self.engine = engine
        self.policy = AutoscalePolicy() if policy is None else policy
        self.clock = clock
        self.admission = admission
        self.events: list[dict] = []
        self._states: dict[str, _LaneState] = {}
        self._loans: list[dict] = []  # active cross-lane borrows
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _state(self, spec: str) -> _LaneState:
        state = self._states.get(spec)
        if state is None:
            state = self._states[spec] = _LaneState()
        return state

    def _record(self, now: float, spec: str, action: str, **detail) -> dict:
        event = {"at": round(now, 6), "spec": spec, "action": action, **detail}
        self.events.append(event)
        return event

    def _in_cooldown(self, state: _LaneState, now: float) -> bool:
        return (
            state.last_action_at is not None
            and now - state.last_action_at < self.policy.cooldown_s
        )

    def _ladder_level(self) -> int:
        if self.admission is None:
            return 0
        return self.admission.current_level()

    # ------------------------------------------------------------------
    def tick(self, now: float | None = None) -> list[dict]:
        """One control-loop pass; returns the events it performed."""
        with self._lock:
            return self._tick_locked(self.clock() if now is None else now)

    def _tick_locked(self, now: float) -> list[dict]:
        performed: list[dict] = []
        p = self.policy
        level = self._ladder_level()
        stats_by_spec: dict[str, dict] = {}
        for spec in self.engine.lane_specs():  # sorted: deterministic order
            stats = self.engine.lane_stats(spec)
            if stats is None:
                continue
            stats_by_spec[spec] = stats
            state = self._state(spec)
            pressure = stats["queue_depth"] / max(1, stats["queue_capacity"])

            # --- crash-loop breaker -----------------------------------
            recent_crashes = [
                t for t in stats.get("crash_times", ())
                if t > state.crash_ignore_before and t >= now - p.crash_window_s
            ]
            if (
                not stats.get("quarantined")
                and len(recent_crashes) >= p.crash_loop_threshold
            ):
                if self.engine.quarantine_lane(spec):
                    backoff = min(
                        p.quarantine_max_s,
                        p.quarantine_base_s * (2 ** state.quarantine_count),
                    )
                    state.quarantine_count += 1
                    state.quarantined_until = now + backoff
                    state.crash_ignore_before = now
                    state.pressure_ticks = state.idle_ticks = 0
                    performed.append(self._record(
                        now, spec, "quarantine",
                        crashes=len(recent_crashes),
                        backoff_s=round(backoff, 3),
                    ))
                continue
            if stats.get("quarantined"):
                if now >= state.quarantined_until:
                    if self.engine.clear_quarantine(spec):
                        # Respawn probe: crashes before this instant are
                        # settled history; only a fresh crash burst should
                        # re-trip the breaker at the next backoff rung.
                        state.crash_ignore_before = now
                        performed.append(self._record(
                            now, spec, "quarantine_clear",
                            rung=state.quarantine_count,
                        ))
                continue  # no scaling while (still) quarantined

            # --- hysteresis counters ----------------------------------
            # The ladder level only updates on admission decisions, so it
            # goes stale the moment arrivals stop; it therefore counts as
            # pressure only while this lane's own queue backs it up.
            pressured = pressure >= p.scale_up_pressure or (
                level >= p.scale_up_level and pressure > p.scale_down_idle
            )
            lane_idle = pressure <= p.scale_down_idle and stats["in_flight"] == 0
            if pressured:
                state.pressure_ticks += 1
                state.idle_ticks = 0
            elif lane_idle:
                state.idle_ticks += 1
                state.pressure_ticks = 0
            else:
                state.pressure_ticks = 0
                state.idle_ticks = 0

            if self._in_cooldown(state, now):
                continue

            # --- scale up ---------------------------------------------
            if (
                state.pressure_ticks >= p.scale_up_sustain
                and stats["shards"] < p.max_shards + state.borrowed
            ):
                if self.engine.add_shard(spec):
                    state.last_action_at = now
                    state.pressure_ticks = 0
                    performed.append(self._record(
                        now, spec, "scale_up",
                        shards=stats["shards"] + 1,
                        pressure=round(pressure, 4),
                        level=level,
                    ))
                continue

            # --- scale down (drained) ---------------------------------
            if (
                state.idle_ticks >= p.scale_down_sustain
                and stats["shards"] > p.min_shards + state.borrowed
            ):
                if self.engine.retire_shard(spec):
                    state.last_action_at = now
                    state.idle_ticks = 0
                    performed.append(self._record(
                        now, spec, "scale_down",
                        shards=stats["shards"] - 1, drained=True,
                    ))
                else:
                    # Drain aborted (in-flight work would not finish in
                    # time): leave the counters so a later tick retries.
                    performed.append(self._record(
                        now, spec, "scale_down_aborted", drained=False,
                    ))

        performed.extend(self._borrow_pass(now, stats_by_spec))
        return performed

    # ------------------------------------------------------------------
    def _borrow_pass(self, now: float, stats_by_spec: dict[str, dict]) -> list[dict]:
        """Move idle shards to saturated lanes; unwind on reversal."""
        p = self.policy
        performed: list[dict] = []

        def fraction(spec: str) -> float:
            stats = stats_by_spec.get(spec)
            if stats is None:
                return 0.0
            return stats["queue_depth"] / max(1, stats["queue_capacity"])

        # Return loans whose borrower has cooled off (or whose lender is
        # now the pressured side) — drain a shard back to the lender.
        for loan in list(self._loans):
            borrower, lender = loan["borrower"], loan["lender"]
            if borrower not in stats_by_spec or lender not in stats_by_spec:
                continue
            if fraction(borrower) > p.lender_idle and fraction(lender) < p.borrow_pressure:
                continue  # pressure has not reversed yet
            if now - loan["at"] < p.cooldown_s and fraction(lender) < p.borrow_pressure:
                continue  # anti-flap: hold the loan at least one cooldown
            if not self.engine.retire_shard(borrower):
                continue  # borrower still busy; retry next tick
            self._state(borrower).borrowed -= 1
            returned = self.engine.add_shard(lender)
            self._loans.remove(loan)
            performed.append(self._record(
                now, borrower, "borrow_return",
                lender=lender, respawned=bool(returned),
            ))

        # A genuinely global overload self-limits here: no lane passes the
        # lender test (idle queue, nothing in flight, spare shards), so
        # capacity only moves when one side really is slack.
        budget = p.borrow_budget - len(self._loans)
        if budget <= 0:
            return performed
        hot = [
            s for s in stats_by_spec
            if fraction(s) >= p.borrow_pressure
            and not stats_by_spec[s].get("quarantined")
        ]
        # A loan may dip the lender below ``min_shards`` (never below one
        # shard): unlike a voluntary scale-down it is unwound on pressure
        # reversal, so the floor only guards permanent retirement.
        idle = [
            s for s in stats_by_spec
            if fraction(s) <= p.lender_idle
            and not stats_by_spec[s].get("quarantined")
            and stats_by_spec[s]["shards"] > 1
            and stats_by_spec[s]["in_flight"] == 0
        ]
        for borrower in hot:
            if budget <= 0 or not idle:
                break
            lender = idle.pop(0)
            if not self.engine.retire_shard(lender):
                continue  # lender would not drain cleanly; skip this tick
            if not self.engine.add_shard(borrower):
                # Respawn on the hot lane failed: give the shard back.
                self.engine.add_shard(lender)
                continue
            state = self._state(borrower)
            state.borrowed += 1
            self._loans.append({"borrower": borrower, "lender": lender, "at": now})
            budget -= 1
            performed.append(self._record(
                now, borrower, "borrow", lender=lender,
            ))
        return performed

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable controller state + event ledger summary."""
        with self._lock:
            counts: dict[str, int] = {}
            for event in self.events:
                counts[event["action"]] = counts.get(event["action"], 0) + 1
            return {
                "events": list(self.events),
                "event_counts": dict(sorted(counts.items())),
                "active_loans": list(self._loans),
                "lanes": {
                    spec: {
                        "pressure_ticks": st.pressure_ticks,
                        "idle_ticks": st.idle_ticks,
                        "quarantine_rung": st.quarantine_count,
                        "quarantined_until": round(st.quarantined_until, 6),
                        "borrowed": st.borrowed,
                    }
                    for spec, st in sorted(self._states.items())
                },
            }
