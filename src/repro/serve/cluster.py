"""Sharded multi-process serving: replica worker pools over shared memory.

The single-process :class:`~repro.serve.engine.ServeEngine` executes
batches on threads inside the serving process, which caps it at one GIL
and couples every model replica to the same address space: a crashed or
wedged replica is a crashed server.  :class:`ClusterEngine` moves batch
execution into *shard* processes — N replicas per ``ModelKey``, each a
forked worker owning its own copy of the servable — and keeps the
process-level concerns in the parent:

* **zero-copy hand-off** — each shard owns a ring of fixed-size slots in
  a :mod:`multiprocessing.shared_memory` segment; the parent writes the
  coalesced batch straight into the slot's image region and flips a
  status word, the shard reads the same mapped pages (no pickling, no
  pipe copy) and writes logits back into the slot's output region;
* **supervision** — shards heartbeat through a control word; a dispatch
  that sees the heartbeat go silent past ``watchdog_stall_s`` (or the
  process die) kills and respawns the shard and **re-routes the
  in-flight batch** to the replacement, bounded by ``max_redispatch``;
  :meth:`check_watchdog` additionally restarts shards that crash while
  idle, reusing the watchdog/backoff idioms of :mod:`repro.resilience`;
* **the same defense stack as the thread engine** — per-lane circuit
  breaker over the quantized path, numeric guard scan on every batch of
  logits, admission control (degrade ladder forces the float mode),
  deterministic fault injection (``stall`` faults are delivered *into*
  the shard through the slot header, so the worker genuinely stops
  heartbeating), and the identical metrics counter families, so the
  chaos-soak harness audits a process topology with unchanged code.

Slot protocol (all header words are aligned int64; single-writer
ownership alternates on the status word, which is written last on x86's
total-store-order — the parent never touches a slot the shard owns and
vice versa):

====== =============================================================
status owner / meaning
====== =============================================================
0      EMPTY — parent may fill
1      REQ   — shard executes (``len``, ``mode``, ``stall_ns`` valid)
2      RES   — parent collects logits (``classes``, ``quant`` valid)
3      ERR   — parent collects the UTF-8 error message (``msg_len``)
====== =============================================================

The fork start method is required: shard workers inherit the loader
callable and the shared-memory views by address-space copy, so any
closure (e.g. one returning a pre-built in-memory servable) is a valid
loader without being picklable.

The shard pool is **elastic**: :meth:`ClusterEngine.add_shard` spawns an
extra replica at a fresh index, and :meth:`ClusterEngine.retire_shard`
drains one away — the retiring shard is *fenced* (its dispatch thread
stops pulling new batches), the in-flight batch runs to completion, and
only then are the process and its rings released, so a scale-down can
never lose a request.  A crash-looping spec can be **quarantined**
(:meth:`ClusterEngine.quarantine_lane`): dead shards stay down instead
of respawn-spinning and the dispatch threads serve batches in-parent on
the float path until :meth:`ClusterEngine.clear_quarantine` probes the
shards back.  The :mod:`~repro.serve.autoscaler` drives all three knobs
from ladder/queue/crash pressure.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np

from ..resilience import ResiliencePolicy
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import BATCH_EXCEPTION, STALL, FaultPlan
from ..resilience.guards import NumericGuard, NumericGuardError
from .admission import AdmissionController, LaneView
from .engine import ServeResult
from .metrics import Metrics
from .registry import ModelKey
from .scheduler import (
    DEFAULT_PRIORITY,
    Batch,
    BatchPolicy,
    DeadlineExceededError,
    MicroBatchScheduler,
    QueueFullError,
    ServeRequest,
)
from .timing import wait_until

__all__ = ["ClusterPolicy", "ClusterEngine", "default_shard_loader"]

# Slot status words (see the protocol table in the module docstring).
EMPTY, REQ, RES, ERR = 0, 1, 2, 3
# Execution modes the parent requests.
MODE_QUANT, MODE_FLOAT = 0, 1
# Header word indices.
H_STATUS, H_LEN, H_CLASSES, H_MODE, H_STALL_NS, H_QUANT, H_MSG_LEN, H_SEQ = range(8)
HEADER_WORDS = 8
# Control word indices (one control block per shard segment).
C_HEARTBEAT, C_READY, C_STOP = 0, 1, 2
CTRL_WORDS = 4
MSG_BYTES = 512  # UTF-8 error message region per slot

READY_OK, READY_FAILED = 1, -1


def default_shard_loader(spec: str):
    """Build a servable inside the shard via a fresh :class:`ModelRegistry`.

    Each shard process loads (or warm-starts from the serialized
    quantizer state on disk) its own replica — the production-shaped
    path.  Tests and benchmarks usually pass a closure over a pre-built
    servable instead, which fork shares copy-on-write for instant spawn.
    """
    from .registry import ModelRegistry

    return ModelRegistry().get(spec)


class ClusterPolicy:
    """Shape and supervision tunables for the shard pool."""

    def __init__(
        self,
        shards: int = 2,
        ring_slots: int = 2,
        image_hw: int = 16,
        channels: int = 3,
        max_classes: int = 64,
        ready_timeout_s: float = 120.0,
        poll_s: float = 0.0005,
        max_redispatch: int = 3,
    ):
        if shards < 1 or ring_slots < 1:
            raise ValueError("shards and ring_slots must be >= 1")
        if image_hw < 1 or channels < 1 or max_classes < 1:
            raise ValueError("image_hw, channels, max_classes must be >= 1")
        if ready_timeout_s <= 0 or poll_s <= 0 or max_redispatch < 0:
            raise ValueError(
                "ready_timeout_s and poll_s must be > 0, max_redispatch >= 0"
            )
        self.shards = shards
        self.ring_slots = ring_slots
        self.image_hw = image_hw
        self.channels = channels
        self.max_classes = max_classes
        self.ready_timeout_s = ready_timeout_s
        self.poll_s = poll_s
        self.max_redispatch = max_redispatch


class _RingViews:
    """NumPy views over one shard's shared-memory segment.

    Built in the parent; the shard inherits the same object through fork,
    so both sides address identical mapped pages.  Holding ``shm`` here
    keeps the mapping alive on both sides of the fork.
    """

    def __init__(self, shm, slots: int, max_batch: int, image_shape, max_classes: int):
        self.shm = shm
        self.slots = slots
        self.max_batch = max_batch
        self.image_shape = tuple(image_shape)
        self.max_classes = max_classes
        buf = shm.buf
        offset = 0

        def carve(dtype, shape):
            nonlocal offset
            arr = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
            offset += arr.nbytes
            # Keep every region 8-byte aligned so int64 header words stay
            # on natural boundaries (atomic aligned stores on x86/arm64).
            offset = (offset + 7) & ~7
            return arr

        self.ctrl = carve(np.int64, (CTRL_WORDS,))
        self.hdr = carve(np.int64, (slots, HEADER_WORDS))
        self.msg = carve(np.uint8, (slots, MSG_BYTES))
        self.images = carve(np.float32, (slots, max_batch) + self.image_shape)
        self.logits = carve(np.float32, (slots, max_batch, max_classes))
        self.nbytes = offset

    @classmethod
    def required_bytes(cls, slots, max_batch, image_shape, max_classes) -> int:
        words = CTRL_WORDS + slots * HEADER_WORDS
        per_slot = (
            MSG_BYTES
            + 4 * max_batch * int(np.prod(image_shape))
            + 4 * max_batch * max_classes
        )
        # Alignment padding upper bound: 8 bytes per carved region.
        return words * 8 + slots * per_slot + 8 * (4 + 2 * slots)

    def write_error(self, slot: int, message: str) -> None:
        data = message.encode("utf-8", errors="replace")[:MSG_BYTES]
        self.msg[slot][: len(data)] = np.frombuffer(data, dtype=np.uint8)
        self.hdr[slot][H_MSG_LEN] = len(data)

    def read_error(self, slot: int) -> str:
        length = int(self.hdr[slot][H_MSG_LEN])
        return bytes(self.msg[slot][:length]).decode("utf-8", errors="replace")


def _shard_main(spec: str, loader, views: _RingViews, poll_s: float) -> None:
    """Shard process body: load one replica, then serve the slot ring.

    Single-threaded by design — the heartbeat stops the moment the worker
    blocks (an injected ``stall_ns`` sleep, a wedged predict), which is
    precisely the signal the parent's supervision keys on.
    """
    # The parent supervises shards; a Ctrl-C on the terminal must not
    # race it by killing workers directly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ctrl, hdr = views.ctrl, views.hdr
    try:
        servable = loader(spec)
    except BaseException as error:  # report, then exit: the parent re-raises
        views.write_error(0, f"{type(error).__name__}: {error}")
        ctrl[C_READY] = READY_FAILED
        return
    ctrl[C_READY] = READY_OK
    slot = 0
    while not ctrl[C_STOP]:
        row = hdr[slot]
        if row[H_STATUS] != REQ:
            ctrl[C_HEARTBEAT] += 1
            time.sleep(poll_s)
            continue
        stall_ns = int(row[H_STALL_NS])
        if stall_ns > 0:
            # Injected stall: sleep without heartbeating so the parent's
            # staleness detector sees a genuinely silent shard.
            time.sleep(stall_ns / 1e9)
        ctrl[C_HEARTBEAT] += 1
        n = int(row[H_LEN])
        mode = int(row[H_MODE])
        # Zero-copy input: predict consumes the shared mapping directly;
        # the parent does not reuse the slot until the status word flips.
        images = views.images[slot][:n]
        try:
            if mode == MODE_FLOAT:
                logits = servable.predict_float(images)
                quantized = False
            else:
                logits = servable.predict(images)
                quantized = bool(servable.quantized)
            logits = np.asarray(logits, dtype=np.float32)
            if logits.ndim != 2 or logits.shape[0] != n:
                raise ValueError(f"model returned logits of shape {logits.shape}")
            classes = min(logits.shape[1], views.max_classes)
            views.logits[slot][:n, :classes] = logits[:, :classes]
            row[H_CLASSES] = classes
            row[H_QUANT] = int(quantized)
            row[H_STATUS] = RES
        except BaseException as error:
            views.write_error(slot, f"{type(error).__name__}: {error}")
            row[H_STATUS] = ERR
        ctrl[C_HEARTBEAT] += 1
        slot = (slot + 1) % views.slots


class _Shard:
    """Parent-side handle: process + segment + dispatch bookkeeping."""

    def __init__(self, index: int, process, shm, views: _RingViews):
        self.index = index
        self.process = process
        self.shm = shm
        self.views = views
        self.seq = 0  # batches dispatched; seq % slots is the next slot
        self.restarts = 0
        self.lock = threading.Lock()  # held by whoever operates the shard

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def destroy(self) -> None:
        """Kill the process and release the segment (idempotent)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:
            pass


class _ClusterLane:
    """Per-model-spec queue, shard pool, breaker, and in-flight ledger.

    The pool is a dict keyed by shard index so replicas can be added and
    retired at runtime without renumbering; ``fenced`` indices keep their
    process and in-flight batch but pull no new work (the drain phase of
    a scale-down), and ``quarantined`` short-circuits the whole pool to
    the parent-side float path.
    """

    def __init__(self, key: ModelKey, scheduler: MicroBatchScheduler,
                 breaker: CircuitBreaker):
        self.key = key
        self.scheduler = scheduler
        self.breaker = breaker
        self.shards: dict[int, _Shard] = {}
        self.threads: dict[int, threading.Thread] = {}
        self.fenced: set[int] = set()
        self.next_index = 0
        self.in_flight = 0
        self.active: list[Batch] = []
        self.reroutes = 0
        self.restarts = 0  # shard restarts, stall + crash combined
        self.crash_times: list[float] = []  # engine-clock crash instants
        self.quarantined = False
        self.servable = None  # lazily-built parent replica for quarantine
        self.force_float_until = 0.0
        self.lock = threading.Lock()

    def degraded(self, now: float) -> bool:
        with self.lock:
            return now < self.force_float_until

    def degrade(self, until: float) -> None:
        with self.lock:
            self.force_float_until = max(self.force_float_until, until)

    def is_quarantined(self) -> bool:
        with self.lock:
            return self.quarantined

    def record_crash(self, now: float) -> None:
        with self.lock:
            self.crash_times.append(now)
            del self.crash_times[:-64]  # bounded history for the autoscaler


class _RegistryView:
    """Duck-typed registry facade over the shard pools.

    The chaos-soak harness (and the loadgen snapshot formatter) expect an
    ``engine.registry`` with ``invalidate`` and a ``snapshot()["entries"]``
    listing; a cluster has no in-process model cache, so this reports the
    lanes whose shard pools are live.
    """

    def __init__(self, engine: "ClusterEngine"):
        self._engine = engine

    def invalidate(self, spec) -> bool:
        """Rolling restart of the spec's shards (the cluster analogue of
        dropping a cached entry: replicas reload from disk)."""
        return self._engine.restart_lane(spec)

    def snapshot(self) -> dict:
        return self._engine.registry_snapshot()


class ClusterEngine:
    """Sharded multi-process counterpart of :class:`ServeEngine`.

    Exposes the same operational surface (``warm`` / ``submit`` /
    ``check_watchdog`` / ``drain`` / ``stop`` / ``snapshot``, plus
    ``policy``, ``guard`` and a ``registry`` facade) so the load
    generator, the admission controller, and the chaos-soak harness run
    against either topology unchanged.
    """

    def __init__(
        self,
        loader=None,
        policy: BatchPolicy | None = None,
        cluster: ClusterPolicy | None = None,
        metrics: Metrics | None = None,
        clock=time.monotonic,
        resilience: ResiliencePolicy | None = None,
        faults: FaultPlan | None = None,
        admission: AdmissionController | None = None,
    ):
        self.loader = default_shard_loader if loader is None else loader
        self.policy = BatchPolicy() if policy is None else policy
        self.cluster = ClusterPolicy() if cluster is None else cluster
        self.metrics = Metrics() if metrics is None else metrics
        self.clock = clock
        self.resilience = ResiliencePolicy() if resilience is None else resilience
        self.faults = faults
        self.admission = admission
        if admission is not None:
            admission.attach_latency_probe(
                lambda: self.metrics.histogram("e2e_latency_ms").percentile(99)
            )
        self.guard = NumericGuard(saturation_limit=self.resilience.guard_saturation)
        self.registry = _RegistryView(self)
        self._ctx = multiprocessing.get_context("fork")
        self._lanes: dict[ModelKey, _ClusterLane] = {}
        self._lock = threading.Lock()
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Shard lifecycle
    def _spawn_shard(self, lane: _ClusterLane, index: int) -> _Shard:
        from multiprocessing import shared_memory

        shape = (self.cluster.image_hw, self.cluster.image_hw, self.cluster.channels)
        size = _RingViews.required_bytes(
            self.cluster.ring_slots, self.policy.max_batch_size,
            shape, self.cluster.max_classes,
        )
        shm = shared_memory.SharedMemory(create=True, size=size)
        views = _RingViews(
            shm, self.cluster.ring_slots, self.policy.max_batch_size,
            shape, self.cluster.max_classes,
        )
        views.ctrl[:] = 0
        views.hdr[:] = 0
        process = self._ctx.Process(
            target=_shard_main,
            args=(lane.key.spec, self.loader, views, self.cluster.poll_s),
            name=f"shard-{lane.key.slug}-{index}",
            daemon=True,
        )
        process.start()
        return _Shard(index, process, shm, views)

    def _await_ready(self, shard: _Shard) -> None:
        deadline = time.monotonic() + self.cluster.ready_timeout_s
        while time.monotonic() < deadline:
            state = int(shard.views.ctrl[C_READY])
            if state == READY_OK:
                return
            if state == READY_FAILED or not shard.alive():
                message = shard.views.read_error(0) or "shard died during load"
                shard.destroy()
                raise RuntimeError(
                    f"shard {shard.index} for {shard.process.name} failed to "
                    f"load: {message}"
                )
            time.sleep(self.cluster.poll_s)
        shard.destroy()
        raise TimeoutError(
            f"shard {shard.index} not ready within {self.cluster.ready_timeout_s}s"
        )

    def _restart_shard(self, lane: _ClusterLane, index: int, reason: str) -> _Shard:
        """Kill (if needed) and respawn one shard; counts the restart.

        ``reason`` is ``"stall"`` (heartbeat went silent — the watchdog
        family, so chaos-soak recovery evidence holds across topologies)
        or ``"crash"`` (process died).
        """
        spec = lane.key.spec
        with lane.lock:
            old = lane.shards.get(index)
        if old is not None:
            old.destroy()
        if reason == "crash":
            # Recorded before the respawn so the autoscaler's crash-loop
            # window sees the death even if the respawn below fails too.
            lane.record_crash(self.clock())
        shard = self._spawn_shard(lane, index)
        self._await_ready(shard)
        shard.restarts = (old.restarts + 1) if old is not None else 1
        with lane.lock:
            lane.shards[index] = shard
            lane.restarts += 1
        self._update_live_gauge(lane)
        self.metrics.counter("shard_restarts_total").inc()
        self.metrics.counter("shard_restarts_total", labels={"spec": spec}).inc()
        if reason == "stall":
            self.metrics.counter("watchdog_restarts_total").inc()
            self.metrics.counter(
                "watchdog_restarts_total", labels={"spec": spec}
            ).inc()
        else:
            self.metrics.counter("shard_crashes_total").inc()
            self.metrics.counter("shard_crashes_total", labels={"spec": spec}).inc()
        return shard

    def _update_live_gauge(self, lane: _ClusterLane) -> None:
        with lane.lock:
            live = sum(
                1
                for index, shard in lane.shards.items()
                if index not in lane.fenced and shard.alive()
            )
        self.metrics.gauge("shards_live", labels={"spec": lane.key.spec}).set(live)

    def kill_shard(self, spec: str | ModelKey, index: int = 0) -> int:
        """SIGKILL one shard process (chaos/testing hook); returns the pid.

        Supervision takes it from there: the dispatch thread (or
        :meth:`check_watchdog` if the shard was idle) respawns the shard
        and re-routes whatever batch was in flight on it.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes[key]
        with lane.lock:
            shard = lane.shards.get(index)
        if shard is None or not shard.alive():
            raise RuntimeError(f"shard {index} of {key.spec} is not running")
        pid = shard.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def restart_lane(self, spec: str | ModelKey) -> bool:
        """Rolling restart of every idle shard in a lane (registry
        ``invalidate`` analogue — replicas reload their artifacts)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return False
        restarted = False
        with lane.lock:
            indices = sorted(lane.shards)
        for index in indices:
            with lane.lock:
                shard = lane.shards.get(index)
            if shard is None:
                continue
            if shard.lock.acquire(blocking=False):  # skip busy shards
                try:
                    self._restart_shard(lane, index, reason="crash")
                    restarted = True
                finally:
                    shard.lock.release()
        return restarted

    # ------------------------------------------------------------------
    # Elastic control surface (driven by repro.serve.autoscaler)
    def add_shard(self, spec: str | ModelKey) -> bool:
        """Spawn one extra replica for the spec at a fresh index.

        Returns ``True`` when the shard came up ready; ``False`` when the
        lane does not exist, the engine is stopping, or the spawn failed
        (counted as ``shard_spawn_failures_total`` — the autoscaler's
        crash-loop breaker reacts to repeated failures, the engine does
        not retry on its own).
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            if self._stopping:
                return False
            lane = self._lanes.get(key)
        if lane is None:
            return False
        with lane.lock:
            index = lane.next_index
            lane.next_index += 1
        try:
            shard = self._spawn_shard(lane, index)
            self._await_ready(shard)
        except Exception:
            self.metrics.counter("shard_spawn_failures_total").inc()
            self.metrics.counter(
                "shard_spawn_failures_total", labels={"spec": key.spec}
            ).inc()
            lane.record_crash(self.clock())
            return False
        thread = threading.Thread(
            target=self._dispatch_loop,
            args=(lane, index),
            name=f"dispatch-{key.slug}-{index}",
            daemon=True,
        )
        with lane.lock:
            lane.shards[index] = shard
            lane.threads[index] = thread
        thread.start()
        self._update_live_gauge(lane)
        self.metrics.counter("scale_ups_total").inc()
        self.metrics.counter("scale_ups_total", labels={"spec": key.spec}).inc()
        return True

    def retire_shard(self, spec: str | ModelKey, index: int | None = None,
                     drain_timeout_s: float = 10.0) -> bool:
        """Drain one replica away: fence, finish in-flight, release rings.

        The fenced dispatch thread pulls no new batches and exits once
        its current batch (if any) completes; only then are the process
        and its shared-memory segment destroyed, so a scale-down never
        loses a request.  If the drain does not complete within
        ``drain_timeout_s`` the fence is lifted and ``False`` returned —
        the caller (autoscaler) simply retries on a later tick.  The last
        unfenced shard of a lane is never retired.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return False
        with lane.lock:
            candidates = [i for i in lane.shards if i not in lane.fenced]
            if len(candidates) <= 1:
                return False  # never drain the pool to zero
            if index is None:
                index = max(candidates)
            elif index not in candidates:
                return False
            lane.fenced.add(index)
            thread = lane.threads.get(index)
        self._update_live_gauge(lane)
        if thread is not None:
            thread.join(timeout=drain_timeout_s)
            if thread.is_alive():
                # Still mid-batch (a stall is being ridden out): abort the
                # retire rather than strand the batch — unfence and retry
                # on a later autoscaler tick.
                with lane.lock:
                    lane.fenced.discard(index)
                self._update_live_gauge(lane)
                return False
        with lane.lock:
            shard = lane.shards.pop(index, None)
            lane.threads.pop(index, None)
            lane.fenced.discard(index)
        if shard is not None:
            if shard.alive():
                shard.views.ctrl[C_STOP] = 1
                shard.process.join(timeout=1.0)
            shard.destroy()
        self._update_live_gauge(lane)
        self.metrics.counter("scale_downs_total").inc()
        self.metrics.counter("scale_downs_total", labels={"spec": key.spec}).inc()
        return True

    def quarantine_lane(self, spec: str | ModelKey) -> bool:
        """Stop respawning the spec's shards; serve in-parent float instead.

        The crash-loop endpoint: dead shards stay down (no respawn
        spinning), live ones idle, and every batch runs on a parent-side
        replica's float path until :meth:`clear_quarantine`.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return False
        with lane.lock:
            if lane.quarantined:
                return False
            lane.quarantined = True
        self.metrics.gauge("lane_quarantined", labels={"spec": key.spec}).set(1)
        self.metrics.counter("quarantines_total").inc()
        self.metrics.counter("quarantines_total", labels={"spec": key.spec}).inc()
        return True

    def clear_quarantine(self, spec: str | ModelKey) -> bool:
        """Lift the quarantine: the next batch on a dead shard respawns it
        (the recovery probe — if the spec still crash-loops, the
        autoscaler re-quarantines with a longer backoff)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return False
        with lane.lock:
            if not lane.quarantined:
                return False
            lane.quarantined = False
        self.metrics.gauge("lane_quarantined", labels={"spec": key.spec}).set(0)
        return True

    def lane_specs(self) -> list[str]:
        """Specs with live lanes, sorted for deterministic iteration."""
        with self._lock:
            return sorted(lane.key.spec for lane in self._lanes.values())

    def shard_count(self, spec: str | ModelKey) -> int:
        """Unfenced shards currently serving the spec (0 if no lane)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return 0
        with lane.lock:
            return len([i for i in lane.shards if i not in lane.fenced])

    def lane_stats(self, spec: str | ModelKey) -> dict | None:
        """One consistent pressure/health reading for the autoscaler."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return None
        queued = lane.scheduler.qsize()
        with lane.lock:
            unfenced = [i for i in lane.shards if i not in lane.fenced]
            return {
                "spec": key.spec,
                "queue_depth": queued,
                "queue_capacity": self.policy.max_queue,
                "in_flight": lane.in_flight,
                "shards": len(unfenced),
                "shards_alive": sum(
                    1 for i in unfenced if lane.shards[i].alive()
                ),
                "quarantined": lane.quarantined,
                "crash_times": list(lane.crash_times),
            }

    # ------------------------------------------------------------------
    # Lane lifecycle
    def _lane(self, key: ModelKey) -> _ClusterLane:
        with self._lock:
            if self._stopping:
                raise RuntimeError("cluster engine is stopped")
            lane = self._lanes.get(key)
            if lane is not None:
                return lane
            lane = _ClusterLane(
                key,
                MicroBatchScheduler(
                    self.policy, clock=self.clock,
                    on_expire=lambda req, spec=key.spec: self._count_expiry(
                        spec, req
                    ),
                ),
                CircuitBreaker(
                    failure_threshold=self.resilience.breaker_failures,
                    cooldown_s=self.resilience.breaker_cooldown_s,
                    clock=self.clock,
                ),
            )
            self._lanes[key] = lane
        for index in range(self.cluster.shards):
            shard = self._spawn_shard(lane, index)
            self._await_ready(shard)
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(lane, index),
                name=f"dispatch-{key.slug}-{index}",
                daemon=True,
            )
            with lane.lock:
                lane.shards[index] = shard
                lane.threads[index] = thread
                lane.next_index = index + 1
            thread.start()
        self._update_live_gauge(lane)
        return lane

    def warm(self, spec: str | ModelKey) -> None:
        """Spawn (and block until ready) the spec's shard pool."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        self._lane(key)

    # ------------------------------------------------------------------
    # Submission (same admission + metrics contract as ServeEngine)
    def _count_rejection(self, spec: str, reason: str) -> None:
        self.metrics.counter("rejected_total").inc()
        self.metrics.counter("rejected_total", labels={"spec": spec}).inc()
        self.metrics.counter("rejections_total", labels={"reason": reason}).inc()
        self.metrics.counter(
            "rejections_total", labels={"reason": reason, "spec": spec}
        ).inc()

    def _count_deadline_miss(self, spec: str, priority: str) -> None:
        self.metrics.counter("deadline_misses_total").inc()
        self.metrics.counter(
            "deadline_misses_total", labels={"band": priority}
        ).inc()
        self.metrics.counter(
            "deadline_misses_total", labels={"band": priority, "spec": spec}
        ).inc()

    def _count_expiry(self, spec: str, request: ServeRequest) -> None:
        reason = request.expire_reason or "timeout"
        self._count_rejection(spec, reason)
        if reason == "deadline":
            self._count_deadline_miss(spec, request.priority)

    def submit(
        self, spec: str | ModelKey, image: np.ndarray, tenant: str = "default",
        priority: str = DEFAULT_PRIORITY, deadline_ms: float | None = None,
    ) -> ServeRequest:
        """Enqueue one image onto the spec's lane (see
        :meth:`ServeEngine.submit` for the admission/rejection and
        priority/deadline contract)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        lane = self._lane(key)
        image = np.asarray(image, dtype=np.float32)
        expected = (self.cluster.image_hw, self.cluster.image_hw, self.cluster.channels)
        if image.shape != expected:
            raise ValueError(
                f"image shape {image.shape} does not fit the cluster's shared "
                f"rings (expected {expected}; set ClusterPolicy.image_hw)"
            )
        if self.admission is not None:
            now = self.clock()
            decision = self.admission.decide(
                tenant,
                LaneView(
                    queue_depth=lane.scheduler.qsize(),
                    queue_capacity=self.policy.max_queue,
                    breaker_state=lane.breaker.state,
                ),
                now=now,
                priority=priority,
            )
            if not decision.admitted:
                self._count_rejection(key.spec, decision.reason)
                raise decision.error
            if decision.force_float:
                lane.degrade(now + self.admission.policy.degrade_hold_s)
        try:
            request = lane.scheduler.submit(
                image, priority=priority, deadline_ms=deadline_ms
            )
        except QueueFullError:
            self._count_rejection(key.spec, "queue_full")
            raise
        self.metrics.counter("requests_total").inc()
        self.metrics.counter("requests_total", labels={"spec": key.spec}).inc()
        self.metrics.distribution("queue_depth").observe(lane.scheduler.qsize())
        return request

    # ------------------------------------------------------------------
    # Dispatch: one parent thread per shard owns its batches end-to-end
    def _dispatch_loop(self, lane: _ClusterLane, index: int) -> None:
        while not self._stopping:
            with lane.lock:
                if index not in lane.shards or index in lane.fenced:
                    return  # retired or draining: stop pulling work
                idle = lane.in_flight == 0
            batch = lane.scheduler.wait_for_batch(timeout=0.1, idle=idle)
            if batch is None:
                continue
            # A fence raised during wait_for_batch does not strand this
            # batch: it runs to completion below, and retire_shard joins
            # this thread before releasing the rings.
            with lane.lock:
                lane.in_flight += 1
                lane.active.append(batch)
            try:
                self._run_batch(lane, index, batch)
            finally:
                with lane.lock:
                    lane.in_flight -= 1
                    if batch in lane.active:
                        lane.active.remove(batch)

    def _dispatch(self, shard: _Shard, batch: Batch, mode: int, stall_ns: int):
        """Write the batch into the shard's next slot and await the verdict.

        Returns ``("ok", logits, quantized)``, ``("error", message)``, or
        ``("lost", reason)`` — the latter when the shard died or went
        silent past the stall threshold, meaning the batch must be
        re-routed to a replacement shard.
        """
        views = shard.views
        slot = shard.seq % views.slots
        shard.seq += 1
        row = views.hdr[slot]
        if int(row[H_STATUS]) != EMPTY:
            # The previous incarnation died mid-protocol; reclaim the slot.
            row[H_STATUS] = EMPTY
        n = len(batch)
        views.images[slot][:n] = batch.images
        row[H_LEN] = n
        row[H_MODE] = mode
        row[H_STALL_NS] = stall_ns
        row[H_SEQ] = shard.seq
        row[H_STATUS] = REQ  # ownership hand-off: written last
        stall_after = self.resilience.watchdog_stall_s
        last_beat = int(views.ctrl[C_HEARTBEAT])
        last_change = time.monotonic()
        while True:
            status = int(row[H_STATUS])
            if status == RES:
                classes = int(row[H_CLASSES])
                logits = np.array(views.logits[slot][:n, :classes])
                quantized = bool(row[H_QUANT])
                row[H_STATUS] = EMPTY
                return ("ok", logits, quantized)
            if status == ERR:
                message = views.read_error(slot)
                row[H_STATUS] = EMPTY
                return ("error", message)
            if not shard.alive():
                return ("lost", "crash")
            beat = int(views.ctrl[C_HEARTBEAT])
            if beat != last_beat:
                last_beat = beat
                last_change = time.monotonic()
            elif time.monotonic() - last_change >= stall_after:
                return ("lost", "stall")
            if self._stopping:
                return ("error", "cluster engine stopped mid-batch")
            time.sleep(self.cluster.poll_s)

    def _fail_batch(self, lane: _ClusterLane, batch: Batch, error: BaseException) -> None:
        spec = lane.key.spec
        if isinstance(error, NumericGuardError):
            self.metrics.counter("guard_trips_total").inc()
            self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
        self.metrics.counter("errors_total").inc()
        self.metrics.counter("errors_total", labels={"spec": spec}).inc()
        now = self.clock()
        for request in batch.requests:
            request.set_exception(error, now=now)

    def _parent_servable(self, lane: _ClusterLane):
        """Lazily build the parent-side replica quarantine serving uses."""
        with lane.lock:
            servable = lane.servable
        if servable is None:
            servable = self.loader(lane.key.spec)
            with lane.lock:
                if lane.servable is None:
                    lane.servable = servable
                servable = lane.servable
        return servable

    def _run_quarantined(self, lane: _ClusterLane, batch: Batch,
                         started: float) -> None:
        """Serve one batch in-parent on the float path (quarantine mode,
        also the fallback when a batch races a retired shard index)."""
        spec = lane.key.spec
        try:
            servable = self._parent_servable(lane)
            logits = np.asarray(
                servable.predict_float(batch.images), dtype=np.float32
            )
            verdict = self.guard.scan(logits)
            if not verdict.ok:
                raise NumericGuardError(verdict.reason)
        except Exception as error:
            self._fail_batch(lane, batch, error)
            return
        self.metrics.counter("quarantine_batches_total").inc()
        self.metrics.counter(
            "quarantine_batches_total", labels={"spec": spec}
        ).inc()
        self._complete_batch(lane, batch, logits, quantized=False, started=started)

    def _run_batch(self, lane: _ClusterLane, index: int, batch: Batch) -> None:
        spec = lane.key.spec
        started = self.clock()
        if lane.is_quarantined():
            self._run_quarantined(lane, batch, started)
            return
        # Injected stall: delivered into the shard through the slot header
        # so the worker process itself goes silent (no parent-side sleep).
        stall_ns = 0
        if self.faults is not None:
            window = self.faults.fire(STALL, site=spec)
            if window is not None:
                stall_ns = int(window.stall_s * 1e9)
        degraded = lane.degraded(started)
        if degraded:
            self.metrics.counter("degraded_batches_total").inc()
            self.metrics.counter("degraded_batches_total", labels={"spec": spec}).inc()
        quantized_path = not degraded and lane.breaker.allow()
        mode = MODE_QUANT if quantized_path else MODE_FLOAT
        attempts = 0
        while True:
            if self._stopping:
                self._fail_batch(
                    lane, batch, RuntimeError("cluster engine stopped mid-batch")
                )
                return
            with lane.lock:
                shard = lane.shards.get(index)
            if shard is None or lane.is_quarantined():
                # Index retired under us, or the autoscaler quarantined the
                # spec mid-flight: serve in-parent rather than respawn.
                self._run_quarantined(lane, batch, started)
                return
            with shard.lock:
                if not shard.alive():
                    if lane.is_quarantined():
                        self._run_quarantined(lane, batch, started)
                        return
                    try:
                        shard = self._restart_shard(lane, index, reason="crash")
                    except Exception as error:
                        self._fail_batch(lane, batch, error)
                        return
                if mode == MODE_QUANT and self.faults is not None:
                    try:
                        self.faults.raise_if(BATCH_EXCEPTION, site=spec)
                    except Exception:
                        # Injected quantized-path failure: breaker + failover
                        # to float, identical to the thread engine.
                        lane.breaker.record_failure()
                        self.metrics.counter("failovers_total").inc()
                        self.metrics.counter(
                            "failovers_total", labels={"spec": spec}
                        ).inc()
                        mode = MODE_FLOAT
                        continue
                outcome = self._dispatch(shard, batch, mode, stall_ns)
                if outcome[0] == "lost":
                    if lane.is_quarantined():
                        # Crash-loop endpoint: stop respawning, serve the
                        # batch in-parent on the float path instead.
                        self._run_quarantined(lane, batch, started)
                        return
                    # Respawn under the same shard lock as the dispatch so
                    # check_watchdog cannot race us into a double restart.
                    try:
                        self._restart_shard(lane, index, reason=outcome[1])
                    except Exception as error:
                        self._fail_batch(lane, batch, error)
                        return
            stall_ns = 0  # an injected stall fires at most once per batch
            kind = outcome[0]
            if kind == "lost":
                attempts += 1
                if attempts > self.cluster.max_redispatch:
                    self._fail_batch(lane, batch, RuntimeError(
                        f"batch abandoned after {attempts} shard losses "
                        f"(last: {outcome[1]})"
                    ))
                    return
                with lane.lock:
                    lane.reroutes += 1
                self.metrics.counter("reroutes_total").inc()
                self.metrics.counter("reroutes_total", labels={"spec": spec}).inc()
                continue
            if kind == "error":
                message = outcome[1]
                if mode == MODE_QUANT:
                    lane.breaker.record_failure()
                    self.metrics.counter("failovers_total").inc()
                    self.metrics.counter("failovers_total", labels={"spec": spec}).inc()
                    mode = MODE_FLOAT
                    continue
                self._fail_batch(lane, batch, RuntimeError(f"shard error: {message}"))
                return
            _, logits, quantized = outcome
            if mode == MODE_QUANT and self.faults is not None:
                logits = self.faults.corrupt_logits(logits, site=spec)
            verdict = self.guard.scan(logits)
            if not verdict.ok:
                if mode == MODE_QUANT:
                    lane.breaker.record_failure()
                    self.metrics.counter("failovers_total").inc()
                    self.metrics.counter("failovers_total", labels={"spec": spec}).inc()
                    self.metrics.counter("guard_trips_total").inc()
                    self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
                    mode = MODE_FLOAT
                    continue
                self._fail_batch(lane, batch, NumericGuardError(verdict.reason))
                return
            if mode == MODE_QUANT:
                lane.breaker.record_success()
            self._complete_batch(lane, batch, logits, quantized and mode == MODE_QUANT, started)
            return

    def _complete_batch(
        self, lane, batch: Batch, logits: np.ndarray, quantized: bool, started: float
    ) -> None:
        spec = lane.key.spec
        finished = self.clock()
        self.metrics.counter("batches_total").inc()
        self.metrics.distribution("batch_size").observe(len(batch))
        self.metrics.histogram("exec_latency_ms").observe((finished - started) * 1e3)
        labels = logits.argmax(axis=-1)
        for request, label, row in zip(batch.requests, labels, logits):
            self.metrics.histogram("queue_wait_ms").observe(
                (batch.created_at - request.enqueued_at) * 1e3
            )
            self.metrics.histogram("e2e_latency_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            if request.deadline_at is not None and finished > request.deadline_at:
                # Never silently serve a late result: fail fast, typed.
                late_ms = (finished - request.deadline_at) * 1e3
                self._count_rejection(spec, "deadline")
                self._count_deadline_miss(spec, request.priority)
                request.set_exception(
                    DeadlineExceededError(
                        f"completed {late_ms:.1f} ms past the deadline "
                        f"({request.priority} request); result withheld"
                    ),
                    now=finished,
                )
                continue
            self.metrics.counter("responses_total").inc()
            request.set_result(
                ServeResult(int(label), row, len(batch), quantized), now=finished
            )

    # ------------------------------------------------------------------
    # Supervision, observability, shutdown
    def check_watchdog(self, now: float | None = None) -> list[str]:
        """Respawn shards that died while idle; returns affected specs.

        Busy shards are supervised inline by their dispatch thread (which
        also re-routes the in-flight batch); this sweep catches crashes
        that happen between batches, so a lane never waits for the next
        batch to discover it is down a replica.
        """
        with self._lock:
            if self._stopping:
                return []
            lanes = list(self._lanes.values())
        restarted = []
        for lane in lanes:
            if lane.is_quarantined():
                continue  # quarantined specs stay down until cleared
            with lane.lock:
                indices = sorted(lane.shards)
            for index in indices:
                with lane.lock:
                    shard = lane.shards.get(index)
                    fenced = index in lane.fenced
                if shard is None or fenced or shard.alive():
                    continue
                if not shard.lock.acquire(blocking=False):
                    continue  # its dispatch thread is already handling it
                try:
                    self._restart_shard(lane, index, reason="crash")
                    restarted.append(lane.key.spec)
                except Exception:
                    pass  # the dispatch thread will retry on next batch
                finally:
                    shard.lock.release()
        return restarted

    def registry_snapshot(self) -> dict:
        with self._lock:
            lanes = list(self._lanes.values())
        shards = {}
        for lane in lanes:
            with lane.lock:
                shards[lane.key.spec] = [
                    {
                        "index": index,
                        "alive": s.alive(),
                        "pid": s.pid,
                        "restarts": s.restarts,
                        "fenced": index in lane.fenced,
                    }
                    for index, s in sorted(lane.shards.items())
                ]
        return {
            "entries": [lane.key.spec for lane in lanes],
            "shards": shards,
            "size": len(lanes),
        }

    def snapshot(self) -> dict:
        """Consistent metrics + lane + shard view (same shape as
        :meth:`ServeEngine.snapshot`, with per-shard health added)."""
        lane_views: dict[str, dict] = {}
        with self._lock:
            for lane in self._lanes.values():
                with lane.lock:
                    stats = lane.scheduler.stats()
                    lane_views[lane.key.spec] = {
                        **stats,
                        "breaker": lane.breaker.snapshot(),
                        "watchdog_restarts": lane.restarts,
                        "in_flight": lane.in_flight,
                        "reroutes": lane.reroutes,
                        "degraded": self.clock() < lane.force_float_until,
                        "quarantined": lane.quarantined,
                        "shards": [
                            {
                                "index": index,
                                "alive": s.alive(),
                                "pid": s.pid,
                                "restarts": s.restarts,
                                "fenced": index in lane.fenced,
                            }
                            for index, s in sorted(lane.shards.items())
                        ],
                    }
        timeouts = sum(view["timed_out"] for view in lane_views.values())
        extra = {
            "registry": self.registry_snapshot(),
            "drift": {},
            "lanes": lane_views,
            "timeouts_total": timeouts,
        }
        if self.admission is not None:
            extra["admission"] = self.admission.snapshot()
        return self.metrics.snapshot(extra=extra)

    def drain(self, timeout: float = 30.0, wall_cap: float | None = None) -> bool:
        """Wait until every queue is empty and nothing is in flight
        (:func:`~repro.serve.timing.wait_until` dual-deadline semantics)."""
        def settled() -> bool:
            with self._lock:
                lanes = list(self._lanes.values())
            return not any(
                lane.scheduler.qsize() > 0 or lane.in_flight > 0 for lane in lanes
            )

        return wait_until(settled, self.clock, timeout, wall_cap)

    def stop(self) -> None:
        self._stopping = True
        with self._lock:
            # Idempotent: the segments are unmapped on the first stop, so a
            # second pass must not touch any (now dangling) ring view.
            if self._stopped:
                return
            self._stopped = True
            lanes = list(self._lanes.values())
        if self.faults is not None:
            self.faults.release_stalls()
        for lane in lanes:
            lane.scheduler.close()
        for lane in lanes:
            with lane.lock:
                threads = list(lane.threads.values())
            for thread in threads:
                thread.join(timeout=5.0)
        for lane in lanes:
            with lane.lock:
                shards = list(lane.shards.values())
                lane.shards = {}
                lane.threads = {}
                lane.fenced = set()
            for shard in shards:
                if shard.alive():
                    shard.views.ctrl[C_STOP] = 1
            for shard in shards:
                shard.process.join(timeout=1.0)
                shard.destroy()
            with lane.lock:
                pending = [r for b in lane.active for r in b.requests]
            for request in pending:
                if not request.done():
                    request.set_exception(
                        RuntimeError("cluster engine stopped before batch completed")
                    )

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
