"""Sharded multi-process serving: replica worker pools over shared memory.

The single-process :class:`~repro.serve.engine.ServeEngine` executes
batches on threads inside the serving process, which caps it at one GIL
and couples every model replica to the same address space: a crashed or
wedged replica is a crashed server.  :class:`ClusterEngine` moves batch
execution into *shard* processes — N replicas per ``ModelKey``, each a
forked worker owning its own copy of the servable — and keeps the
process-level concerns in the parent:

* **zero-copy hand-off** — each shard owns a ring of fixed-size slots in
  a :mod:`multiprocessing.shared_memory` segment; the parent writes the
  coalesced batch straight into the slot's image region and flips a
  status word, the shard reads the same mapped pages (no pickling, no
  pipe copy) and writes logits back into the slot's output region;
* **supervision** — shards heartbeat through a control word; a dispatch
  that sees the heartbeat go silent past ``watchdog_stall_s`` (or the
  process die) kills and respawns the shard and **re-routes the
  in-flight batch** to the replacement, bounded by ``max_redispatch``;
  :meth:`check_watchdog` additionally restarts shards that crash while
  idle, reusing the watchdog/backoff idioms of :mod:`repro.resilience`;
* **the same defense stack as the thread engine** — per-lane circuit
  breaker over the quantized path, numeric guard scan on every batch of
  logits, admission control (degrade ladder forces the float mode),
  deterministic fault injection (``stall`` faults are delivered *into*
  the shard through the slot header, so the worker genuinely stops
  heartbeating), and the identical metrics counter families, so the
  chaos-soak harness audits a process topology with unchanged code.

Slot protocol (all header words are aligned int64; single-writer
ownership alternates on the status word, which is written last on x86's
total-store-order — the parent never touches a slot the shard owns and
vice versa):

====== =============================================================
status owner / meaning
====== =============================================================
0      EMPTY — parent may fill
1      REQ   — shard executes (``len``, ``mode``, ``stall_ns`` valid)
2      RES   — parent collects logits (``classes``, ``quant`` valid)
3      ERR   — parent collects the UTF-8 error message (``msg_len``)
====== =============================================================

The fork start method is required: shard workers inherit the loader
callable and the shared-memory views by address-space copy, so any
closure (e.g. one returning a pre-built in-memory servable) is a valid
loader without being picklable.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np

from ..resilience import ResiliencePolicy
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import BATCH_EXCEPTION, STALL, FaultPlan
from ..resilience.guards import NumericGuard, NumericGuardError
from .admission import AdmissionController, LaneView
from .engine import ServeResult
from .metrics import Metrics
from .registry import ModelKey
from .scheduler import Batch, BatchPolicy, MicroBatchScheduler, QueueFullError, ServeRequest

__all__ = ["ClusterPolicy", "ClusterEngine", "default_shard_loader"]

# Slot status words (see the protocol table in the module docstring).
EMPTY, REQ, RES, ERR = 0, 1, 2, 3
# Execution modes the parent requests.
MODE_QUANT, MODE_FLOAT = 0, 1
# Header word indices.
H_STATUS, H_LEN, H_CLASSES, H_MODE, H_STALL_NS, H_QUANT, H_MSG_LEN, H_SEQ = range(8)
HEADER_WORDS = 8
# Control word indices (one control block per shard segment).
C_HEARTBEAT, C_READY, C_STOP = 0, 1, 2
CTRL_WORDS = 4
MSG_BYTES = 512  # UTF-8 error message region per slot

READY_OK, READY_FAILED = 1, -1


def default_shard_loader(spec: str):
    """Build a servable inside the shard via a fresh :class:`ModelRegistry`.

    Each shard process loads (or warm-starts from the serialized
    quantizer state on disk) its own replica — the production-shaped
    path.  Tests and benchmarks usually pass a closure over a pre-built
    servable instead, which fork shares copy-on-write for instant spawn.
    """
    from .registry import ModelRegistry

    return ModelRegistry().get(spec)


class ClusterPolicy:
    """Shape and supervision tunables for the shard pool."""

    def __init__(
        self,
        shards: int = 2,
        ring_slots: int = 2,
        image_hw: int = 16,
        channels: int = 3,
        max_classes: int = 64,
        ready_timeout_s: float = 120.0,
        poll_s: float = 0.0005,
        max_redispatch: int = 3,
    ):
        if shards < 1 or ring_slots < 1:
            raise ValueError("shards and ring_slots must be >= 1")
        if image_hw < 1 or channels < 1 or max_classes < 1:
            raise ValueError("image_hw, channels, max_classes must be >= 1")
        if ready_timeout_s <= 0 or poll_s <= 0 or max_redispatch < 0:
            raise ValueError(
                "ready_timeout_s and poll_s must be > 0, max_redispatch >= 0"
            )
        self.shards = shards
        self.ring_slots = ring_slots
        self.image_hw = image_hw
        self.channels = channels
        self.max_classes = max_classes
        self.ready_timeout_s = ready_timeout_s
        self.poll_s = poll_s
        self.max_redispatch = max_redispatch


class _RingViews:
    """NumPy views over one shard's shared-memory segment.

    Built in the parent; the shard inherits the same object through fork,
    so both sides address identical mapped pages.  Holding ``shm`` here
    keeps the mapping alive on both sides of the fork.
    """

    def __init__(self, shm, slots: int, max_batch: int, image_shape, max_classes: int):
        self.shm = shm
        self.slots = slots
        self.max_batch = max_batch
        self.image_shape = tuple(image_shape)
        self.max_classes = max_classes
        buf = shm.buf
        offset = 0

        def carve(dtype, shape):
            nonlocal offset
            arr = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
            offset += arr.nbytes
            # Keep every region 8-byte aligned so int64 header words stay
            # on natural boundaries (atomic aligned stores on x86/arm64).
            offset = (offset + 7) & ~7
            return arr

        self.ctrl = carve(np.int64, (CTRL_WORDS,))
        self.hdr = carve(np.int64, (slots, HEADER_WORDS))
        self.msg = carve(np.uint8, (slots, MSG_BYTES))
        self.images = carve(np.float32, (slots, max_batch) + self.image_shape)
        self.logits = carve(np.float32, (slots, max_batch, max_classes))
        self.nbytes = offset

    @classmethod
    def required_bytes(cls, slots, max_batch, image_shape, max_classes) -> int:
        words = CTRL_WORDS + slots * HEADER_WORDS
        per_slot = (
            MSG_BYTES
            + 4 * max_batch * int(np.prod(image_shape))
            + 4 * max_batch * max_classes
        )
        # Alignment padding upper bound: 8 bytes per carved region.
        return words * 8 + slots * per_slot + 8 * (4 + 2 * slots)

    def write_error(self, slot: int, message: str) -> None:
        data = message.encode("utf-8", errors="replace")[:MSG_BYTES]
        self.msg[slot][: len(data)] = np.frombuffer(data, dtype=np.uint8)
        self.hdr[slot][H_MSG_LEN] = len(data)

    def read_error(self, slot: int) -> str:
        length = int(self.hdr[slot][H_MSG_LEN])
        return bytes(self.msg[slot][:length]).decode("utf-8", errors="replace")


def _shard_main(spec: str, loader, views: _RingViews, poll_s: float) -> None:
    """Shard process body: load one replica, then serve the slot ring.

    Single-threaded by design — the heartbeat stops the moment the worker
    blocks (an injected ``stall_ns`` sleep, a wedged predict), which is
    precisely the signal the parent's supervision keys on.
    """
    # The parent supervises shards; a Ctrl-C on the terminal must not
    # race it by killing workers directly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ctrl, hdr = views.ctrl, views.hdr
    try:
        servable = loader(spec)
    except BaseException as error:  # report, then exit: the parent re-raises
        views.write_error(0, f"{type(error).__name__}: {error}")
        ctrl[C_READY] = READY_FAILED
        return
    ctrl[C_READY] = READY_OK
    slot = 0
    while not ctrl[C_STOP]:
        row = hdr[slot]
        if row[H_STATUS] != REQ:
            ctrl[C_HEARTBEAT] += 1
            time.sleep(poll_s)
            continue
        stall_ns = int(row[H_STALL_NS])
        if stall_ns > 0:
            # Injected stall: sleep without heartbeating so the parent's
            # staleness detector sees a genuinely silent shard.
            time.sleep(stall_ns / 1e9)
        ctrl[C_HEARTBEAT] += 1
        n = int(row[H_LEN])
        mode = int(row[H_MODE])
        # Zero-copy input: predict consumes the shared mapping directly;
        # the parent does not reuse the slot until the status word flips.
        images = views.images[slot][:n]
        try:
            if mode == MODE_FLOAT:
                logits = servable.predict_float(images)
                quantized = False
            else:
                logits = servable.predict(images)
                quantized = bool(servable.quantized)
            logits = np.asarray(logits, dtype=np.float32)
            if logits.ndim != 2 or logits.shape[0] != n:
                raise ValueError(f"model returned logits of shape {logits.shape}")
            classes = min(logits.shape[1], views.max_classes)
            views.logits[slot][:n, :classes] = logits[:, :classes]
            row[H_CLASSES] = classes
            row[H_QUANT] = int(quantized)
            row[H_STATUS] = RES
        except BaseException as error:
            views.write_error(slot, f"{type(error).__name__}: {error}")
            row[H_STATUS] = ERR
        ctrl[C_HEARTBEAT] += 1
        slot = (slot + 1) % views.slots


class _Shard:
    """Parent-side handle: process + segment + dispatch bookkeeping."""

    def __init__(self, index: int, process, shm, views: _RingViews):
        self.index = index
        self.process = process
        self.shm = shm
        self.views = views
        self.seq = 0  # batches dispatched; seq % slots is the next slot
        self.restarts = 0
        self.lock = threading.Lock()  # held by whoever operates the shard

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def destroy(self) -> None:
        """Kill the process and release the segment (idempotent)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:
            pass


class _ClusterLane:
    """Per-model-spec queue, shard pool, breaker, and in-flight ledger."""

    def __init__(self, key: ModelKey, scheduler: MicroBatchScheduler,
                 breaker: CircuitBreaker, shards: int):
        self.key = key
        self.scheduler = scheduler
        self.breaker = breaker
        self.shards: list[_Shard | None] = [None] * shards
        self.threads: list[threading.Thread] = []
        self.in_flight = 0
        self.active: list[Batch] = []
        self.reroutes = 0
        self.restarts = 0  # shard restarts, stall + crash combined
        self.force_float_until = 0.0
        self.lock = threading.Lock()

    def degraded(self, now: float) -> bool:
        with self.lock:
            return now < self.force_float_until

    def degrade(self, until: float) -> None:
        with self.lock:
            self.force_float_until = max(self.force_float_until, until)


class _RegistryView:
    """Duck-typed registry facade over the shard pools.

    The chaos-soak harness (and the loadgen snapshot formatter) expect an
    ``engine.registry`` with ``invalidate`` and a ``snapshot()["entries"]``
    listing; a cluster has no in-process model cache, so this reports the
    lanes whose shard pools are live.
    """

    def __init__(self, engine: "ClusterEngine"):
        self._engine = engine

    def invalidate(self, spec) -> bool:
        """Rolling restart of the spec's shards (the cluster analogue of
        dropping a cached entry: replicas reload from disk)."""
        return self._engine.restart_lane(spec)

    def snapshot(self) -> dict:
        return self._engine.registry_snapshot()


class ClusterEngine:
    """Sharded multi-process counterpart of :class:`ServeEngine`.

    Exposes the same operational surface (``warm`` / ``submit`` /
    ``check_watchdog`` / ``drain`` / ``stop`` / ``snapshot``, plus
    ``policy``, ``guard`` and a ``registry`` facade) so the load
    generator, the admission controller, and the chaos-soak harness run
    against either topology unchanged.
    """

    def __init__(
        self,
        loader=None,
        policy: BatchPolicy | None = None,
        cluster: ClusterPolicy | None = None,
        metrics: Metrics | None = None,
        clock=time.monotonic,
        resilience: ResiliencePolicy | None = None,
        faults: FaultPlan | None = None,
        admission: AdmissionController | None = None,
    ):
        self.loader = default_shard_loader if loader is None else loader
        self.policy = BatchPolicy() if policy is None else policy
        self.cluster = ClusterPolicy() if cluster is None else cluster
        self.metrics = Metrics() if metrics is None else metrics
        self.clock = clock
        self.resilience = ResiliencePolicy() if resilience is None else resilience
        self.faults = faults
        self.admission = admission
        if admission is not None:
            admission.attach_latency_probe(
                lambda: self.metrics.histogram("e2e_latency_ms").percentile(99)
            )
        self.guard = NumericGuard(saturation_limit=self.resilience.guard_saturation)
        self.registry = _RegistryView(self)
        self._ctx = multiprocessing.get_context("fork")
        self._lanes: dict[ModelKey, _ClusterLane] = {}
        self._lock = threading.Lock()
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Shard lifecycle
    def _spawn_shard(self, lane: _ClusterLane, index: int) -> _Shard:
        from multiprocessing import shared_memory

        shape = (self.cluster.image_hw, self.cluster.image_hw, self.cluster.channels)
        size = _RingViews.required_bytes(
            self.cluster.ring_slots, self.policy.max_batch_size,
            shape, self.cluster.max_classes,
        )
        shm = shared_memory.SharedMemory(create=True, size=size)
        views = _RingViews(
            shm, self.cluster.ring_slots, self.policy.max_batch_size,
            shape, self.cluster.max_classes,
        )
        views.ctrl[:] = 0
        views.hdr[:] = 0
        process = self._ctx.Process(
            target=_shard_main,
            args=(lane.key.spec, self.loader, views, self.cluster.poll_s),
            name=f"shard-{lane.key.slug}-{index}",
            daemon=True,
        )
        process.start()
        return _Shard(index, process, shm, views)

    def _await_ready(self, shard: _Shard) -> None:
        deadline = time.monotonic() + self.cluster.ready_timeout_s
        while time.monotonic() < deadline:
            state = int(shard.views.ctrl[C_READY])
            if state == READY_OK:
                return
            if state == READY_FAILED or not shard.alive():
                message = shard.views.read_error(0) or "shard died during load"
                shard.destroy()
                raise RuntimeError(
                    f"shard {shard.index} for {shard.process.name} failed to "
                    f"load: {message}"
                )
            time.sleep(self.cluster.poll_s)
        shard.destroy()
        raise TimeoutError(
            f"shard {shard.index} not ready within {self.cluster.ready_timeout_s}s"
        )

    def _restart_shard(self, lane: _ClusterLane, index: int, reason: str) -> _Shard:
        """Kill (if needed) and respawn one shard; counts the restart.

        ``reason`` is ``"stall"`` (heartbeat went silent — the watchdog
        family, so chaos-soak recovery evidence holds across topologies)
        or ``"crash"`` (process died).
        """
        spec = lane.key.spec
        old = lane.shards[index]
        if old is not None:
            old.destroy()
        shard = self._spawn_shard(lane, index)
        self._await_ready(shard)
        shard.restarts = (old.restarts + 1) if old is not None else 1
        with lane.lock:
            lane.shards[index] = shard
            lane.restarts += 1
        self.metrics.counter("shard_restarts_total").inc()
        self.metrics.counter("shard_restarts_total", labels={"spec": spec}).inc()
        if reason == "stall":
            self.metrics.counter("watchdog_restarts_total").inc()
            self.metrics.counter(
                "watchdog_restarts_total", labels={"spec": spec}
            ).inc()
        else:
            self.metrics.counter("shard_crashes_total").inc()
            self.metrics.counter("shard_crashes_total", labels={"spec": spec}).inc()
        return shard

    def kill_shard(self, spec: str | ModelKey, index: int = 0) -> int:
        """SIGKILL one shard process (chaos/testing hook); returns the pid.

        Supervision takes it from there: the dispatch thread (or
        :meth:`check_watchdog` if the shard was idle) respawns the shard
        and re-routes whatever batch was in flight on it.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes[key]
        with lane.lock:
            shard = lane.shards[index]
        if shard is None or not shard.alive():
            raise RuntimeError(f"shard {index} of {key.spec} is not running")
        pid = shard.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def restart_lane(self, spec: str | ModelKey) -> bool:
        """Rolling restart of every idle shard in a lane (registry
        ``invalidate`` analogue — replicas reload their artifacts)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            lane = self._lanes.get(key)
        if lane is None:
            return False
        restarted = False
        for index in range(len(lane.shards)):
            with lane.lock:
                shard = lane.shards[index]
            if shard is None:
                continue
            if shard.lock.acquire(blocking=False):  # skip busy shards
                try:
                    self._restart_shard(lane, index, reason="crash")
                    restarted = True
                finally:
                    shard.lock.release()
        return restarted

    # ------------------------------------------------------------------
    # Lane lifecycle
    def _lane(self, key: ModelKey) -> _ClusterLane:
        with self._lock:
            if self._stopping:
                raise RuntimeError("cluster engine is stopped")
            lane = self._lanes.get(key)
            if lane is not None:
                return lane
            lane = _ClusterLane(
                key,
                MicroBatchScheduler(
                    self.policy, clock=self.clock,
                    on_expire=lambda _req, spec=key.spec: self._count_rejection(
                        spec, "timeout"
                    ),
                ),
                CircuitBreaker(
                    failure_threshold=self.resilience.breaker_failures,
                    cooldown_s=self.resilience.breaker_cooldown_s,
                    clock=self.clock,
                ),
                shards=self.cluster.shards,
            )
            self._lanes[key] = lane
        for index in range(self.cluster.shards):
            shard = self._spawn_shard(lane, index)
            self._await_ready(shard)
            with lane.lock:
                lane.shards[index] = shard
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(lane, index),
                name=f"dispatch-{key.slug}-{index}",
                daemon=True,
            )
            lane.threads.append(thread)
            thread.start()
        return lane

    def warm(self, spec: str | ModelKey) -> None:
        """Spawn (and block until ready) the spec's shard pool."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        self._lane(key)

    # ------------------------------------------------------------------
    # Submission (same admission + metrics contract as ServeEngine)
    def _count_rejection(self, spec: str, reason: str) -> None:
        self.metrics.counter("rejected_total").inc()
        self.metrics.counter("rejected_total", labels={"spec": spec}).inc()
        self.metrics.counter("rejections_total", labels={"reason": reason}).inc()
        self.metrics.counter(
            "rejections_total", labels={"reason": reason, "spec": spec}
        ).inc()

    def submit(
        self, spec: str | ModelKey, image: np.ndarray, tenant: str = "default"
    ) -> ServeRequest:
        """Enqueue one image onto the spec's lane (see
        :meth:`ServeEngine.submit` for the admission/rejection contract)."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        lane = self._lane(key)
        image = np.asarray(image, dtype=np.float32)
        expected = (self.cluster.image_hw, self.cluster.image_hw, self.cluster.channels)
        if image.shape != expected:
            raise ValueError(
                f"image shape {image.shape} does not fit the cluster's shared "
                f"rings (expected {expected}; set ClusterPolicy.image_hw)"
            )
        if self.admission is not None:
            now = self.clock()
            decision = self.admission.decide(
                tenant,
                LaneView(
                    queue_depth=lane.scheduler.qsize(),
                    queue_capacity=self.policy.max_queue,
                    breaker_state=lane.breaker.state,
                ),
                now=now,
            )
            if not decision.admitted:
                self._count_rejection(key.spec, decision.reason)
                raise decision.error
            if decision.force_float:
                lane.degrade(now + self.admission.policy.degrade_hold_s)
        try:
            request = lane.scheduler.submit(image)
        except QueueFullError:
            self._count_rejection(key.spec, "queue_full")
            raise
        self.metrics.counter("requests_total").inc()
        self.metrics.counter("requests_total", labels={"spec": key.spec}).inc()
        self.metrics.distribution("queue_depth").observe(lane.scheduler.qsize())
        return request

    # ------------------------------------------------------------------
    # Dispatch: one parent thread per shard owns its batches end-to-end
    def _dispatch_loop(self, lane: _ClusterLane, index: int) -> None:
        while not self._stopping:
            with lane.lock:
                idle = lane.in_flight == 0
            batch = lane.scheduler.wait_for_batch(timeout=0.1, idle=idle)
            if batch is None:
                continue
            with lane.lock:
                lane.in_flight += 1
                lane.active.append(batch)
            try:
                self._run_batch(lane, index, batch)
            finally:
                with lane.lock:
                    lane.in_flight -= 1
                    if batch in lane.active:
                        lane.active.remove(batch)

    def _dispatch(self, shard: _Shard, batch: Batch, mode: int, stall_ns: int):
        """Write the batch into the shard's next slot and await the verdict.

        Returns ``("ok", logits, quantized)``, ``("error", message)``, or
        ``("lost", reason)`` — the latter when the shard died or went
        silent past the stall threshold, meaning the batch must be
        re-routed to a replacement shard.
        """
        views = shard.views
        slot = shard.seq % views.slots
        shard.seq += 1
        row = views.hdr[slot]
        if int(row[H_STATUS]) != EMPTY:
            # The previous incarnation died mid-protocol; reclaim the slot.
            row[H_STATUS] = EMPTY
        n = len(batch)
        views.images[slot][:n] = batch.images
        row[H_LEN] = n
        row[H_MODE] = mode
        row[H_STALL_NS] = stall_ns
        row[H_SEQ] = shard.seq
        row[H_STATUS] = REQ  # ownership hand-off: written last
        stall_after = self.resilience.watchdog_stall_s
        last_beat = int(views.ctrl[C_HEARTBEAT])
        last_change = time.monotonic()
        while True:
            status = int(row[H_STATUS])
            if status == RES:
                classes = int(row[H_CLASSES])
                logits = np.array(views.logits[slot][:n, :classes])
                quantized = bool(row[H_QUANT])
                row[H_STATUS] = EMPTY
                return ("ok", logits, quantized)
            if status == ERR:
                message = views.read_error(slot)
                row[H_STATUS] = EMPTY
                return ("error", message)
            if not shard.alive():
                return ("lost", "crash")
            beat = int(views.ctrl[C_HEARTBEAT])
            if beat != last_beat:
                last_beat = beat
                last_change = time.monotonic()
            elif time.monotonic() - last_change >= stall_after:
                return ("lost", "stall")
            if self._stopping:
                return ("error", "cluster engine stopped mid-batch")
            time.sleep(self.cluster.poll_s)

    def _fail_batch(self, lane: _ClusterLane, batch: Batch, error: BaseException) -> None:
        spec = lane.key.spec
        if isinstance(error, NumericGuardError):
            self.metrics.counter("guard_trips_total").inc()
            self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
        self.metrics.counter("errors_total").inc()
        self.metrics.counter("errors_total", labels={"spec": spec}).inc()
        now = self.clock()
        for request in batch.requests:
            request.set_exception(error, now=now)

    def _run_batch(self, lane: _ClusterLane, index: int, batch: Batch) -> None:
        spec = lane.key.spec
        started = self.clock()
        # Injected stall: delivered into the shard through the slot header
        # so the worker process itself goes silent (no parent-side sleep).
        stall_ns = 0
        if self.faults is not None:
            window = self.faults.fire(STALL, site=spec)
            if window is not None:
                stall_ns = int(window.stall_s * 1e9)
        degraded = lane.degraded(started)
        if degraded:
            self.metrics.counter("degraded_batches_total").inc()
            self.metrics.counter("degraded_batches_total", labels={"spec": spec}).inc()
        quantized_path = not degraded and lane.breaker.allow()
        mode = MODE_QUANT if quantized_path else MODE_FLOAT
        attempts = 0
        while True:
            if self._stopping:
                self._fail_batch(
                    lane, batch, RuntimeError("cluster engine stopped mid-batch")
                )
                return
            with lane.lock:
                shard = lane.shards[index]
            with shard.lock:
                if not shard.alive():
                    try:
                        shard = self._restart_shard(lane, index, reason="crash")
                    except Exception as error:
                        self._fail_batch(lane, batch, error)
                        return
                if mode == MODE_QUANT and self.faults is not None:
                    try:
                        self.faults.raise_if(BATCH_EXCEPTION, site=spec)
                    except Exception:
                        # Injected quantized-path failure: breaker + failover
                        # to float, identical to the thread engine.
                        lane.breaker.record_failure()
                        self.metrics.counter("failovers_total").inc()
                        self.metrics.counter(
                            "failovers_total", labels={"spec": spec}
                        ).inc()
                        mode = MODE_FLOAT
                        continue
                outcome = self._dispatch(shard, batch, mode, stall_ns)
                if outcome[0] == "lost":
                    # Respawn under the same shard lock as the dispatch so
                    # check_watchdog cannot race us into a double restart.
                    try:
                        self._restart_shard(lane, index, reason=outcome[1])
                    except Exception as error:
                        self._fail_batch(lane, batch, error)
                        return
            stall_ns = 0  # an injected stall fires at most once per batch
            kind = outcome[0]
            if kind == "lost":
                attempts += 1
                if attempts > self.cluster.max_redispatch:
                    self._fail_batch(lane, batch, RuntimeError(
                        f"batch abandoned after {attempts} shard losses "
                        f"(last: {outcome[1]})"
                    ))
                    return
                with lane.lock:
                    lane.reroutes += 1
                self.metrics.counter("reroutes_total").inc()
                self.metrics.counter("reroutes_total", labels={"spec": spec}).inc()
                continue
            if kind == "error":
                message = outcome[1]
                if mode == MODE_QUANT:
                    lane.breaker.record_failure()
                    self.metrics.counter("failovers_total").inc()
                    self.metrics.counter("failovers_total", labels={"spec": spec}).inc()
                    mode = MODE_FLOAT
                    continue
                self._fail_batch(lane, batch, RuntimeError(f"shard error: {message}"))
                return
            _, logits, quantized = outcome
            if mode == MODE_QUANT and self.faults is not None:
                logits = self.faults.corrupt_logits(logits, site=spec)
            verdict = self.guard.scan(logits)
            if not verdict.ok:
                if mode == MODE_QUANT:
                    lane.breaker.record_failure()
                    self.metrics.counter("failovers_total").inc()
                    self.metrics.counter("failovers_total", labels={"spec": spec}).inc()
                    self.metrics.counter("guard_trips_total").inc()
                    self.metrics.counter("guard_trips_total", labels={"spec": spec}).inc()
                    mode = MODE_FLOAT
                    continue
                self._fail_batch(lane, batch, NumericGuardError(verdict.reason))
                return
            if mode == MODE_QUANT:
                lane.breaker.record_success()
            self._complete_batch(lane, batch, logits, quantized and mode == MODE_QUANT, started)
            return

    def _complete_batch(
        self, lane, batch: Batch, logits: np.ndarray, quantized: bool, started: float
    ) -> None:
        finished = self.clock()
        self.metrics.counter("batches_total").inc()
        self.metrics.distribution("batch_size").observe(len(batch))
        self.metrics.histogram("exec_latency_ms").observe((finished - started) * 1e3)
        labels = logits.argmax(axis=-1)
        for request, label, row in zip(batch.requests, labels, logits):
            self.metrics.histogram("queue_wait_ms").observe(
                (batch.created_at - request.enqueued_at) * 1e3
            )
            self.metrics.histogram("e2e_latency_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            self.metrics.counter("responses_total").inc()
            request.set_result(
                ServeResult(int(label), row, len(batch), quantized), now=finished
            )

    # ------------------------------------------------------------------
    # Supervision, observability, shutdown
    def check_watchdog(self, now: float | None = None) -> list[str]:
        """Respawn shards that died while idle; returns affected specs.

        Busy shards are supervised inline by their dispatch thread (which
        also re-routes the in-flight batch); this sweep catches crashes
        that happen between batches, so a lane never waits for the next
        batch to discover it is down a replica.
        """
        with self._lock:
            if self._stopping:
                return []
            lanes = list(self._lanes.values())
        restarted = []
        for lane in lanes:
            for index in range(len(lane.shards)):
                with lane.lock:
                    shard = lane.shards[index]
                if shard is None or shard.alive():
                    continue
                if not shard.lock.acquire(blocking=False):
                    continue  # its dispatch thread is already handling it
                try:
                    self._restart_shard(lane, index, reason="crash")
                    restarted.append(lane.key.spec)
                except Exception:
                    pass  # the dispatch thread will retry on next batch
                finally:
                    shard.lock.release()
        return restarted

    def registry_snapshot(self) -> dict:
        with self._lock:
            lanes = list(self._lanes.values())
        shards = {}
        for lane in lanes:
            with lane.lock:
                shards[lane.key.spec] = [
                    {
                        "alive": s.alive() if s is not None else False,
                        "pid": s.pid if s is not None else None,
                        "restarts": s.restarts if s is not None else 0,
                    }
                    for s in lane.shards
                ]
        return {
            "entries": [lane.key.spec for lane in lanes],
            "shards": shards,
            "size": len(lanes),
        }

    def snapshot(self) -> dict:
        """Consistent metrics + lane + shard view (same shape as
        :meth:`ServeEngine.snapshot`, with per-shard health added)."""
        lane_views: dict[str, dict] = {}
        with self._lock:
            for lane in self._lanes.values():
                with lane.lock:
                    stats = lane.scheduler.stats()
                    lane_views[lane.key.spec] = {
                        **stats,
                        "breaker": lane.breaker.snapshot(),
                        "watchdog_restarts": lane.restarts,
                        "in_flight": lane.in_flight,
                        "reroutes": lane.reroutes,
                        "degraded": self.clock() < lane.force_float_until,
                        "shards": [
                            {
                                "alive": s.alive() if s is not None else False,
                                "pid": s.pid if s is not None else None,
                                "restarts": s.restarts if s is not None else 0,
                            }
                            for s in lane.shards
                        ],
                    }
        timeouts = sum(view["timed_out"] for view in lane_views.values())
        extra = {
            "registry": self.registry_snapshot(),
            "drift": {},
            "lanes": lane_views,
            "timeouts_total": timeouts,
        }
        if self.admission is not None:
            extra["admission"] = self.admission.snapshot()
        return self.metrics.snapshot(extra=extra)

    def drain(self, timeout: float = 30.0, wall_cap: float | None = None) -> bool:
        deadline = self.clock() + timeout
        wall_deadline = time.monotonic() + (timeout if wall_cap is None else wall_cap)
        while self.clock() < deadline and time.monotonic() < wall_deadline:
            with self._lock:
                lanes = list(self._lanes.values())
            busy = any(
                lane.scheduler.qsize() > 0 or lane.in_flight > 0 for lane in lanes
            )
            if not busy:
                return True
            time.sleep(0.002)
        return False

    def stop(self) -> None:
        self._stopping = True
        with self._lock:
            # Idempotent: the segments are unmapped on the first stop, so a
            # second pass must not touch any (now dangling) ring view.
            if self._stopped:
                return
            self._stopped = True
            lanes = list(self._lanes.values())
        if self.faults is not None:
            self.faults.release_stalls()
        for lane in lanes:
            lane.scheduler.close()
        for lane in lanes:
            for thread in lane.threads:
                thread.join(timeout=5.0)
        for lane in lanes:
            with lane.lock:
                shards = [s for s in lane.shards if s is not None]
                lane.shards = [None] * len(lane.shards)
            for shard in shards:
                if shard.alive():
                    shard.views.ctrl[C_STOP] = 1
            for shard in shards:
                shard.process.join(timeout=1.0)
                shard.destroy()
            with lane.lock:
                pending = [r for b in lane.active for r in b.requests]
            for request in pending:
                if not request.done():
                    request.set_exception(
                        RuntimeError("cluster engine stopped before batch completed")
                    )

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
