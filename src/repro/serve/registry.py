"""Model registry: calibrated PTQ pipelines as named, cached artifacts.

A deployable model is addressed by a spec string ``model/method/bits``
(optionally ``/coverage``), e.g. ``vit_s/quq/6`` — paper model names
resolve through the mini zoo, zoo names are accepted directly, and the
method ``fp32`` serves the float model unquantized.

``get()`` loads on first use (training the zoo model if its checkpoint is
missing, then calibrating the PTQ pipeline) and serves warm thereafter
from an LRU cache.  The fitted quantizer state is serialized next to the
model cache (:mod:`repro.quant.serialize`), so a fresh registry — e.g.
after a process restart — warm-starts the pipeline from disk instead of
re-running calibration.  If quantization fails for any reason the entry
degrades gracefully to the float model and records why.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..autograd import Tensor, no_grad
from ..backend import BACKEND_NAMES, make_backend
from ..data import calibration_set, make_splits
from ..kernels import active_kernels as _active_kernels
from ..kernels import kernels_snapshot as _kernels_snapshot
from ..models import MINI_CONFIGS, MINI_FOR_PAPER, get_trained_model
from ..models.cnn import CNN_MINI
from ..models.zoo import DATASET_SPEC, cache_dir
from ..quant.qmodel import METHODS, PTQPipeline
from ..quant.serialize import ChecksumError
from ..resilience.faults import CORRUPT_STATE, LOAD_ERROR, tamper_quantizer_state

__all__ = ["ModelKey", "ServableModel", "ModelRegistry"]

_SERVABLE_METHODS = METHODS + ("fp32",)


@dataclass(frozen=True)
class ModelKey:
    """Parsed identity of one deployable artifact."""

    model: str  # mini-zoo model name
    method: str
    bits: int
    coverage: str = "full"
    backend: str = "float"

    @classmethod
    def parse(cls, spec: str) -> "ModelKey":
        """Parse ``model/method/bits[/coverage[/backend]]``.

        E.g. ``vit_s/quq/6`` (float fake-quant serving, the default) or
        ``vit_s/quq/6/full/int`` (integer-native backend).
        """
        parts = spec.strip().strip("/").split("/")
        if len(parts) not in (3, 4, 5):
            raise ValueError(
                f"bad model spec {spec!r}; "
                "expected model/method/bits[/coverage[/backend]]"
            )
        model, method, bits = parts[0], parts[1], parts[2]
        coverage = parts[3] if len(parts) >= 4 else "full"
        backend = parts[4] if len(parts) == 5 else "float"
        model = MINI_FOR_PAPER.get(model, model)
        if model not in MINI_CONFIGS and model != CNN_MINI.name:
            known = sorted(MINI_FOR_PAPER) + sorted(MINI_CONFIGS) + [CNN_MINI.name]
            raise ValueError(f"unknown model {parts[0]!r}; choices: {known}")
        if method not in _SERVABLE_METHODS:
            raise ValueError(
                f"unknown method {method!r}; choices: {_SERVABLE_METHODS}"
            )
        try:
            bits_value = int(bits)
        except ValueError:
            raise ValueError(f"bits must be an integer, got {bits!r}") from None
        if str(bits_value) != bits:
            raise ValueError(
                f"bits must be a plain decimal integer (no padding or sign), "
                f"got {bits!r}"
            )
        # fp32 ignores the width for quantization but conventionally reads
        # as the float width, so "vit_s/fp32/32" stays a valid spec.
        ceiling = 32 if method == "fp32" else 16
        if not 1 <= bits_value <= ceiling:
            raise ValueError(
                f"bits must be between 1 and {ceiling} for method {method!r}, "
                f"got {bits_value}"
            )
        if coverage not in ("partial", "full"):
            raise ValueError(f"coverage must be partial|full, got {coverage!r}")
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {'|'.join(BACKEND_NAMES)}, got {backend!r}"
            )
        if backend == "int":
            if method != "quq":
                raise ValueError(
                    f"the int backend requires method quq, got {method!r}"
                )
            if coverage != "full":
                raise ValueError(
                    "the int backend requires full coverage (every GEMM tap "
                    f"must be quantized), got {coverage!r}"
                )
        return cls(model, method, bits_value, coverage, backend)

    @property
    def spec(self) -> str:
        base = f"{self.model}/{self.method}/{self.bits}/{self.coverage}"
        # The default backend is elided so pre-backend specs round-trip.
        return base if self.backend == "float" else f"{base}/{self.backend}"

    @property
    def slug(self) -> str:
        base = f"{self.model}-{self.method}-{self.bits}-{self.coverage}"
        return base if self.backend == "float" else f"{base}-{self.backend}"


class ServableModel:
    """A loaded (and, when possible, quantized) model ready for batches."""

    def __init__(
        self,
        key: ModelKey,
        model,
        fp32_top1: float,
        pipeline: PTQPipeline | None,
        fallback_reason: str | None = None,
        fingerprints: dict | None = None,
        backend=None,
    ):
        self.key = key
        self.model = model
        self.fp32_top1 = fp32_top1
        self.pipeline = pipeline
        self.fallback_reason = fallback_reason
        # Serving backend (repro.backend.ServingBackend).  None preserves
        # the legacy inline forward path for directly-constructed
        # servables; registry-built entries always carry one.
        self.backend = backend
        # Calibration fingerprints (repro.quant.drift.TapFingerprint by
        # tap name) recorded when the pipeline was calibrated; the drift
        # monitor compares live traffic against them.
        self.fingerprints = fingerprints
        self._lock = threading.Lock()

    @property
    def quantized(self) -> bool:
        return self.pipeline is not None

    def predict(self, images: np.ndarray, recorder=None) -> np.ndarray:
        """Logits for a batch; serialized so one model runs one batch at a time.

        ``recorder`` (a :class:`~repro.quant.drift.TapStatsRecorder`)
        samples live activation statistics at every quantized tap for the
        duration of this forward pass only — attached and detached under
        the lock, so concurrent predicts never see another batch's hook.
        """
        with self._lock:
            if self.backend is not None:
                return self.backend.predict(images, recorder=recorder)
            if recorder is None or self.pipeline is None:
                return self._forward(images)
            self.pipeline.env.stats_recorder = recorder
            try:
                return self._forward(images)
            finally:
                self.pipeline.env.stats_recorder = None

    def predict_float(self, images: np.ndarray) -> np.ndarray:
        """Logits through the float weights, quantization detached.

        The circuit breaker and the numeric guard fail over to this path:
        the same model answers, minus the (possibly misbehaving) quantized
        artifact.  The pipeline is re-attached before the lock is
        released, so interleaved ``predict`` calls still see it.
        """
        with self._lock:
            if self.pipeline is None:
                return self._forward(images)
            self.pipeline.detach()
            try:
                return self._forward(images)
            finally:
                self.pipeline.attach()

    def _forward(self, images: np.ndarray) -> np.ndarray:
        self.model.eval()
        with no_grad():
            return self.model(Tensor(images)).data


class ModelRegistry:
    """LRU cache of :class:`ServableModel` keyed by spec, warm-startable."""

    def __init__(
        self,
        capacity: int = 2,
        artifact_dir: str | Path | None = None,
        loader=None,
        calib_provider=None,
        hessian: bool = False,
        retry=None,
        faults=None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.artifact_dir = Path(artifact_dir) if artifact_dir else cache_dir() / "serve"
        self._loader = loader or (lambda name: get_trained_model(name, verbose=True))
        self._calib_provider = calib_provider
        self._hessian = hessian
        self._retry = retry  # resilience.RetryPolicy for transient loads
        self._faults = faults  # resilience.FaultPlan (chaos testing only)
        self._calib: np.ndarray | None = None
        self._entries: "OrderedDict[ModelKey, ServableModel]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "warm_loads": 0,
            "calibrations": 0,
            "fallbacks": 0,
            "retries": 0,
            "load_failures": 0,
            "checksum_rejects": 0,
            "swaps": 0,
        }

    # ------------------------------------------------------------------
    def _calibration_images(self) -> np.ndarray:
        if self._calib is None:
            if self._calib_provider is not None:
                self._calib = np.asarray(self._calib_provider())
            else:
                train_set, _ = make_splits(**DATASET_SPEC)
                self._calib = calibration_set(train_set, 32)
        return self._calib

    def state_path(self, key: ModelKey) -> Path:
        return self.artifact_dir / f"{key.slug}.quantizers.npz"

    def _load_model(self, key: ModelKey):
        """Run the loader under the retry policy (and the fault plan)."""

        def attempt():
            if self._faults is not None:
                self._faults.raise_if(LOAD_ERROR, site=key.spec)
            return self._loader(key.model)

        def on_retry(error, attempt_index, delay):
            self.stats["retries"] += 1

        try:
            if self._retry is None:
                return attempt()
            return self._retry.call(attempt, on_retry=on_retry)
        except Exception:
            self.stats["load_failures"] += 1
            raise

    def _fingerprints_for(self, pipeline: PTQPipeline) -> dict | None:
        """Calibration fingerprints for drift monitoring (best effort)."""
        from ..quant.drift import fingerprint_pipeline

        try:
            return fingerprint_pipeline(pipeline, self._calibration_images())
        except Exception:
            return None  # fingerprinting is observability, never a blocker

    def _make_backend(self, key: ModelKey, model, pipeline):
        """Serving backend for an entry (int packs weights at build time)."""
        return make_backend(key.backend, model, pipeline, bits=key.bits)

    def _build(self, key: ModelKey) -> ServableModel:
        model, fp32 = self._load_model(key)
        if key.method == "fp32":
            return ServableModel(
                key, model, fp32, pipeline=None,
                backend=make_backend("float", model, None),
            )
        try:
            pipeline = PTQPipeline(
                model, method=key.method, bits=key.bits, coverage=key.coverage
            )
            state = self.state_path(key)
            if state.exists():
                if self._faults is not None and (
                    self._faults.fire(CORRUPT_STATE, site=key.spec) is not None
                ):
                    tamper_quantizer_state(state, seed=key.bits)
                try:
                    # require_checksum: a legacy archive with no checksum
                    # cannot prove it is uncorrupted, so the serving path
                    # recalibrates (which re-saves it checksummed) instead
                    # of trusting it.
                    pipeline.load_quantizers(state, require_checksum=True)
                    self.stats["warm_loads"] += 1
                    return ServableModel(
                        key, model, fp32, pipeline,
                        fingerprints=self._fingerprints_for(pipeline),
                        backend=self._make_backend(key, model, pipeline),
                    )
                except ChecksumError:
                    # Corrupt (or unverifiable) artifact: reject it and fall
                    # through to a fresh calibration rather than serving
                    # silent garbage.
                    self.stats["checksum_rejects"] += 1
                    state.unlink(missing_ok=True)
                except Exception:
                    state.unlink(missing_ok=True)  # stale/corrupt: recalibrate
            pipeline.calibrate(self._calibration_images())
            if self._hessian:
                from ..quant.hessian import hessian_refine

                hessian_refine(pipeline, self._calibration_images())
            self.stats["calibrations"] += 1
            pipeline.save_quantizers(state)
            return ServableModel(
                key, model, fp32, pipeline,
                fingerprints=self._fingerprints_for(pipeline),
                backend=self._make_backend(key, model, pipeline),
            )
        except Exception as error:  # degrade to float rather than failing
            self.stats["fallbacks"] += 1
            model.set_tap_dispatcher(None)
            reason = f"{type(error).__name__}: {error}"
            return ServableModel(
                key, model, fp32, None, fallback_reason=reason,
                backend=make_backend("float", model, None),
            )

    # ------------------------------------------------------------------
    def get(self, spec: str | ModelKey) -> ServableModel:
        """Fetch (loading/calibrating on miss) and mark most recently used."""
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats["hits"] += 1
                self._entries.move_to_end(key)
                return entry
            self.stats["misses"] += 1
            entry = self._build(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1
            return entry

    def invalidate(self, spec: str | ModelKey) -> bool:
        """Drop a cached entry so the next ``get`` rebuilds from disk.

        Safe under live traffic: serving lanes resolve their
        :class:`ServableModel` through ``get`` on *every* batch, so a lane
        picks up the rebuilt entry on its next batch — an in-flight batch
        finishes on the old object (which stays valid until
        garbage-collected), and nothing holds a stale reference beyond
        that.  Operational escape hatch (and the chaos harness's way to
        force a reload through a corrupted artifact).  Returns whether an
        entry was actually dropped.
        """
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            return self._entries.pop(key, None) is not None

    def shadow_build(self, key: ModelKey, calib_images: np.ndarray) -> ServableModel:
        """Build a replacement entry calibrated on ``calib_images`` without
        touching the cache.

        The recalibration manager uses this to recalibrate *in the shadow*
        of live traffic: a fresh model instance is loaded and calibrated
        while the cached entry keeps serving, canary-validated by the
        caller, and only then installed via :meth:`swap`.
        """
        if key.method == "fp32":
            raise ValueError("fp32 entries have no quantizer to recalibrate")
        model, fp32 = self._load_model(key)
        pipeline = PTQPipeline(
            model, method=key.method, bits=key.bits, coverage=key.coverage
        )
        pipeline.calibrate(np.asarray(calib_images))
        if self._hessian:
            from ..quant.hessian import hessian_refine

            hessian_refine(pipeline, np.asarray(calib_images))
        self.stats["calibrations"] += 1
        from ..quant.drift import fingerprint_pipeline

        fingerprints = fingerprint_pipeline(pipeline, np.asarray(calib_images))
        # A fresh backend per shadow build: for the int backend this is
        # what re-packs the QUB weight buffers under the new calibration.
        return ServableModel(
            key, model, fp32, pipeline, fingerprints=fingerprints,
            backend=self._make_backend(key, model, pipeline),
        )

    def swap(self, key: ModelKey, servable: ServableModel, persist: bool = True) -> None:
        """Atomically install ``servable`` as the cache entry for ``key``.

        Lanes resolve through ``get`` every batch, so the very next batch
        serves the replacement; ``persist`` re-serializes its quantizer
        state so a restart warm-starts from the swapped-in calibration.
        """
        if servable.key != key:
            raise ValueError(f"servable is for {servable.key.spec}, not {key.spec}")
        with self._lock:
            self._entries[key] = servable
            self._entries.move_to_end(key)
            self.stats["swaps"] += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1
        if persist and servable.pipeline is not None:
            try:
                servable.pipeline.save_quantizers(self.state_path(key))
            except Exception:
                pass  # persistence is best effort; the swap already served

    def __contains__(self, spec: str | ModelKey) -> bool:
        key = ModelKey.parse(spec) if isinstance(spec, str) else spec
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Stats dict (JSON-serializable) including the cache hit rate."""
        with self._lock:
            lookups = self.stats["hits"] + self.stats["misses"]
            return {
                **self.stats,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": round(self.stats["hits"] / lookups, 4) if lookups else 0.0,
                "entries": [key.spec for key in self._entries],
                # Per-model weight-cache stats (repro.quant.observers): the
                # hot-path optimisation that replays pre-quantized weights.
                "weight_cache": {
                    key.spec: servable.pipeline.weight_cache_info()
                    for key, servable in self._entries.items()
                    if servable.pipeline is not None
                },
                # Per-model serving backend: name, packed/float weight
                # bytes, and the backend's own batch/kernel counters.
                "backends": {
                    key.spec: servable.backend.describe()
                    for key, servable in self._entries.items()
                    if servable.backend is not None
                },
                # Process-wide kernel registry configuration: which
                # variant serves each op and any REPRO_KERNELS override.
                # Deliberately no dispatch/cache counters here — they are
                # cumulative process-global state, and registry snapshots
                # must be deterministic for equal serving histories (the
                # recovery-curve harness byte-compares them).  Counters
                # live in the perf-bench report's "kernels" section.
                "kernels": {
                    "selected": _active_kernels(),
                    "override": _kernels_snapshot()["override"],
                },
            }
