"""Swin Transformer: windowed attention with shifted windows.

Implements the hierarchical architecture of Liu et al. (ICCV 2021) on top of
:mod:`repro.nn`: window-partitioned multi-head attention with relative
position bias, cyclic-shifted windows with the standard additive attention
mask, and patch merging between stages.  All activation boundaries carry the
same quantization taps as the columnar ViT blocks.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, masked_fill, roll, softmax, take
from ..nn import LayerNorm, Linear, Mlp, Module, ModuleList, PatchEmbedding
from ..nn.init import trunc_normal
from ..nn.module import Parameter
from .configs import SwinConfig

__all__ = ["SwinTransformer", "WindowAttention", "SwinBlock", "PatchMerging", "build_swin"]


def _relative_position_index(window_size: int) -> np.ndarray:
    """Pairwise relative-position index into the bias table, shape (ws^2, ws^2)."""
    coords = np.stack(
        np.meshgrid(np.arange(window_size), np.arange(window_size), indexing="ij")
    )  # (2, ws, ws)
    flat = coords.reshape(2, -1)  # (2, ws^2)
    relative = flat[:, :, None] - flat[:, None, :]  # (2, ws^2, ws^2)
    relative = relative.transpose(1, 2, 0) + (window_size - 1)
    return relative[:, :, 0] * (2 * window_size - 1) + relative[:, :, 1]


def _window_partition(x: Tensor, window: int) -> Tensor:
    """(B, H, W, C) -> (B * nW, window*window, C)."""
    b, h, w, c = x.shape
    x = x.reshape(b, h // window, window, w // window, window, c)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(-1, window * window, c)


def _window_reverse(x: Tensor, window: int, h: int, w: int) -> Tensor:
    """(B * nW, window*window, C) -> (B, H, W, C)."""
    nw = (h // window) * (w // window)
    b = x.shape[0] // nw
    c = x.shape[-1]
    x = x.reshape(b, h // window, w // window, window, window, c)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(b, h, w, c)


def _shift_attention_mask(resolution: int, window: int, shift: int) -> np.ndarray:
    """Boolean mask (nW, ws^2, ws^2): True where attention must be blocked."""
    img_mask = np.zeros((resolution, resolution), dtype=np.int64)
    slices = (slice(0, -window), slice(-window, -shift), slice(-shift, None))
    region = 0
    for hs in slices:
        for ws in slices:
            img_mask[hs, ws] = region
            region += 1
    # Partition the region map into windows.
    m = img_mask.reshape(
        resolution // window, window, resolution // window, window
    ).transpose(0, 2, 1, 3).reshape(-1, window * window)
    return m[:, :, None] != m[:, None, :]


class WindowAttention(Module):
    """Multi-head attention inside a window, with relative position bias."""

    def __init__(
        self,
        dim: int,
        window_size: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.window_size = window_size
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = self.head_dim**-0.5

        rng = rng if rng is not None else np.random.default_rng(0)
        table_size = (2 * window_size - 1) ** 2
        self.relative_bias_table = Parameter(
            trunc_normal((table_size, num_heads), rng)
        )
        self._relative_index = _relative_position_index(window_size)

        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.last_attention: np.ndarray | None = None

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        bw, n, c = x.shape  # bw = batch * num_windows, n = window^2
        qkv = self.qkv(x)
        qkv = qkv.reshape(bw, n, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]

        q = self.tap("q", q)
        k = self.tap("k", k)
        scores = (q @ k.swapaxes(-1, -2)) * self.scale

        bias = take(self.relative_bias_table, self._relative_index.reshape(-1))
        bias = bias.reshape(n, n, self.num_heads).transpose(2, 0, 1)
        scores = scores + bias.reshape(1, self.num_heads, n, n)

        if mask is not None:
            num_windows = mask.shape[0]
            scores = scores.reshape(bw // num_windows, num_windows, self.num_heads, n, n)
            scores = masked_fill(scores, mask[None, :, None, :, :], -100.0)
            scores = scores.reshape(bw, self.num_heads, n, n)

        scores = self.tap("scores", scores)
        probs = softmax(scores, axis=-1)
        self.last_attention = probs.data.copy()
        probs = self.tap("probs", probs)

        v = self.tap("v", v)
        out = probs @ v
        out = out.transpose(0, 2, 1, 3).reshape(bw, n, c)
        return self.proj(out)


class SwinBlock(Module):
    """W-MSA / SW-MSA block over tokens laid out as a square grid."""

    def __init__(
        self,
        dim: int,
        resolution: int,
        num_heads: int,
        window_size: int,
        shift: int,
        mlp_ratio: float = 4.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if resolution <= window_size:
            # Window covers the whole grid: no point shifting, shrink window.
            window_size = resolution
            shift = 0
        if shift >= window_size:
            raise ValueError(f"shift {shift} must be < window {window_size}")
        self.resolution = resolution
        self.window_size = window_size
        self.shift = shift

        self.norm1 = LayerNorm(dim)
        self.attn = WindowAttention(dim, window_size, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio), rng=rng)
        self._mask = (
            _shift_attention_mask(resolution, window_size, shift) if shift else None
        )

    def forward(self, x: Tensor) -> Tensor:
        b, length, c = x.shape
        res = self.resolution
        if length != res * res:
            raise ValueError(f"expected {res * res} tokens, got {length}")

        x = self.tap("block_input", x)
        shortcut = x
        x = self.norm1(x)
        grid = x.reshape(b, res, res, c)
        if self.shift:
            grid = roll(grid, (-self.shift, -self.shift), (1, 2))
        windows = _window_partition(grid, self.window_size)
        windows = self.attn(windows, mask=self._mask)
        grid = _window_reverse(windows, self.window_size, res, res)
        if self.shift:
            grid = roll(grid, (self.shift, self.shift), (1, 2))
        branch = grid.reshape(b, length, c)
        branch = self.tap("attn_residual", branch)
        x = shortcut + branch

        x = self.tap("mid_input", x)
        branch = self.mlp(self.norm2(x))
        branch = self.tap("mlp_residual", branch)
        return x + branch


class PatchMerging(Module):
    """Downsample 2x: concatenate 2x2 neighbours, LayerNorm, project to 2C."""

    def __init__(self, dim: int, resolution: int, rng: np.random.Generator | None = None):
        super().__init__()
        if resolution % 2:
            raise ValueError(f"resolution {resolution} must be even to merge")
        self.dim = dim
        self.resolution = resolution
        self.norm = LayerNorm(4 * dim)
        self.reduction = Linear(4 * dim, 2 * dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, length, c = x.shape
        res = self.resolution
        x = self.tap("merge_norm_input", x)
        grid = x.reshape(b, res // 2, 2, res // 2, 2, c)
        grid = grid.transpose(0, 1, 3, 2, 4, 5)
        merged = grid.reshape(b, (res // 2) ** 2, 4 * c)
        return self.reduction(self.norm(merged))


class SwinTransformer(Module):
    """Hierarchical Swin transformer for image classification."""

    def __init__(self, config: SwinConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config

        self.patch_embed = PatchEmbedding(
            config.image_size, config.patch_size, config.in_channels,
            config.embed_dim, rng=rng,
        )
        self.stages = ModuleList()
        self.merges = ModuleList()
        for stage in range(config.num_stages):
            dim = config.stage_dim(stage)
            resolution = config.stage_resolution(stage)
            blocks = ModuleList()
            for i in range(config.depths[stage]):
                shift = 0 if i % 2 == 0 else config.window_size // 2
                blocks.append(
                    SwinBlock(
                        dim, resolution, config.num_heads[stage],
                        config.window_size, shift, config.mlp_ratio, rng=rng,
                    )
                )
            self.stages.append(blocks)
            if stage < config.num_stages - 1:
                self.merges.append(PatchMerging(dim, resolution, rng=rng))

        final_dim = config.stage_dim(config.num_stages - 1)
        self.norm = LayerNorm(final_dim)
        self.head = Linear(final_dim, config.num_classes, rng=rng)
        self.assign_tap_names(prefix=f"{config.name}.")

    def features(self, images: Tensor) -> Tensor:
        x = self.patch_embed(images)
        for stage, blocks in enumerate(self.stages):
            for block in blocks:
                x = block(x)
            if stage < len(self.merges):
                x = self.merges[stage](x)
        x = self.tap("final_norm_input", x)
        return self.norm(x)

    def forward(self, images: Tensor) -> Tensor:
        tokens = self.features(images)
        pooled = tokens.mean(axis=1)
        return self.head(pooled)

    def attention_maps(self) -> list[np.ndarray]:
        """Window-attention probabilities from the most recent forward."""
        maps = []
        for blocks in self.stages:
            for block in blocks:
                if block.attn.last_attention is None:
                    raise RuntimeError(
                        "run a forward pass before reading attention maps"
                    )
                maps.append(block.attn.last_attention)
        return maps


def build_swin(config: SwinConfig, seed: int = 0) -> SwinTransformer:
    """Construct a Swin transformer from a config."""
    return SwinTransformer(config, seed=seed)
