"""Vision transformer model substrate (ViT, DeiT, Swin)."""

from .configs import (
    MINI_CONFIGS,
    MINI_FOR_PAPER,
    PAPER_CONFIGS,
    ModelConfig,
    SwinConfig,
    get_config,
)
from .cnn import CNN_MINI, CNNConfig, MiniConvNet, build_cnn
from .vit import VisionTransformer, build_vit
from .swin import PatchMerging, SwinBlock, SwinTransformer, WindowAttention, build_swin
from .zoo import DATASET_SPEC, build_model, cache_dir, get_trained_model

__all__ = [
    "ModelConfig",
    "SwinConfig",
    "MINI_CONFIGS",
    "PAPER_CONFIGS",
    "MINI_FOR_PAPER",
    "get_config",
    "VisionTransformer",
    "build_vit",
    "CNNConfig",
    "CNN_MINI",
    "MiniConvNet",
    "build_cnn",
    "SwinTransformer",
    "SwinBlock",
    "WindowAttention",
    "PatchMerging",
    "build_swin",
    "build_model",
    "get_trained_model",
    "cache_dir",
    "DATASET_SPEC",
]
