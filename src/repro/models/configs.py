"""Model configuration registry.

Two families of configurations coexist:

* ``PAPER_CONFIGS`` — the geometry of the models the paper evaluates
  (ViT-S/L, DeiT-S/B, Swin-T/S on 224x224 ImageNet).  These are *not*
  instantiated as trainable networks here (no pretrained weights are
  available offline); they drive the peak-memory simulation of Figure 2 and
  the hardware sizing discussion, where only tensor shapes matter.
* ``MINI_CONFIGS`` — downscaled but architecturally faithful counterparts
  (32x32 inputs, SynthShapes classes) that are trained from scratch and used
  for every accuracy experiment (Tables 1-3, Figures 3 and 7).  Each paper
  model maps to a mini model of the same family with the same small-vs-large
  relationship preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ModelConfig",
    "SwinConfig",
    "PAPER_CONFIGS",
    "MINI_CONFIGS",
    "MINI_FOR_PAPER",
    "get_config",
]


@dataclass(frozen=True)
class ModelConfig:
    """Geometry of a columnar (ViT/DeiT) transformer."""

    name: str
    family: str  # "vit" or "deit"
    image_size: int
    patch_size: int
    in_channels: int
    num_classes: int
    embed_dim: int
    depth: int
    num_heads: int
    mlp_ratio: float = 4.0
    distilled: bool = False

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def num_tokens(self) -> int:
        return self.num_patches + 1 + (1 if self.distilled else 0)


@dataclass(frozen=True)
class SwinConfig:
    """Geometry of a hierarchical (Swin) transformer."""

    name: str
    image_size: int
    patch_size: int
    in_channels: int
    num_classes: int
    embed_dim: int
    depths: tuple[int, ...]
    num_heads: tuple[int, ...]
    window_size: int
    mlp_ratio: float = 4.0
    family: str = field(default="swin")

    @property
    def num_stages(self) -> int:
        return len(self.depths)

    def stage_resolution(self, stage: int) -> int:
        return self.image_size // self.patch_size // (2**stage)

    def stage_dim(self, stage: int) -> int:
        return self.embed_dim * (2**stage)


# ----------------------------------------------------------------------
# Paper-scale geometry (ImageNet models in Tables 2/3 and Figure 2)
# ----------------------------------------------------------------------
PAPER_CONFIGS: dict[str, ModelConfig | SwinConfig] = {
    "vit_s": ModelConfig("vit_s", "vit", 224, 16, 3, 1000, 384, 12, 6),
    "vit_b": ModelConfig("vit_b", "vit", 224, 16, 3, 1000, 768, 12, 12),
    "vit_l": ModelConfig("vit_l", "vit", 224, 16, 3, 1000, 1024, 24, 16),
    "deit_s": ModelConfig("deit_s", "deit", 224, 16, 3, 1000, 384, 12, 6, distilled=True),
    "deit_b": ModelConfig("deit_b", "deit", 224, 16, 3, 1000, 768, 12, 12, distilled=True),
    "swin_t": SwinConfig("swin_t", 224, 4, 3, 1000, 96, (2, 2, 6, 2), (3, 6, 12, 24), 7),
    "swin_s": SwinConfig("swin_s", 224, 4, 3, 1000, 96, (2, 2, 18, 2), (3, 6, 12, 24), 7),
}

# ----------------------------------------------------------------------
# Mini trainable counterparts (SynthShapes, 32x32, 10 classes)
# ----------------------------------------------------------------------
_NUM_CLASSES = 10

MINI_CONFIGS: dict[str, ModelConfig | SwinConfig] = {
    "vit_mini_s": ModelConfig("vit_mini_s", "vit", 32, 4, 3, _NUM_CLASSES, 64, 4, 4),
    "vit_mini_l": ModelConfig("vit_mini_l", "vit", 32, 4, 3, _NUM_CLASSES, 128, 6, 8),
    "deit_mini_s": ModelConfig(
        "deit_mini_s", "deit", 32, 4, 3, _NUM_CLASSES, 64, 4, 4, distilled=True
    ),
    "deit_mini_b": ModelConfig(
        "deit_mini_b", "deit", 32, 4, 3, _NUM_CLASSES, 96, 5, 6, distilled=True
    ),
    "swin_mini_t": SwinConfig(
        "swin_mini_t", 32, 4, 3, _NUM_CLASSES, 32, (2, 2), (2, 4), 4
    ),
    "swin_mini_s": SwinConfig(
        "swin_mini_s", 32, 4, 3, _NUM_CLASSES, 48, (2, 4), (3, 6), 4
    ),
}

#: Which mini model stands in for which paper model in the accuracy tables.
MINI_FOR_PAPER: dict[str, str] = {
    "vit_s": "vit_mini_s",
    "vit_l": "vit_mini_l",
    "deit_s": "deit_mini_s",
    "deit_b": "deit_mini_b",
    "swin_t": "swin_mini_t",
    "swin_s": "swin_mini_s",
}


def get_config(name: str) -> ModelConfig | SwinConfig:
    """Look up a config by name across both registries."""
    if name in MINI_CONFIGS:
        return MINI_CONFIGS[name]
    if name in PAPER_CONFIGS:
        return PAPER_CONFIGS[name]
    known = sorted(MINI_CONFIGS) + sorted(PAPER_CONFIGS)
    raise KeyError(f"unknown model config {name!r}; known: {known}")
