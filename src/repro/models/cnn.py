"""A small convolutional classifier (the paper's "other NN models" claim).

The conclusion of the QUQ paper argues the scheme is "inherently capable of
effectively quantizing the other NN models" and notes BiScaled-FxP's home
turf is CNNs.  This model provides the substrate for that experiment: a
compact channels-last ConvNet whose convolutions lower to GEMMs, so the
standard tap-based PTQ pipeline (and every quantization method in the
library) applies without modification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, gelu
from ..nn import Linear, Module, ModuleList
from ..nn.conv import Conv2d, GlobalAveragePool

__all__ = ["CNNConfig", "MiniConvNet", "build_cnn", "CNN_MINI"]


@dataclass(frozen=True)
class CNNConfig:
    name: str
    image_size: int
    in_channels: int
    num_classes: int
    channels: tuple[int, ...]  # per stage; stride 2 between stages
    family: str = "cnn"


CNN_MINI = CNNConfig("cnn_mini", 32, 3, 10, (16, 32, 64))


class MiniConvNet(Module):
    """Conv stages (stride-2 downsampling) -> GAP -> Linear classifier."""

    def __init__(self, config: CNNConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.convs = ModuleList()
        previous = config.in_channels
        for index, channels in enumerate(config.channels):
            stride = 1 if index == 0 else 2
            self.convs.append(
                Conv2d(previous, channels, kernel_size=3, stride=stride,
                       padding=1, rng=rng)
            )
            previous = channels
        self.pool = GlobalAveragePool()
        self.head = Linear(previous, config.num_classes, rng=rng)
        self.assign_tap_names(prefix=f"{config.name}.")

    def forward(self, images: Tensor) -> Tensor:
        x = images
        for conv in self.convs:
            x = conv(x)
            x = conv.tap("act.input", x)  # GELU input (red tap)
            x = gelu(x)
        return self.head(self.pool(x))


def build_cnn(config: CNNConfig = CNN_MINI, seed: int = 0) -> MiniConvNet:
    return MiniConvNet(config, seed=seed)
