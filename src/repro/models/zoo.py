"""Model zoo: build, train-on-first-use and cache the mini models.

With no pretrained ImageNet checkpoints available offline, each mini model
is trained from scratch on SynthShapes the first time it is requested and
its weights (plus the FP32 validation accuracy) are cached as ``.npz``
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-quq``).  Subsequent
calls — including every benchmark run — load from the cache, keeping the
harness fast and deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..data import make_splits
from ..nn import Module
from ..training import TrainConfig, evaluate_top1, train_classifier
from .cnn import CNN_MINI, CNNConfig, build_cnn
from .configs import MINI_CONFIGS, ModelConfig, SwinConfig, get_config
from .swin import build_swin
from .vit import build_vit

__all__ = ["build_model", "get_trained_model", "cache_dir", "DATASET_SPEC"]

#: Shared dataset specification for every zoo model / accuracy experiment.
DATASET_SPEC = {"train_count": 3072, "val_count": 1024, "size": 32, "seed": 0}

#: Per-model training recipes (tuned for ~1 CPU core; the larger model of
#: each family gets fewer epochs because its per-step cost is higher and it
#: converges faster, mirroring the paper's small-vs-large accuracy ordering).
_RECIPES: dict[str, TrainConfig] = {
    "vit_mini_s": TrainConfig(epochs=10, batch_size=64, lr=1.2e-3),
    "vit_mini_l": TrainConfig(epochs=8, batch_size=64, lr=1.0e-3),
    "deit_mini_s": TrainConfig(epochs=10, batch_size=64, lr=1.2e-3),
    "deit_mini_b": TrainConfig(epochs=8, batch_size=64, lr=1.0e-3),
    "swin_mini_t": TrainConfig(epochs=10, batch_size=64, lr=1.2e-3),
    "swin_mini_s": TrainConfig(epochs=10, batch_size=64, lr=1.0e-3),
    "cnn_mini": TrainConfig(epochs=8, batch_size=64, lr=2.0e-3),
}


def cache_dir() -> Path:
    """Directory holding trained checkpoints (created on demand)."""
    root = os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-quq")
    path = Path(root).expanduser()
    path.mkdir(parents=True, exist_ok=True)
    return path


def build_model(name: str, seed: int = 0) -> Module:
    """Instantiate an untrained model from its config name."""
    if name == CNN_MINI.name:
        return build_cnn(CNN_MINI, seed=seed)
    config = get_config(name)
    if isinstance(config, SwinConfig):
        return build_swin(config, seed=seed)
    if isinstance(config, ModelConfig):
        return build_vit(config, seed=seed)
    raise TypeError(f"unsupported config type {type(config)!r}")


def get_trained_model(
    name: str,
    train_if_missing: bool = True,
    verbose: bool = False,
) -> tuple[Module, float]:
    """Return ``(model, fp32_top1)`` for a mini-zoo model, training if needed."""
    if name not in MINI_CONFIGS and name != CNN_MINI.name:
        raise KeyError(
            f"{name!r} is not a trainable mini model; choices: "
            f"{sorted(MINI_CONFIGS) + [CNN_MINI.name]}"
        )
    model = build_model(name, seed=_RECIPES[name].seed)
    checkpoint = cache_dir() / f"{name}.npz"
    if checkpoint.exists():
        payload = np.load(checkpoint)
        state = {k: payload[k] for k in payload.files if k != "__top1__"}
        model.load_state_dict(state)
        model.eval()
        return model, float(payload["__top1__"])

    if not train_if_missing:
        raise FileNotFoundError(f"no cached checkpoint for {name} at {checkpoint}")

    train_set, val_set = make_splits(**DATASET_SPEC)
    recipe = _RECIPES[name]
    if verbose:
        print(f"[zoo] training {name} ({recipe.epochs} epochs)...")
    train_classifier(model, train_set, recipe)
    top1 = evaluate_top1(model, val_set)
    if verbose:
        print(f"[zoo] {name}: fp32 top-1 {top1:.2f}%")

    payload = dict(model.state_dict())
    payload["__top1__"] = np.float32(top1)
    np.savez(checkpoint, **payload)
    return model, top1
