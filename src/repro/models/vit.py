"""Vision Transformer (ViT) and DeiT models.

DeiT shares the ViT trunk and adds a distillation token; at inference the
class and distillation heads are averaged, as in the original DeiT.  (With
no ImageNet teacher available, the distillation head is trained with the
same cross-entropy target — the *architecture*, which is what quantization
cares about, is faithful.)
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..nn import LayerNorm, Linear, Module, ModuleList, PatchEmbedding, TransformerBlock
from ..nn.init import trunc_normal
from ..nn.module import Parameter
from .configs import ModelConfig

__all__ = ["VisionTransformer", "build_vit"]


class VisionTransformer(Module):
    """ViT/DeiT for image classification over ``(B, H, W, C)`` inputs."""

    def __init__(self, config: ModelConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        dim = config.embed_dim

        self.patch_embed = PatchEmbedding(
            config.image_size, config.patch_size, config.in_channels, dim, rng=rng
        )
        self.cls_token = Parameter(trunc_normal((1, 1, dim), rng))
        self.dist_token = (
            Parameter(trunc_normal((1, 1, dim), rng)) if config.distilled else None
        )
        self.pos_embed = Parameter(trunc_normal((1, config.num_tokens, dim), rng))

        self.blocks = ModuleList(
            TransformerBlock(dim, config.num_heads, config.mlp_ratio, rng=rng)
            for _ in range(config.depth)
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, config.num_classes, rng=rng)
        self.head_dist = (
            Linear(dim, config.num_classes, rng=rng) if config.distilled else None
        )
        self.assign_tap_names(prefix=f"{config.name}.")

    # ------------------------------------------------------------------
    def _prepend_tokens(self, patches: Tensor) -> Tensor:
        b = patches.shape[0]
        ones = Tensor(np.ones((b, 1, 1), dtype=np.float32))
        cls = ones * self.cls_token
        tokens = [cls, patches]
        if self.dist_token is not None:
            tokens.insert(1, ones * self.dist_token)
        return concat(tokens, axis=1)

    def features(self, images: Tensor) -> Tensor:
        """Run the encoder, returning normalized token features."""
        x = self.patch_embed(images)
        x = self._prepend_tokens(x)
        x = x + self.pos_embed
        for block in self.blocks:
            x = block(x)
        x = self.tap("final_norm_input", x)
        return self.norm(x)

    def forward(self, images: Tensor) -> Tensor:
        tokens = self.features(images)
        cls_logits = self.head(tokens[:, 0])
        if self.head_dist is None:
            return cls_logits
        dist_logits = self.head_dist(tokens[:, 1])
        if self.training:
            # Training returns both so the loss can supervise each head.
            return concat(
                [cls_logits.reshape(cls_logits.shape[0], 1, -1),
                 dist_logits.reshape(dist_logits.shape[0], 1, -1)],
                axis=1,
            )
        return (cls_logits + dist_logits) * 0.5

    def attention_maps(self) -> list[np.ndarray]:
        """Per-block attention probabilities from the most recent forward."""
        maps = []
        for block in self.blocks:
            if block.attn.last_attention is None:
                raise RuntimeError("run a forward pass before reading attention maps")
            maps.append(block.attn.last_attention)
        return maps


def build_vit(config: ModelConfig, seed: int = 0) -> VisionTransformer:
    """Construct a ViT/DeiT from a config."""
    if config.family not in ("vit", "deit"):
        raise ValueError(f"build_vit cannot build family {config.family!r}")
    return VisionTransformer(config, seed=seed)
