"""Hot-path latency regression baseline: the weight cache must pay.

Runs :func:`repro.analysis.run_hotpath_bench` on the self-contained tiny
ViT (``TINY_HOTPATH_VIT``) and asserts the two properties the cached
weight path promises:

* **Bit-exactness** — cached and uncached forward passes produce
  identical logits (``np.array_equal``), for every quantized method.
* **Speedup** — steady-state QUQ batch latency with the cache is at
  least 1.5x faster than the uncached path, which is byte-for-byte the
  pre-cache hot path (every batch re-fake-quantizing every weight tap).

Timing on shared CI hardware is noisy, so the speedup assertion takes
the best of a few trials; the bit-exactness assertion holds on every
trial unconditionally.  The report of the final trial is persisted to
``benchmarks/results/hotpath.txt`` and, as the machine-readable
perf-trajectory point, to ``BENCH_serve.json`` at the repo root via
``python -m repro perf-bench --tiny``.
"""

from __future__ import annotations

from repro.analysis import (
    HotpathConfig,
    format_hotpath_report,
    run_hotpath_bench,
)

from conftest import save_result

#: Acceptance floor for the weight cache on the tiny ViT config.
SPEEDUP_FLOOR = 1.5

#: Timing trials (best-of) to ride out scheduler noise on shared runners.
TRIALS = 3


def test_hotpath_weight_cache_speedup_and_bit_exactness():
    config = HotpathConfig(methods=("fp32", "baseq", "quq"))
    best_speedup = 0.0
    report = None
    for _ in range(TRIALS):
        report = run_hotpath_bench(config)
        # Bit-exactness is a correctness property: every trial must pass.
        assert report["attestation"]["bit_exact"], report["attestation"]
        speedup = report["methods"]["quq"]["cache_speedup"]
        best_speedup = max(best_speedup, speedup)
        if best_speedup >= SPEEDUP_FLOOR:
            break

    save_result("hotpath", format_hotpath_report(report))

    quq = report["methods"]["quq"]
    # The cache was exercised: every weight tap hit after warm-up.
    assert quq["weight_cache"]["entries"] > 0
    assert quq["weight_cache"]["hits"] > quq["weight_cache"]["entries"]
    assert best_speedup >= SPEEDUP_FLOOR, (
        f"weight cache speedup {best_speedup:.2f}x < {SPEEDUP_FLOOR}x "
        f"over {TRIALS} trials"
    )
