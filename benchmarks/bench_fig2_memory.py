"""Figure 2: peak on-chip memory of partially vs fully quantized ViT blocks.

Paper reference: fully quantized (FQ) blocks need far less peak on-chip
memory than partially quantized (PQ) ones — the abstract quotes 22.3% to
172.6% extra memory for PQ — with the gap widest for small models and
growing with batch size.

The reproduction runs the liveness-based dataflow simulator over the
*paper-scale* model geometries (ViT-S/B/L, DeiT, Swin-T), batch 1-8, at
8-bit quantization.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hw import build_vit_block_dataflow, memory_table, peak_memory_bytes
from repro.models.configs import PAPER_CONFIGS

from conftest import save_result

MODELS = ("vit_s", "vit_b", "vit_l", "deit_s", "swin_t")
BATCHES = (1, 2, 4, 8)


def test_fig2_peak_memory(benchmark):
    rows = benchmark(
        memory_table,
        [PAPER_CONFIGS[name] for name in MODELS],
        batches=BATCHES,
        bits=8,
    )
    table_rows = [
        [
            r["model"], r["batch"],
            round(r["pq_kib"], 0), round(r["fq_kib"], 0),
            f"+{100 * (r['pq_over_fq'] - 1):.1f}%",
        ]
        for r in rows
    ]
    save_result(
        "fig2_memory",
        format_table(
            ["Model", "Batch", "PQ peak (KiB)", "FQ peak (KiB)", "PQ overhead"],
            table_rows,
            title="Figure 2: Peak memory usage in ViT blocks (8-bit quantization)",
        ),
    )

    overheads = {(r["model"], r["batch"]): r["pq_over_fq"] - 1 for r in rows}
    # Paper's quoted overhead band: 22.3% - 172.6%.
    assert all(0.20 < v < 2.0 for v in overheads.values())
    # Gap grows with batch size...
    for model in MODELS:
        assert overheads[(model, 8)] >= overheads[(model, 1)]
    # ...and is widest for the small model at batch 1.
    assert overheads[("vit_s", 1)] > overheads[("vit_l", 1)]


def test_fig2_peak_op_is_an_fp32_consumer_under_pq(benchmark):
    """Sanity: under PQ the peak op holds a full-precision activation."""
    flow = build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], batch=4)
    peak, op_name = benchmark(peak_memory_bytes, flow, "pq", 8)
    assert peak > 0
    # The MLP hidden tensor (GELU input, fp32 under PQ) dominates.
    assert op_name in ("fc1", "gelu", "fc2", "softmax", "attn_matmul_pv")
