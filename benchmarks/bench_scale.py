"""Flash-crowd scale benchmark of the sharded serving cluster.

Replays a seeded trace — diurnal baseline, a 4x flash crowd, a
heavy-tailed four-tenant mix — open-loop against a two-shard
``ClusterEngine`` with admission control, SIGKILLing one shard
mid-trace.  Passes only when admitted-request availability clears the
floor, p99.9 stays bounded, the zero-silent-drop ledger balances, no
tenant is starved or served beyond the fairness ratio, and the killed
shard is respawned without deadlock.

Self-contained (random tiny ViT, synthetic calibration): overload
dynamics do not depend on trained weights, so this never touches the
zoo.  Writes the JSON report to ``benchmarks/results/scale_bench.json``
next to the usual text table; ``python -m repro scale-bench --tiny``
regenerates the checked-in ``BENCH_scale.json`` from the same harness.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.scale import (
    ScaleBenchConfig,
    format_scale_report,
    run_scale_benchmark,
    tiny_scale_servable,
)
from repro.resilience import ResiliencePolicy
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchPolicy,
    ClusterEngine,
    ClusterPolicy,
    TraceConfig,
    tenant_mix,
)

from conftest import RESULTS_DIR, fast_mode, save_result

SEED = 0


@pytest.mark.slow
def test_scale_bench_flash_crowd():
    duration = 3.0 if fast_mode() else 6.0
    trace = TraceConfig(
        duration_s=duration, base_rate=600.0, seed=SEED,
        flash_multiplier=4.0, tenants=4,
    )
    servable = tiny_scale_servable(seed=SEED)
    admission = AdmissionController(
        AdmissionPolicy(tenant_weights=tenant_mix(trace))
    )
    engine = ClusterEngine(
        loader=lambda spec: servable,  # prebuilt, shared copy-on-write via fork
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=3.0, max_queue=64,
                           timeout_ms=2000.0),
        cluster=ClusterPolicy(shards=2, image_hw=16),
        resilience=ResiliencePolicy(watchdog_stall_s=1.0),
        admission=admission,
    )
    config = ScaleBenchConfig(spec="vit_s/quq/6", trace=trace,
                              availability_floor=0.99)
    try:
        report = run_scale_benchmark(engine, config)
    finally:
        engine.stop()

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scale_bench.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    save_result("scale_bench", format_scale_report(report))

    assert report["trace"]["flash_over_steady"] >= 3.0, "flash crowd too weak"
    assert report["shed_rate"] > 0, "offered load never exceeded capacity"
    assert report["availability"] >= config.availability_floor
    assert report["no_silent_drop"], "ledger must balance exactly"
    assert report["nonfinite_served"] == 0
    assert report["fairness_ok"], report["tenants"]
    assert report["recovery"]["shard_restarts_total"] >= 1
    assert report["deadlock_free"]
    assert report["passed"]
