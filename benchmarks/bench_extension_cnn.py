"""Extension: QUQ on a convolutional network (the paper's conclusion claim).

The conclusion argues QUQ "is inherently capable of effectively quantizing
the other NN models" and Section 5 notes BiScaled-FxP's original domain is
CNNs.  This bench fully quantizes the MiniConvNet zoo model with BaseQ,
BiScaled-FxP and QUQ and checks QUQ transfers without modification.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.data import calibration_set, make_splits
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.quant import PTQPipeline, hessian_refine
from repro.training import evaluate_top1

from conftest import save_result, val_subset_size

BIT_WIDTHS = (4, 6, 8)
METHODS = ("baseq", "biscaled", "quq")


@pytest.fixture(scope="module")
def cnn_setup():
    model, fp32 = get_trained_model("cnn_mini", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    return model, fp32, calib, val_set.subset(val_subset_size(), seed=11)


def _evaluate(model, method, bits, calib, val):
    pipeline = PTQPipeline(model, method=method, bits=bits, coverage="full")
    pipeline.calibrate(calib)
    hessian_refine(pipeline, calib)
    accuracy = evaluate_top1(model, val)
    pipeline.detach()
    return accuracy


def test_cnn_quantization(benchmark, cnn_setup):
    model, fp32, calib, val = cnn_setup
    rows = [["Original", "32/32", round(fp32, 2)]]
    for bits in BIT_WIDTHS:
        for method in METHODS:
            rows.append(
                [method, f"{bits}/{bits}",
                 round(_evaluate(model, method, bits, calib, val), 2)]
            )
    save_result(
        "extension_cnn",
        format_table(
            ["Method", "W/A", "cnn_mini Top-1"],
            rows,
            title="Extension: fully quantized CNN (conclusion's generality claim)",
        ),
    )

    benchmark(lambda: _evaluate(model, "quq", 8, calib, val))

    by_key = {(r[0], r[1]): r[2] for r in rows}
    for bits in BIT_WIDTHS:
        # QUQ transfers to CNNs: never behind plain uniform.
        assert by_key[("quq", f"{bits}/{bits}")] >= by_key[("baseq", f"{bits}/{bits}")] - 2.0
    # 8-bit full quantization is nearly lossless on the CNN too.
    assert by_key[("quq", "8/8")] >= rows[0][2] - 5.0
