"""Ablation: PRA hyperparameters (acceptable ratio lambda_A, initial quantile q).

The paper fixes lambda_A = 4, q = 0.99, q_A = 0.95 for all experiments.
This bench sweeps both knobs over the four Figure-3 tensors and verifies
the paper's defaults sit at (or near) the MSE optimum, justifying the
fixed setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import FIGURE3_TENSORS, capture_figure3_tensors, format_table
from repro.quant import PRAConfig, QUQQuantizer, mse

from conftest import save_result

BITS = 6
LAMBDAS = (1.0, 2.0, 4.0, 8.0, 16.0)
QUANTILES = (0.95, 0.97, 0.99, 0.999)


@pytest.fixture(scope="module")
def tensors(zoo, calib):
    model, _ = zoo["vit_s"]
    return capture_figure3_tensors(model, calib, block=1)


def _mean_mse(tensors, config: PRAConfig) -> dict[str, float]:
    out = {}
    for name in FIGURE3_TENSORS:
        data = tensors[name]
        q = QUQQuantizer(BITS, config=config).fit(data)
        out[name] = mse(data, q.fake_quantize(data))
    return out


def test_lambda_sweep(benchmark, tensors):
    def sweep():
        rows = []
        for lam in LAMBDAS:
            config = PRAConfig(acceptable_ratio=lam)
            errors = _mean_mse(tensors, config)
            rows.append([lam] + [errors[n] for n in FIGURE3_TENSORS])
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_lambda",
        format_table(
            ["lambda_A"] + list(FIGURE3_TENSORS), rows,
            title=f"Ablation: acceptable-ratio sweep ({BITS}-bit QUQ MSE)",
        ),
    )
    # The paper's default (4) must be within 2x of the per-tensor optimum.
    default_row = next(r for r in rows if r[0] == 4.0)
    for column in range(1, len(FIGURE3_TENSORS) + 1):
        best = min(r[column] for r in rows)
        assert default_row[column] <= 2.0 * best + 1e-12


def test_quantile_sweep(benchmark, tensors):
    def sweep():
        rows = []
        for q in QUANTILES:
            config = PRAConfig(initial_quantile=q, acceptable_quantile=min(0.95, q))
            errors = _mean_mse(tensors, config)
            rows.append([q] + [errors[n] for n in FIGURE3_TENSORS])
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_quantile",
        format_table(
            ["initial q"] + list(FIGURE3_TENSORS), rows,
            title=f"Ablation: initial-quantile sweep ({BITS}-bit QUQ MSE)",
        ),
    )
    default_row = next(r for r in rows if r[0] == 0.99)
    for column in range(1, len(FIGURE3_TENSORS) + 1):
        best = min(r[column] for r in rows)
        assert default_row[column] <= 3.0 * best + 1e-12
