"""Corruption-robustness bench: SynthShapes-C grid + drift recovery curve.

Not a table in the paper — a deployment-robustness extension.  Scores the
trained ``vit_mini_s`` (the paper's ViT-S stand-in) on SynthShapes-C:

* every quantization method, calibrated on *clean* data, across
  corruption x severity — how gracefully each quantizer's clean-data
  calibration degrades under distribution shift;
* the drift-triggered recovery curve: clean serving, a severity-3 shift,
  stale-quantizer degradation, DriftMonitor alert, shadow recalibration,
  canary-validated swap, and post-swap accuracy within tolerance of a
  quantizer calibrated directly on corrupted data;
* determinism: the same seed regenerates byte-identical reports.

Writes ``benchmarks/results/corruption_robustness.json`` next to the
usual text table.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CorruptionSweepConfig,
    RecoveryCurveConfig,
    format_corruption_sweep,
    format_recovery_report,
    run_corruption_sweep,
    run_recovery_curve,
)
from repro.models import get_trained_model
from repro.serve import ModelRegistry

from conftest import RESULTS_DIR, fast_mode, save_result

SEED = 0


def _sweep_config() -> CorruptionSweepConfig:
    if fast_mode():
        return CorruptionSweepConfig(
            methods=("fp32", "quq", "baseq"),
            corruptions=("gaussian_noise", "blur", "occlusion"),
            severities=(1, 3, 5),
            bits=6,
            eval_count=96,
            seed=SEED,
        )
    return CorruptionSweepConfig(
        methods=("fp32", "quq", "baseq", "biscaled", "ptq4vit"),
        severities=(1, 3, 5),
        bits=6,
        eval_count=128,
        seed=SEED,
    )


@pytest.mark.slow
def test_corruption_robustness_vit_mini(splits, calib, tmp_path):
    train_set, val_set = splits
    model, _ = get_trained_model("vit_mini_s", verbose=True)

    config = _sweep_config()
    sweep = run_corruption_sweep(model, calib, val_set, config)

    # Quantized methods calibrated on clean data must still see the
    # corruption hit — and the grid must not be degenerate.
    for method, entry in sweep["summary"].items():
        assert entry["mean_degradation"] > 0.0, (method, entry)
    assert len(sweep["rows"]) == (
        len(config.methods) * len(config.corruptions) * len(config.severities)
    )

    # Same seed -> byte-identical summary metrics (rerun one method).
    rerun_config = CorruptionSweepConfig(
        methods=("quq",),
        corruptions=config.corruptions,
        severities=config.severities,
        bits=config.bits,
        eval_count=config.eval_count,
        seed=SEED,
    )
    rerun = run_corruption_sweep(model, calib, val_set, rerun_config)
    assert json.dumps(rerun["summary"]["quq"], sort_keys=True) == json.dumps(
        sweep["summary"]["quq"], sort_keys=True
    )
    assert rerun["rows"] == [r for r in sweep["rows"] if r["method"] == "quq"]

    # Recovery curve: drift fires, recalibration swaps, accuracy returns.
    registry = ModelRegistry(capacity=4, artifact_dir=tmp_path)
    recovery_config = RecoveryCurveConfig(
        spec="vit_s/quq/6",
        corruption="gaussian_noise",
        severity=3,
        seed=SEED,
    )
    recovery = run_recovery_curve(registry, val_set, calib, recovery_config)

    report = {"sweep": sweep, "recovery": recovery}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "corruption_robustness.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    save_result(
        "corruption_robustness",
        format_corruption_sweep(sweep) + "\n\n" + format_recovery_report(recovery),
    )

    checks = recovery["checks"]
    assert checks["monitor_fired_and_swapped"], checks
    assert checks["stale_drops_measurably"], checks
    assert checks["recovers_to_baseline"], checks
    assert checks["zero_nonfinite_served"], checks
    assert checks["swap_counted_in_snapshot"], checks
    assert recovery["passed"], checks

    # Same-seed recovery rerun from a fresh registry is byte-identical.
    rerun_registry = ModelRegistry(capacity=4, artifact_dir=tmp_path / "rerun")
    recovery_rerun = run_recovery_curve(
        rerun_registry, val_set, calib,
        RecoveryCurveConfig(
            spec="vit_s/quq/6", corruption="gaussian_noise", severity=3, seed=SEED,
        ),
    )
    assert json.dumps(recovery_rerun, sort_keys=True) == json.dumps(
        recovery, sort_keys=True
    )
