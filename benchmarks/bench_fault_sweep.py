"""Soft-error bench: accuracy under bit faults on the QUA datapath.

Not a table in the paper — a deployment-hardening extension.  Runs the
trained ``vit_mini_s`` (the paper's ViT-S stand-in) with 8-bit QUQ
through the integer executor under a seeded bit-fault sweep (BER x
injection site x protection) and audits the hardening claims:

* unprotected, the datapath's agreement with the fault-free run degrades
  measurably at the highest swept BER;
* with parity + TMR + the accumulator range guard armed, agreement stays
  above the stated floor and no FC register corruption is ever silent;
* the same seed reproduces the identical report.

Writes the JSON report to ``benchmarks/results/fault_sweep.json`` next to
the usual text table.
"""

from __future__ import annotations

import json

import pytest

from repro.hw import FaultSweepConfig, format_fault_sweep, run_fault_sweep
from repro.models import get_trained_model
from repro.quant import PTQPipeline

from conftest import RESULTS_DIR, fast_mode, save_result

SEED = 0


@pytest.mark.slow
def test_fault_sweep_vit_mini(splits):
    _, val_set = splits
    images = 16 if fast_mode() else 32
    subset = val_set.subset(images, seed=11)
    model, _ = get_trained_model("vit_mini_s", verbose=True)
    train_set, _ = splits
    pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
    pipeline.calibrate(train_set.images[:32])
    pipeline.detach()

    config = FaultSweepConfig(bits=8, bers=(1e-4, 1e-3), seed=SEED)
    report = run_fault_sweep(
        model, pipeline, subset.images, config, labels=subset.labels
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_sweep.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    save_result("fault_sweep", format_fault_sweep(report))

    assert report["checks"]["unprotected_degrades"], report["checks"]
    assert report["checks"]["protected_within_tolerance"], report["checks"]
    assert report["checks"]["zero_silent_registers_under_tmr"], report["checks"]
    assert report["passed"]

    # Same seed, same report — rerun one cell and compare bit for bit.
    rerun = run_fault_sweep(
        model, pipeline, subset.images,
        FaultSweepConfig(bits=8, bers=(1e-3,), site_cases=("all",), seed=SEED),
        labels=subset.labels,
    )
    matching = [
        r for r in report["rows"]
        if r["ber"] == 1e-3 and r["sites"] == "all"
    ]
    assert rerun["rows"] == matching
