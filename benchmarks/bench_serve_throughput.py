"""Serving throughput/latency vs. batching policy.

Drives the `repro.serve` runtime with an open-loop synthetic load and
sweeps the micro-batching policy: batch size 1 (no coalescing) against
progressively wider batches.  The expected shape — the reason serving
batches at all — is that wider batches raise sustained throughput by
amortizing per-call overhead, at some cost in tail latency at low load.

Uses the trained mini zoo's ``vit_s`` with full 6-bit QUQ, i.e. the
paper's flagship configuration as the deployed artifact.  The first run
calibrates and serializes quantizer state; later runs (and later rows of
the sweep) warm-start from the registry artifact, which the reported
cache/warm counters make visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.serve import BatchPolicy, ModelRegistry, ServeEngine, run_serve_benchmark

from conftest import fast_mode, save_result

SPEC = "vit_s/quq/6"


def _policies():
    sizes = (1, 4, 16) if fast_mode() else (1, 2, 4, 8, 16)
    return [
        BatchPolicy(max_batch_size=size, max_wait_ms=10.0,
                    max_queue=512, timeout_ms=60000.0)
        for size in sizes
    ]


def _run(policy: BatchPolicy, requests: int, rate: float) -> dict:
    registry = ModelRegistry()  # shared on-disk artifacts: warm after row 1
    with ServeEngine(registry, policy) as engine:
        return run_serve_benchmark(engine, SPEC, requests=requests, rate=rate)


@pytest.mark.slow
def test_serve_throughput_vs_batch_policy():
    requests = 128 if fast_mode() else 256
    rate = 400.0
    rows = []
    for policy in _policies():
        snapshot = _run(policy, requests, rate)
        summary = snapshot["summary"]
        latency = snapshot["histograms"]["e2e_latency_ms"]
        registry = snapshot["registry"]
        rows.append([
            policy.max_batch_size,
            summary["completed"],
            summary["throughput_rps"],
            latency["p50"], latency["p95"], latency["p99"],
            registry["warm_loads"], registry["calibrations"],
            round(registry["hit_rate"], 3),
        ])
        assert summary["completed"] > 0
        assert summary["throughput_rps"] > 0

    save_result(
        "serve_throughput",
        format_table(
            ["max batch", "completed", "rps",
             "p50 ms", "p95 ms", "p99 ms",
             "warm loads", "calibrations", "hit rate"],
            rows,
            title=f"Serving throughput vs batch policy ({SPEC}, "
                  f"{requests} reqs @ {rate:.0f} rps offered)",
        ),
    )

    # Coalescing must pay: the widest batch sustains at least as much
    # throughput as the batch-of-1 policy (equality can happen when the
    # offered rate is the bottleneck, so allow a small tolerance).
    assert rows[-1][2] >= rows[0][2] * 0.8
    # After the first row calibrated and serialized, every later registry
    # build warm-started from disk.
    assert all(row[7] == 0 for row in rows[1:])
