"""Table 2: Top-1 accuracy of partially quantized ViTs (W6/A6).

Paper reference: on ImageNet, QUQ > APQ-ViT > PTQ4ViT > BaseQ at 6/6
partial quantization, with QUQ within ~2 points of FP32 everywhere.

Substitution notes (see EXPERIMENTS.md): models are the SynthShapes
mini-zoo counterparts; the APQ-ViT row is approximated as twin-uniform
(PTQ4ViT) quantizers refined with the Hessian-*weighted* grid search,
while the PTQ4ViT row uses the plain-MSE grid search — APQ-ViT's
contribution over PTQ4ViT is precisely the Hessian-aware optimization.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.quant import PTQPipeline, hessian_refine
from repro.training import evaluate_top1

from conftest import bench_models, save_result

BITS = 6

#: (row label, method, hessian-weighted search)
ROWS = (
    ("BaseQ", "baseq", True),
    ("PTQ4ViT", "ptq4vit", False),
    ("APQ-ViT*", "ptq4vit", True),
    ("QUQ", "quq", True),
)


def _evaluate(model, method: str, weighted: bool, calib, val_subset) -> float:
    pipeline = PTQPipeline(model, method=method, bits=BITS, coverage="partial")
    pipeline.calibrate(calib)
    hessian_refine(pipeline, calib, weighted=weighted)
    accuracy = evaluate_top1(model, val_subset)
    pipeline.detach()
    return accuracy


@pytest.fixture(scope="module")
def table(zoo, calib, val_subset):
    models = bench_models()
    rows = [["Original", "32/32"] + [round(zoo[m][1], 2) for m in models]]
    for label, method, weighted in ROWS:
        row = [label, f"{BITS}/{BITS}"]
        for name in models:
            model, _ = zoo[name]
            row.append(round(_evaluate(model, method, weighted, calib, val_subset), 2))
        rows.append(row)
    return models, rows


def test_table2_partial_accuracy(benchmark, table, zoo, calib, val_subset):
    models, rows = table
    headers = ["Method", "W/A"] + models
    save_result(
        "table2_partial",
        format_table(headers, rows, title="Table 2: Accuracy of Partially Quantized ViTs (Top-1 %)"),
    )

    # Timing target: one full QUQ partial calibration on the smallest model.
    model, _ = zoo[models[0]]
    benchmark(lambda: _evaluate(model, "quq", True, calib, val_subset))

    by_label = {row[0]: row[2:] for row in rows}
    for i, name in enumerate(models):
        fp32 = by_label["Original"][i]
        # Shape checks from the paper: QUQ stays close to FP32 and is at
        # least as good as the uniform baseline.
        assert by_label["QUQ"][i] >= by_label["BaseQ"][i] - 2.0
        assert by_label["QUQ"][i] >= fp32 - 10.0
