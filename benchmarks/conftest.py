"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper.
Beyond pytest-benchmark's timing output, every bench writes its reproduced
table to ``benchmarks/results/<name>.txt`` so the artifacts survive output
capture.

Environment knobs:

* ``REPRO_BENCH_FAST=1`` — restrict accuracy tables to two models and a
  smaller validation subset (quick smoke run).
* ``REPRO_BENCH_VAL`` — validation-subset size (default 384).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.data import calibration_set, make_splits
from repro.models import MINI_FOR_PAPER, get_trained_model
from repro.models.zoo import DATASET_SPEC

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-model order of the accuracy tables' columns.
PAPER_MODEL_ORDER = ("vit_s", "vit_l", "deit_s", "deit_b", "swin_t", "swin_s")


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


def bench_models() -> list[str]:
    if fast_mode():
        return ["vit_s", "deit_s"]
    return list(PAPER_MODEL_ORDER)


def val_subset_size() -> int:
    default = 192 if fast_mode() else 384
    return int(os.environ.get("REPRO_BENCH_VAL", default))


def save_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def splits():
    return make_splits(**DATASET_SPEC)


@pytest.fixture(scope="session")
def calib(splits):
    train_set, _ = splits
    # The paper calibrates on 32 randomly chosen training images.
    return calibration_set(train_set, 32)


@pytest.fixture(scope="session")
def val_subset(splits):
    _, val_set = splits
    return val_set.subset(val_subset_size(), seed=11)


@pytest.fixture(scope="session")
def zoo():
    """Trained mini models keyed by *paper* model name."""
    models = {}
    for paper_name in bench_models():
        mini_name = MINI_FOR_PAPER[paper_name]
        model, fp32 = get_trained_model(mini_name, verbose=True)
        models[paper_name] = (model, fp32)
    return models
