"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper.
Beyond pytest-benchmark's timing output, every bench writes its reproduced
table to ``benchmarks/results/<name>.txt`` so the artifacts survive output
capture.

Environment knobs:

* ``REPRO_BENCH_FAST=1`` — restrict accuracy tables to two models and a
  smaller validation subset (quick smoke run).
* ``REPRO_BENCH_VAL`` — validation-subset size (default 384).
* ``REPRO_BENCH_TIMEOUT_S`` — per-bench wall-clock ceiling (default 1800).

Benches marked ``slow`` are skipped unless ``--run-slow`` (or ``-m slow``)
is passed — the same opt-in gate as the test suite — and every bench runs
under a SIGALRM timeout guard so a wedged run fails instead of hanging.
"""

from __future__ import annotations

import os
import signal
import threading
from pathlib import Path

import pytest

from repro.data import calibration_set, make_splits
from repro.models import MINI_FOR_PAPER, get_trained_model
from repro.models.zoo import DATASET_SPEC

RESULTS_DIR = Path(__file__).parent / "results"

#: Benches legitimately run for minutes (full accuracy tables), so the
#: ceiling is far above the test suite's; trips still mean a real hang.
DEFAULT_BENCH_TIMEOUT_S = int(os.environ.get("REPRO_BENCH_TIMEOUT_S", "1800"))


def pytest_addoption(parser):
    # ``pytest tests benchmarks`` loads both conftests; tolerate the
    # option already being registered by tests/conftest.py.
    try:
        parser.addoption(
            "--run-slow", action="store_true", default=False,
            help="run benches marked slow (skipped by default)",
        )
    except ValueError:
        pass


def pytest_collection_modifyitems(config, items):
    """Skip ``slow`` benches unless opted in (``--run-slow`` or ``-m slow``)."""
    if config.getoption("--run-slow") or "slow" in (config.option.markexpr or ""):
        return
    skip_slow = pytest.mark.skip(reason="slow bench: pass --run-slow (or -m slow)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _timeout_guard(request):
    """Fail (rather than hang) any bench that wedges — same guard as the
    test suite, with a bench-sized default ceiling."""
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_BENCH_TIMEOUT_S
    if seconds <= 0:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {seconds}s timeout guard"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

#: Paper-model order of the accuracy tables' columns.
PAPER_MODEL_ORDER = ("vit_s", "vit_l", "deit_s", "deit_b", "swin_t", "swin_s")


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


def bench_models() -> list[str]:
    if fast_mode():
        return ["vit_s", "deit_s"]
    return list(PAPER_MODEL_ORDER)


def val_subset_size() -> int:
    default = 192 if fast_mode() else 384
    return int(os.environ.get("REPRO_BENCH_VAL", default))


def save_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def splits():
    return make_splits(**DATASET_SPEC)


@pytest.fixture(scope="session")
def calib(splits):
    train_set, _ = splits
    # The paper calibrates on 32 randomly chosen training images.
    return calibration_set(train_set, 32)


@pytest.fixture(scope="session")
def val_subset(splits):
    _, val_set = splits
    return val_set.subset(val_subset_size(), seed=11)


@pytest.fixture(scope="session")
def zoo():
    """Trained mini models keyed by *paper* model name."""
    models = {}
    for paper_name in bench_models():
        mini_name = MINI_FOR_PAPER[paper_name]
        model, fp32 = get_trained_model(mini_name, verbose=True)
        models[paper_name] = (model, fp32)
    return models
