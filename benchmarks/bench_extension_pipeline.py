"""Extensions: QAT recovery, mixed precision, integer SFUs, sensitivity.

Four forward-looking experiments the library enables beyond the paper:

1. **QAT recovery** — fine-tuning through the straight-through nodes
   recovers most of the stress-point accuracy drop.
2. **Mixed precision** — sensitivity-guided bit allocation beats the
   uniform-bit configuration at equal average bits.
3. **Integer SFUs** — the I-ViT-style integer-only special functions cost
   almost nothing vs float SFUs on the QUA block executor.
4. **Sensitivity profile** — which dataflow taps dominate the
   full-quantization gap (the paper's Figure 1 motivation, quantified).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, kind_sensitivity, tap_sensitivity
from repro.autograd import Tensor, concat, no_grad
from repro.data import calibration_set, make_splits
from repro.hw import BlockExecutor
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.quant import PTQPipeline, allocate_mixed_precision, hessian_refine
from repro.training import evaluate_top1, quantization_aware_finetune

from conftest import save_result, val_subset_size

STRESS_BITS = 4


@pytest.fixture(scope="module")
def setup():
    model, fp32 = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    return model, fp32, train_set, calib, val_set.subset(val_subset_size(), seed=11)


def test_qat_recovery(benchmark, setup):
    model, fp32, train_set, calib, val = setup
    state = model.state_dict()  # restore afterwards

    pipeline = PTQPipeline(model, method="quq", bits=STRESS_BITS, coverage="full")
    pipeline.calibrate(calib)
    hessian_refine(pipeline, calib)
    ptq_acc = evaluate_top1(model, val)
    quantization_aware_finetune(pipeline, train_set.subset(1024, seed=0), epochs=2)
    qat_acc = evaluate_top1(model, val)
    pipeline.detach()
    model.load_state_dict(state)

    save_result(
        "extension_qat",
        format_table(
            ["Stage", f"Top-1 @ {STRESS_BITS}-bit full"],
            [["FP32", round(fp32, 2)], ["PTQ (QUQ)", round(ptq_acc, 2)],
             ["PTQ + 2-epoch QAT", round(qat_acc, 2)]],
            title="Extension: quantization-aware fine-tuning recovery",
        ),
    )
    assert qat_acc > ptq_acc + 2.0  # QAT must recover a real chunk

    benchmark(lambda: evaluate_top1(model, val.subset(96, seed=0)))


def test_mixed_precision(benchmark, setup):
    """At a 5.0 mean-bit budget, spending bits on the sensitive taps must
    beat the 4-bit uniform floor (which costs 1 bit less) by a wide margin
    and approach the 6-bit uniform ceiling (which costs 1 bit more)."""
    model, fp32, _, calib, val = setup
    pipeline = PTQPipeline(model, method="quq", bits=4, coverage="full")
    pipeline.calibrate(calib)
    uniform4 = evaluate_top1(model, val)
    sensitivities = tap_sensitivity(pipeline, calib[:16])
    allocation = allocate_mixed_precision(
        pipeline, sensitivities, budget_bits=5.0, calib_images=calib,
        bit_choices=(4, 6, 8),
    )
    mixed = evaluate_top1(model, val)
    pipeline.detach()

    pipeline6 = PTQPipeline(model, method="quq", bits=6, coverage="full")
    pipeline6.calibrate(calib)
    uniform6 = evaluate_top1(model, val)
    pipeline6.detach()

    mean_bits = float(np.mean(list(allocation.values())))
    counts = {b: sum(1 for v in allocation.values() if v == b) for b in (4, 6, 8)}
    save_result(
        "extension_mixed_precision",
        format_table(
            ["Config", "avg bits", "Top-1"],
            [["uniform 4-bit", 4.0, round(uniform4, 2)],
             [f"mixed {counts}", round(mean_bits, 2), round(mixed, 2)],
             ["uniform 6-bit", 6.0, round(uniform6, 2)]],
            title="Extension: sensitivity-guided mixed precision (full quantization)",
        ),
    )
    assert mean_bits <= 5.0 + 1e-9
    assert mixed >= uniform4 - 1.0  # never worse than the cheaper floor

    benchmark(lambda: tap_sensitivity(pipeline, calib[:8],
                                      taps=pipeline.tap_names()[:4]))


def test_integer_sfu_block(benchmark, setup):
    model, _, _, calib, _ = setup
    pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
    pipeline.calibrate(calib)

    pipeline.detach()
    with no_grad():
        patches = model.patch_embed(Tensor(calib[:8]))
        ones = Tensor(np.ones((8, 1, 1), dtype=np.float32))
        tokens = concat([ones * model.cls_token, patches], axis=1) + model.pos_embed
    pipeline.attach()
    with no_grad():
        reference = model.blocks[0](tokens).data
    pipeline.detach()

    rows = []
    for integer_sfu in (False, True):
        executor = BlockExecutor(
            model.blocks[0], pipeline, "vit_mini_s.blocks.0", bits=8,
            integer_sfu=integer_sfu,
        )
        out = executor.run(tokens.data.astype(np.float64))
        corr = np.corrcoef(out.reshape(-1), reference.reshape(-1))[0, 1]
        rows.append(["integer" if integer_sfu else "float", round(corr, 6)])
    save_result(
        "extension_int_sfu",
        format_table(
            ["SFU kernels", "corr vs fake-quant block"],
            rows,
            title="Extension: QUA block executor with integer-only SFUs",
        ),
    )
    assert all(r[1] > 0.99 for r in rows)

    executor = BlockExecutor(model.blocks[0], pipeline, "vit_mini_s.blocks.0", bits=8)
    benchmark(executor.run, tokens.data.astype(np.float64))


def test_sensitivity_profile(benchmark, setup):
    model, _, _, calib, _ = setup
    pipeline = PTQPipeline(model, method="baseq", bits=STRESS_BITS, coverage="full")
    pipeline.calibrate(calib)
    profile = benchmark(kind_sensitivity, pipeline, calib[:16])
    pipeline.detach()

    rows = sorted(profile.items(), key=lambda kv: kv[1], reverse=True)
    save_result(
        "extension_sensitivity",
        format_table(
            ["Tap kind", "logit MSE when quantized alone"],
            [[k, v] for k, v in rows],
            title=f"Extension: per-kind sensitivity at {STRESS_BITS}-bit (BaseQ)",
        ),
    )
    # The paper's motivation: the red taps (residual/norm) are among the
    # dominant contributors to the full-quantization gap.
    hard = {"residual", "norm_input"}
    top_two = {rows[0][0], rows[1][0]}
    assert hard & top_two
