"""Figure 7: attention maps under full quantization (original / BaseQ / QUQ).

Paper reference: at 8-bit, uniform quantization starts losing attention on
crucial regions while QUQ tracks the original; at 6-bit, uniform attention
is "no longer activated" while QUQ still highlights the right regions.

Without a display the comparison is quantitative: attention-rollout
correlation with the FP32 maps and energy retained in the FP32 map's
crucial region, at the paper's bit-widths plus this substrate's 4-bit
stress point, with ASCII heatmaps of one example image.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ascii_heatmap,
    crucial_region_energy,
    format_table,
    rollout_correlation,
    rollout_for_images,
)
from repro.quant import PTQPipeline, hessian_refine

from conftest import save_result

BIT_WIDTHS = (8, 6, 4)
N_IMAGES = 16


@pytest.fixture(scope="module")
def results(zoo, calib, splits):
    model, _ = zoo["vit_s"]
    _, val_set = splits
    images = val_set.images[:N_IMAGES]

    reference = rollout_for_images(model, images)
    rows = []
    maps = {"original": reference}
    for bits in BIT_WIDTHS:
        for method in ("baseq", "quq"):
            pipeline = PTQPipeline(model, method=method, bits=bits, coverage="full")
            pipeline.calibrate(calib)
            hessian_refine(pipeline, calib)
            rollout = rollout_for_images(model, images)
            pipeline.detach()
            maps[f"{method}_{bits}"] = rollout
            rows.append(
                [
                    {"baseq": "BaseQ", "quq": "QUQ"}[method],
                    bits,
                    round(rollout_correlation(reference, rollout), 3),
                    round(crucial_region_energy(reference, rollout, 0.9), 3),
                ]
            )
    return reference, maps, rows


def test_fig7_attention_maps(benchmark, results):
    reference, maps, rows = results
    ref_energy = round(crucial_region_energy(reference, reference, 0.9), 3)

    table = format_table(
        ["Method", "Bits", "Rollout corr vs FP32", "Crucial-region energy"],
        rows + [["Original", 32, 1.0, ref_energy]],
        title="Figure 7 (quantified): attention fidelity under full quantization",
    )
    art = [
        "Example image, attention rollout heatmaps:",
        "original:", ascii_heatmap(reference[0]),
    ]
    for key in ("baseq_6", "quq_6"):
        art += [f"{key}:", ascii_heatmap(maps[key][0])]
    save_result("fig7_attention", table + "\n\n" + "\n".join(art))

    benchmark(lambda: rollout_correlation(reference, maps["quq_8"]))

    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    # 8-bit: both faithful, QUQ at least as faithful as BaseQ.
    assert by_key[("QUQ", 8)][0] > 0.95
    assert by_key[("QUQ", 8)][0] >= by_key[("BaseQ", 8)][0] - 0.02
    # Stress point: QUQ retains attention structure better than BaseQ.
    assert by_key[("QUQ", 4)][0] >= by_key[("BaseQ", 4)][0] - 0.02
