"""Ablation: range-calibration strategy for the uniform baseline.

Strengthens the BaseQ comparison: the paper fits uniform scales with
abs-max; production toolkits clip (percentile / MSE / KL).  This bench
quantifies how much a better-calibrated uniform baseline closes the gap to
QUQ on the four Figure-3 tensor types — and shows QUQ still wins, because
clipping trades tail fidelity away while QUQ represents bulk *and* tail.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE3_TENSORS, capture_figure3_tensors, format_table
from repro.quant import CALIBRATION_STRATEGIES, QUQQuantizer, calibrated_uniform, mse

from conftest import save_result

BITS = 4  # clipping matters most at low precision


@pytest.fixture(scope="module")
def tensors(zoo, calib):
    model, _ = zoo["vit_s"]
    return capture_figure3_tensors(model, calib, block=1)


def test_calibration_strategies(benchmark, tensors):
    def build():
        rows = []
        for strategy in sorted(CALIBRATION_STRATEGIES):
            row = [f"uniform/{strategy}"]
            for name in FIGURE3_TENSORS:
                data = tensors[name]
                quantizer = calibrated_uniform(data, BITS, strategy)
                row.append(mse(data, quantizer.fake_quantize(data)))
            rows.append(row)
        row = ["QUQ"]
        for name in FIGURE3_TENSORS:
            data = tensors[name]
            row.append(mse(data, QUQQuantizer(BITS).fit(data).fake_quantize(data)))
        rows.append(row)
        return rows

    rows = benchmark(build)
    save_result(
        "ablation_calibration",
        format_table(
            ["Scheme"] + list(FIGURE3_TENSORS), rows,
            title=f"Ablation: uniform range calibration vs QUQ ({BITS}-bit MSE)",
        ),
    )

    quq_row = rows[-1]
    best_uniform = [min(r[i] for r in rows[:-1]) for i in range(1, len(FIGURE3_TENSORS) + 1)]
    absmax_row = next(r for r in rows if r[0] == "uniform/absmax")
    # QUQ clearly beats the best-calibrated uniform on the one-sided
    # post-softmax activations; on the other types, MSE-optimal *clipping*
    # can edge out QUQ on raw MSE — but only by sacrificing the outliers
    # QUQ preserves (which is why BaseQ-with-search still loses end to end
    # in Table 3).  We assert QUQ stays within 3x of the clipped optimum
    # while never clipping, and always beats the paper's absmax baseline.
    softmax_col = 1 + FIGURE3_TENSORS.index("post_softmax")
    assert quq_row[softmax_col] <= best_uniform[softmax_col - 1] * 1.02
    for column in range(1, len(FIGURE3_TENSORS) + 1):
        assert quq_row[column] <= best_uniform[column - 1] * 3.0
        assert quq_row[column] <= absmax_row[column] * 1.02
