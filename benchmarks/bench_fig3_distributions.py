"""Figure 3: data distributions in ViT and the QUQ quantization points.

Paper reference: the four tensor types show (a) long-tailed symmetric
weights, (b) non-negative post-Softmax, (c) long-tailed pre-addition, and
(d) asymmetric post-GELU activations; 4-bit QUQ places quantization points
that track each shape (dense near zero, sparse in the tails), selecting a
different mode per tensor.

The reproduction renders log-scale ASCII histograms with the generated
points overlaid and reports the selected mode per tensor.
"""

from __future__ import annotations

import pytest

from repro.analysis import ascii_histogram, capture_figure3_tensors
from repro.quant import Mode, QUQQuantizer

from conftest import save_result

BITS = 4


@pytest.fixture(scope="module")
def tensors(zoo, calib):
    model, _ = zoo["vit_s"]
    return capture_figure3_tensors(model, calib, block=1)


def test_fig3_distributions(benchmark, tensors):
    def fit_all():
        return {name: QUQQuantizer(BITS).fit(data) for name, data in tensors.items()}

    quantizers = benchmark(fit_all)

    sections = []
    for name, data in tensors.items():
        params = quantizers[name].params
        sections.append(
            f"--- {name} (mode {params.mode.value}) ---\n"
            f"{params.describe()}\n"
            f"{ascii_histogram(data, params, bins=40)}"
        )
    save_result(
        "fig3_distributions",
        "Figure 3: distributions and 4-bit QUQ quantization points\n\n"
        + "\n\n".join(sections),
    )

    # Mode selection must track the distribution shapes the paper shows.
    assert quantizers["post_softmax"].mode is Mode.B  # non-negative
    assert quantizers["post_gelu"].mode in (Mode.B, Mode.C)  # asymmetric
    # Quantization points are denser near zero than in the tails for the
    # long-tailed tensors that keep a fine/coarse split.
    for name in ("post_softmax", "post_gelu"):
        points = quantizers[name].params.quantization_points()
        gaps = [g for g in (points[1:] - points[:-1]) if g > 0]
        assert max(gaps) > 1.9 * min(gaps)
