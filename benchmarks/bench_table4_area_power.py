"""Table 4: area and power of the BaseQ vs QUQ accelerators.

Paper reference (28 nm, 500 MHz, Synopsys DC + PrimeTime): QUQ adds <5%
area and <10% power at equal bit-width, the overhead shrinks as the PE
array grows, and 6-bit QUQ undercuts 8-bit BaseQ by 12.6-16.8% area and
3.7-5.6% power while being far more accurate.

The reproduction uses the analytical gate-level model of
``repro.hw.area_power`` (see the module docstring for the calibration
methodology); the paper's synthesized numbers are printed alongside.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hw import AcceleratorSpec, evaluate

from conftest import save_result

PAPER = {
    ("baseq", 6, 16): (0.148, 52.4),
    ("quq", 6, 16): (0.153, 57.2),
    ("baseq", 6, 64): (2.205, 701.3),
    ("quq", 6, 64): (2.247, 767.5),
    ("baseq", 8, 16): (0.175, 60.6),
    ("quq", 8, 16): (0.182, 65.1),
    ("baseq", 8, 64): (2.702, 796.7),
    ("quq", 8, 64): (2.714, 851.6),
}


def _rows():
    rows = []
    for bits in (6, 8):
        for method in ("baseq", "quq"):
            row = [{"baseq": "BaseQ", "quq": "QUQ"}[method], f"{bits}/{bits}"]
            for array in (16, 64):
                report = evaluate(AcceleratorSpec(method, bits, array))
                paper_area, paper_power = PAPER[(method, bits, array)]
                row += [
                    round(report.area_mm2, 3), paper_area,
                    round(report.power_mw, 1), paper_power,
                ]
            rows.append(row)
    return rows


def test_table4_area_power(benchmark):
    rows = benchmark(_rows)
    headers = [
        "Method", "W/A",
        "16x16 area", "(paper)", "16x16 power", "(paper)",
        "64x64 area", "(paper)", "64x64 power", "(paper)",
    ]
    save_result(
        "table4_area_power",
        format_table(headers, rows, title="Table 4: Area (mm^2) and Power (mW) of NN Accelerators"),
    )

    # Relative claims (the calibration-independent content of Table 4).
    for bits in (6, 8):
        for array in (16, 64):
            base = evaluate(AcceleratorSpec("baseq", bits, array))
            quq = evaluate(AcceleratorSpec("quq", bits, array))
            assert 1.0 < quq.area_mm2 / base.area_mm2 < 1.15
            assert 1.0 < quq.power_mw / base.power_mw < 1.15
    for array in (16, 64):
        base8 = evaluate(AcceleratorSpec("baseq", 8, array))
        quq6 = evaluate(AcceleratorSpec("quq", 6, array))
        assert quq6.area_mm2 < base8.area_mm2
        assert quq6.power_mw < base8.power_mw
