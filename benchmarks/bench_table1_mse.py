"""Table 1: MSE of BaseQ vs QUQ on the four canonical tensor types.

Paper reference (ImageNet ViT): QUQ reduces MSE by roughly 1.5x-10x over
uniform quantization at every bit-width, with the gap widest on the
pre-addition and post-GELU activations.  The reproduction captures the
same four tensor types from a trained mini-ViT and must show QUQ <= BaseQ
on every cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import FIGURE3_TENSORS, capture_figure3_tensors, format_table
from repro.quant import QUQQuantizer, UniformQuantizer, mse

from conftest import save_result

BITS = (4, 6, 8)

_HEADERS = ["Method", "Bit"] + [
    {"query_weight": "Query W", "post_softmax": "Post-Softmax A",
     "pre_addition": "Pre-Addition A", "post_gelu": "Post-GELU A"}[t]
    for t in FIGURE3_TENSORS
]


def _mse_row(method_cls, bits: int, tensors: dict[str, np.ndarray]) -> list[float]:
    row = []
    for name in FIGURE3_TENSORS:
        data = tensors[name]
        quantizer = method_cls(bits).fit(data)
        row.append(mse(data, quantizer.fake_quantize(data)))
    return row


@pytest.fixture(scope="module")
def tensors(zoo, calib):
    model, _ = zoo["vit_s"]
    return capture_figure3_tensors(model, calib, block=1)


def test_table1_mse(benchmark, tensors):
    def build():
        rows = []
        for bits in BITS:
            rows.append(["BaseQ", bits] + _mse_row(UniformQuantizer, bits, tensors))
            rows.append(["QUQ", bits] + _mse_row(QUQQuantizer, bits, tensors))
        return rows

    rows = benchmark(build)
    save_result(
        "table1_mse",
        format_table(_HEADERS, rows, title="Table 1: MSEs of Different Quantization Methods"),
    )
    # The paper's claim: QUQ introduces smaller errors at every bit-width.
    for base_row, quq_row in zip(rows[::2], rows[1::2]):
        for base_val, quq_val in zip(base_row[2:], quq_row[2:]):
            assert quq_val <= base_val * 1.02
