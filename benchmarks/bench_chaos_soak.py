"""Chaos soak of the serving runtime against the deployed QUQ artifact.

Runs `repro chaos-soak`'s harness against the trained mini zoo's
``vit_s`` with full 6-bit QUQ — the paper's flagship deployed
configuration — under a seeded fault plan covering every fault class
(loader errors, corrupted quantizer state, batch exceptions, numeric
pollution, worker stalls, queue spikes).  The soak passes only when the
run is deadlock-free, no response ever carried non-finite or saturated
logits, availability stays above the floor, and each injected class
shows recovery evidence.

Writes the JSON report to ``benchmarks/results/chaos_soak.json`` next to
the usual text table.
"""

from __future__ import annotations

import json

import pytest

from repro.resilience import ResiliencePolicy, RetryPolicy
from repro.resilience.faults import FAULT_KINDS, FaultPlan
from repro.resilience.soak import ChaosSoakConfig, format_soak_report, run_chaos_soak
from repro.serve import BatchPolicy, ModelRegistry, ServeEngine

from conftest import RESULTS_DIR, fast_mode, save_result

SPEC = "vit_s/quq/6"
SEED = 0


@pytest.mark.slow
def test_chaos_soak_flagship_artifact():
    requests = 96 if fast_mode() else 192
    plan = FaultPlan.seeded(seed=SEED, kinds=FAULT_KINDS, horizon=12,
                            max_width=2, stall_s=0.15, spike=16)
    registry = ModelRegistry(
        retry=RetryPolicy(attempts=4, backoff_s=0.05), faults=plan
    )
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=5.0,
                         max_queue=64, timeout_ms=10000.0)
    resilience = ResiliencePolicy(breaker_failures=2, breaker_cooldown_s=0.25,
                                  watchdog_stall_s=0.1)
    config = ChaosSoakConfig(spec=SPEC, requests=requests, rate=150.0,
                             seed=SEED, availability_floor=0.5)
    with ServeEngine(registry, policy, resilience=resilience, faults=plan) as engine:
        report = run_chaos_soak(engine, plan, config)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "chaos_soak.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    save_result("chaos_soak", format_soak_report(report))

    assert report["deadlock_free"], "soak must drain with every request resolved"
    assert report["nonfinite_served"] == 0, "no response may carry bad logits"
    assert report["availability"] >= config.availability_floor
    assert report["faults"], "the seeded plan must actually inject faults"
    for kind, entry in report["faults"].items():
        assert entry["injected"] >= 1, kind
        assert entry["recovered"], f"no recovery evidence for {kind}: {report}"
    assert report["passed"]
