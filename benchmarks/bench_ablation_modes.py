"""Ablation: which QUQ modes the progressive relaxation actually selects.

Not a paper table, but it substantiates Figure 4's premise: one mechanism
(mode merging) adapts to the distribution diversity inside a single model.
The bench calibrates a full-coverage QUQ pipeline and counts the selected
mode per tap kind.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import format_table
from repro.quant import PTQPipeline, QUQQuantizer, TapKind, classify_tap

from conftest import save_result


@pytest.fixture(scope="module")
def pipeline(zoo, calib):
    model, _ = zoo["vit_s"]
    p = PTQPipeline(model, method="quq", bits=6, coverage="full")
    p.calibrate(calib)
    yield p
    p.detach()


def test_mode_usage_by_tap_kind(benchmark, pipeline):
    def census():
        counts: dict[TapKind, Counter] = {kind: Counter() for kind in TapKind}
        for name, quantizer in pipeline.env.quantizers.items():
            if isinstance(quantizer, QUQQuantizer):
                counts[classify_tap(name)][quantizer.mode.value] += 1
        return counts

    counts = benchmark(census)
    rows = [
        [kind.value] + [counts[kind].get(m, 0) for m in "ABCD"]
        for kind in TapKind
    ]
    save_result(
        "ablation_modes",
        format_table(
            ["Tap kind", "Mode A", "Mode B", "Mode C", "Mode D"],
            rows,
            title="Ablation: QUQ mode selection across one fully quantized ViT",
        ),
    )

    total = Counter()
    for kind_counts in counts.values():
        total.update(kind_counts)
    # The mechanism is only meaningful if several modes are in active use.
    assert len([m for m in "ABCD" if total.get(m, 0) > 0]) >= 3
    # Post-softmax taps are non-negative -> Mode B everywhere.
    probs_modes = {
        q.mode.value
        for n, q in pipeline.env.quantizers.items()
        if n.endswith(".probs") and isinstance(q, QUQQuantizer)
    }
    assert probs_modes == {"B"}
