"""Table 3: Top-1 accuracy of *fully* quantized ViTs.

Paper reference (ImageNet): at 6/6, BaseQ and BiScaled-FxP collapse to
near-chance, FQ-ViT lands midway, and QUQ is the only usable scheme; at
8/8, QUQ is nearly lossless and ahead of every baseline.

Substitution note (see EXPERIMENTS.md): the SynthShapes mini models have
far milder activation outliers than ImageNet ViTs (max/p99 of ~2-3x
versus 10-50x), which shifts the stress regime to lower bit-widths.  The
bench therefore reports W4/A4 rows alongside the paper's 6/6 and 8/8: our
4-bit rows play the role of the paper's 6-bit rows (BaseQ heavily
degraded, QUQ clearly ahead), and our 6/6 + 8/8 rows play the role of the
paper's 8/8 row (everything close to FP32, QUQ >= baselines).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.quant import PTQPipeline, hessian_refine
from repro.training import evaluate_top1

from conftest import bench_models, save_result

BIT_WIDTHS = (4, 6, 8)
METHOD_ROWS = (
    ("BaseQ", "baseq"),
    ("BiScaled-FxP", "biscaled"),
    ("FQ-ViT", "fqvit"),
    ("QUQ", "quq"),
)


def _evaluate(model, method: str, bits: int, calib, val_subset) -> float:
    pipeline = PTQPipeline(model, method=method, bits=bits, coverage="full")
    pipeline.calibrate(calib)
    hessian_refine(pipeline, calib)
    accuracy = evaluate_top1(model, val_subset)
    pipeline.detach()
    return accuracy


@pytest.fixture(scope="module")
def table(zoo, calib, val_subset):
    models = bench_models()
    rows = [["Original", "32/32"] + [round(zoo[m][1], 2) for m in models]]
    for bits in BIT_WIDTHS:
        for label, method in METHOD_ROWS:
            row = [label, f"{bits}/{bits}"]
            for name in models:
                model, _ = zoo[name]
                row.append(round(_evaluate(model, method, bits, calib, val_subset), 2))
            rows.append(row)
    return models, rows


def test_table3_full_accuracy(benchmark, table, zoo, calib, val_subset):
    models, rows = table
    headers = ["Method", "W/A"] + models
    save_result(
        "table3_full",
        format_table(
            headers, rows,
            title="Table 3: Accuracy of Fully Quantized ViTs (Top-1 %); "
            "W4/A4 rows are this substrate's stress-equivalent of the paper's 6/6",
        ),
    )

    model, _ = zoo[models[0]]
    benchmark(lambda: _evaluate(model, "quq", 8, calib, val_subset))

    def get(label, bits, index):
        for row in rows:
            if row[0] == label and row[1] == f"{bits}/{bits}":
                return row[2 + index]
        raise KeyError((label, bits))

    for i, name in enumerate(models):
        fp32 = rows[0][2 + i]
        # Stress regime: QUQ must beat plain uniform at 4 bits.
        assert get("QUQ", 4, i) >= get("BaseQ", 4, i) - 2.0
        # Mature regime: 8-bit QUQ is nearly lossless.
        assert get("QUQ", 8, i) >= fp32 - 6.0
        # QUQ is never behind BaseQ at any width.
        for bits in BIT_WIDTHS:
            assert get("QUQ", bits, i) >= get("BaseQ", bits, i) - 2.0
