"""Extension: end-to-end integer-only inference on the QUA.

The accuracy tables measure *fake* quantization (float simulation); this
bench closes the hardware loop by classifying a validation subset entirely
through the integer pipeline (QUB encode -> DU -> PE array -> QU, with the
SFUs on decoded integers) and comparing against the fake-quantized model.
Agreement near 100% is the end-to-end evidence that the QUB encoding and
Eq. (5) arithmetic implement the algorithm the tables evaluate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.data import calibration_set, make_splits
from repro.hw import ModelExecutor
from repro.models import get_trained_model
from repro.models.zoo import DATASET_SPEC
from repro.quant import PTQPipeline
from repro.training import predict_logits

from conftest import save_result

N_IMAGES = 128


@pytest.fixture(scope="module")
def setup():
    model, fp32 = get_trained_model("vit_mini_s", verbose=True)
    train_set, val_set = make_splits(**DATASET_SPEC)
    calib = calibration_set(train_set, 32)
    return model, calib, val_set


def test_integer_inference_agreement(benchmark, setup):
    model, calib, val_set = setup
    images = val_set.images[:N_IMAGES]
    labels = val_set.labels[:N_IMAGES]

    rows = []
    for bits in (8, 6):
        pipeline = PTQPipeline(model, method="quq", bits=bits, coverage="full")
        pipeline.calibrate(calib)
        fq_logits = predict_logits(model, images)
        executor = ModelExecutor(model, pipeline, bits=bits)
        pipeline.detach()
        hw_logits = executor.run(images.astype(np.float64))

        agreement = float(np.mean(fq_logits.argmax(-1) == hw_logits.argmax(-1)))
        acc_fq = float(100 * np.mean(fq_logits.argmax(-1) == labels))
        acc_hw = float(100 * np.mean(hw_logits.argmax(-1) == labels))
        rows.append([bits, round(acc_fq, 2), round(acc_hw, 2), round(agreement, 4)])

    save_result(
        "extension_integer_inference",
        format_table(
            ["Bits", "fake-quant Top-1", "integer-path Top-1", "argmax agreement"],
            rows,
            title="Extension: full integer-only inference on the QUA "
            f"({N_IMAGES} validation images)",
        ),
    )
    for row in rows:
        assert row[3] >= 0.95

    # Timing target: one integer-path forward of a small batch.
    pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
    pipeline.calibrate(calib)
    executor = ModelExecutor(model, pipeline, bits=8)
    pipeline.detach()
    benchmark(executor.run, images[:16].astype(np.float64))
