"""Ablation: contribution of the Hessian-weighted grid search, and the
storage cost (bits per element) of each quantization scheme.

The paper's protocol always includes the PTQ4ViT-style grid search; this
bench quantifies what it buys at the substrate's 4-bit stress point, and
backs the Section 5 argument that row-wise (FQ-ViT) and index-table
(BiScaled) schemes carry hidden storage overhead that QUQ avoids (QUQ's
side information is two FC registers plus one base delta per tensor).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.quant import PTQPipeline, hessian_refine
from repro.training import evaluate_top1

from conftest import save_result

STRESS_BITS = 4


@pytest.fixture(scope="module")
def search_rows(zoo, calib, val_subset):
    model, _ = zoo["vit_s"]
    rows = []
    for method in ("baseq", "quq"):
        for refine in ("none", "mse", "hessian"):
            pipeline = PTQPipeline(model, method=method, bits=STRESS_BITS, coverage="full")
            pipeline.calibrate(calib)
            if refine != "none":
                hessian_refine(pipeline, calib, weighted=refine == "hessian")
            accuracy = evaluate_top1(model, val_subset)
            pipeline.detach()
            rows.append([method, refine, round(accuracy, 2)])
    return rows


def test_grid_search_contribution(benchmark, search_rows, zoo, calib, val_subset):
    save_result(
        "ablation_grid_search",
        format_table(
            ["Method", "Scale search", f"Top-1 @ {STRESS_BITS}-bit full"],
            search_rows,
            title="Ablation: scale-search variants at the stress bit-width",
        ),
    )
    by_key = {(r[0], r[1]): r[2] for r in search_rows}
    # The search must not hurt, and the Hessian weighting must keep QUQ
    # at least level with the unweighted search.
    for method in ("baseq", "quq"):
        assert by_key[(method, "hessian")] >= by_key[(method, "none")] - 2.0

    model, _ = zoo["vit_s"]

    def refine_once():
        pipeline = PTQPipeline(model, method="quq", bits=STRESS_BITS, coverage="full")
        pipeline.calibrate(calib)
        hessian_refine(pipeline, calib)
        pipeline.detach()

    benchmark(refine_once)


def test_bits_per_element_accounting(benchmark, zoo, calib):
    model, _ = zoo["vit_s"]

    def census():
        rows = []
        for method in ("baseq", "quq", "biscaled", "fqvit"):
            pipeline = PTQPipeline(model, method=method, bits=6, coverage="full")
            pipeline.calibrate(calib)
            rows.append([method, round(pipeline.average_bits_per_element(), 3)])
            pipeline.detach()
        return rows

    rows = benchmark(census)
    save_result(
        "ablation_bits_per_element",
        format_table(
            ["Method", "avg bits/element"], rows,
            title="Ablation: effective storage cost at nominal 6-bit",
        ),
    )
    cost = dict(rows)
    # QUQ matches plain uniform exactly; FQ-ViT and BiScaled pay overhead.
    assert cost["quq"] == cost["baseq"] == 6.0
    assert cost["fqvit"] > 6.0
    assert cost["biscaled"] > 6.0
