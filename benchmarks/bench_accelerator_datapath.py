"""Extension bench: the QUA integer datapath end to end.

Not a table in the paper, but it demonstrates the property Section 4 rests
on: the QUB-encoded integer pipeline (DU -> PE array -> QU) is bit-exact
against the dequantized-float reference, and the cycle model shows how the
paper's two array sizes trade throughput.  Also quantifies the
encoding-space overlap wastage Principle 1 of Section 3.3 tries to limit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.hw import QUA, encode_tensor, gemm_cycles
from repro.models.configs import PAPER_CONFIGS
from repro.quant import QUQQuantizer

from conftest import save_result


def test_integer_gemm_bit_exact_at_scale(benchmark, rng=np.random.default_rng(0)):
    x = rng.standard_t(df=4, size=(197, 384)) * 0.4  # a ViT-S qkv GEMM input
    w = rng.normal(size=(384, 384)) * 0.03
    ex = encode_tensor(x, 8)
    ew = encode_tensor(w, 8)
    qua = QUA(array=16)

    acc = benchmark(qua.integer_gemm, ex, ew)
    hw = acc.astype(np.float64) * ex.base_delta * ew.base_delta
    ref = ex.to_float() @ ew.to_float()
    # The integer path is the exact one; the float64 reference loses a few
    # ulps to accumulation rounding, so allow a tiny absolute tolerance for
    # near-cancelling outputs.
    np.testing.assert_allclose(hw, ref, rtol=1e-9, atol=1e-9)


def test_cycle_model_for_paper_gemms(benchmark):
    def build():
        rows = []
        for name in ("vit_s", "vit_l"):
            config = PAPER_CONFIGS[name]
            tokens, dim = config.num_tokens, config.embed_dim
            for array in (16, 64):
                rows.append(
                    [
                        name, f"{array}x{array}",
                        gemm_cycles(tokens, dim, 3 * dim, array),  # qkv
                        gemm_cycles(tokens, dim, 4 * dim, array),  # fc1
                    ]
                )
        return rows

    rows = benchmark(build)
    save_result(
        "accelerator_cycles",
        format_table(
            ["Model", "PE array", "qkv GEMM cycles", "fc1 GEMM cycles"],
            rows,
            title="Extension: weight-stationary cycle counts per GEMM",
        ),
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    assert by_key[("vit_s", "64x64")] < by_key[("vit_s", "16x16")]


def test_encoding_overlap_wastage(benchmark, rng=np.random.default_rng(1)):
    """Fraction of coarse codes whose values the fine subrange already
    represents — the wastage Principle 1 (ratio >= lambda_A) bounds."""

    def measure():
        rows = []
        for df, label in ((1.5, "very long tail"), (3.0, "long tail"), (30.0, "near-gaussian")):
            x = rng.standard_t(df=df, size=30000)
            params = QUQQuantizer(6).fit(x).params
            wasted = total = 0
            fine_pos = params.positive_fine_bound()
            fine_neg = params.negative_fine_bound()
            for subrange, spec in params.active():
                if subrange.is_fine:
                    continue
                codes = np.arange(1, spec.levels)
                values = codes * spec.delta
                bound = fine_neg if subrange.is_negative else fine_pos
                wasted += int((values <= bound).sum())
                total += len(codes)
            rows.append([label, params.mode.value, total, wasted,
                         f"{100 * wasted / total:.1f}%" if total else "-"])
        return rows

    rows = benchmark(measure)
    save_result(
        "ablation_overlap_wastage",
        format_table(
            ["Distribution", "Mode", "Coarse codes", "Overlapping", "Wastage"],
            rows,
            title="Ablation: encoding-space overlap between coarse and fine subranges",
        ),
    )
    # With lambda_A = 4 the wastage stays bounded (< half the coarse codes).
    for row in rows:
        if row[2]:
            assert row[3] <= row[2] * 0.5
