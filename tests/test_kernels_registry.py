"""The kernel registry: registration rules, dispatch precedence, env
override, counters, caches, snapshot shape, and the routed call sites."""

import numpy as np
import pytest

from repro.kernels import (
    KERNELS,
    KernelRegistry,
    KernelRegistryError,
    ParitySpec,
    active_kernels,
    clear_kernel_caches,
    fused_encoder,
    get_kernel,
    kernel_cache_info,
    kernel_pairs,
    kernels_snapshot,
)
from repro.quant.quq import QUQQuantizer


@pytest.fixture()
def registry():
    return KernelRegistry()


def _noop(*args, **kwargs):
    return None


def _other(*args, **kwargs):
    return None


class TestRegistration:
    def test_reference_then_fast(self, registry):
        registry.register("op.a", "reference", _noop)
        registry.register("op.a", "fast1", _other, parity=ParitySpec())
        assert registry.variants("op.a") == ["reference", "fast1"]

    def test_fast_without_reference_rejected(self, registry):
        with pytest.raises(KernelRegistryError, match="needs a reference"):
            registry.register("op.a", "fast1", _noop, parity=ParitySpec())

    def test_fast_without_parity_rejected(self, registry):
        registry.register("op.a", "reference", _noop)
        with pytest.raises(KernelRegistryError, match="parity spec"):
            registry.register("op.a", "fast1", _other)

    def test_duplicate_rejected(self, registry):
        registry.register("op.a", "reference", _noop)
        with pytest.raises(KernelRegistryError, match="already registered"):
            registry.register("op.a", "reference", _other)

    def test_decorator_form(self, registry):
        @registry.register("op.a", "reference")
        def ref():
            return "ref"

        assert registry.reference("op.a").fn is ref

    def test_tolerance_spec_needs_tolerance(self):
        with pytest.raises(ValueError, match="nonzero"):
            ParitySpec(bit_exact=False)
        spec = ParitySpec(bit_exact=False, atol=1e-6)
        assert "allclose" in spec.describe()

    def test_unknown_op(self, registry):
        with pytest.raises(KernelRegistryError, match="unknown kernel op"):
            registry.resolve("op.missing")


class TestDispatch:
    @pytest.fixture()
    def populated(self, registry):
        registry.register("op.a", "reference", _noop)
        registry.register("op.a", "v1", _other, parity=ParitySpec())
        registry.register("op.b", "reference", _noop)
        return registry

    def test_fast_by_default(self, populated):
        assert populated.resolve("op.a").variant == "v1"
        assert populated.resolve("op.b").variant == "reference"

    def test_newest_fast_wins(self, populated):
        populated.register("op.a", "v2", _noop, parity=ParitySpec())
        assert populated.resolve("op.a").variant == "v2"

    def test_explicit_prefer(self, populated):
        assert populated.resolve("op.a", "reference").variant == "reference"
        assert populated.resolve("op.a", "v1").variant == "v1"
        assert populated.resolve("op.a", "fast").variant == "v1"
        with pytest.raises(KernelRegistryError, match="no variant"):
            populated.resolve("op.a", "v9")

    def test_env_reference_global(self, populated, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert populated.resolve("op.a").variant == "reference"
        monkeypatch.setenv("REPRO_KERNELS", "fast")
        assert populated.resolve("op.a").variant == "v1"

    def test_env_per_op_pins(self, populated, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "op.a=reference")
        assert populated.resolve("op.a").variant == "reference"
        assert populated.resolve("op.b").variant == "reference"  # no fast

    def test_env_bad_entry(self, populated, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "garbage")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            populated.resolve("op.a")

    def test_prefer_beats_env(self, populated, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert populated.resolve("op.a", "fast").variant == "v1"

    def test_get_counts_dispatch(self, populated):
        populated.get("op.a")
        populated.get("op.a", "reference")
        assert populated.counters["op.a:v1"] == 1
        assert populated.counters["op.a:reference"] == 1
        populated.reset_counters()
        assert populated.counters == {}

    def test_pairs(self, populated):
        pairs = populated.pairs()
        assert [(op, fast.variant) for op, _, fast in pairs] == [("op.a", "v1")]

    def test_snapshot_shape(self, populated, monkeypatch):
        populated.get("op.a")
        populated.count("op.a:cache_hit", 3)
        snap = populated.snapshot()
        assert snap["override"] is None
        assert snap["ops"]["op.a"]["selected"] == "v1"
        assert snap["ops"]["op.a"]["calls"] == {"v1": 1}
        assert snap["cache"] == {"op.a:cache_hit": 3}
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert populated.snapshot()["override"] == "reference"


class TestBuiltinRegistry:
    """The process-wide registry with the built-in ops loaded."""

    def test_all_ops_registered(self):
        ops = {op for op, _, _ in kernel_pairs()}
        assert ops == {
            "quq.fake_quantize", "qub.encode", "qub.encode_batch",
            "qub.pack", "qub.decode_lut", "gemm.int",
            "sfu.sqrt", "sfu.exp", "sfu.softmax", "sfu.gelu",
            "sfu.layernorm",
        }
        # quantize is reference-only: present in the registry, no pair.
        assert "quq.quantize" in KERNELS.ops()

    def test_selected_fast_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        selected = active_kernels()
        assert selected["quq.fake_quantize"] == "fused"
        assert selected["gemm.int"] == "blas_f64"
        assert selected["quq.quantize"] == "reference"

    def test_env_forces_reference_everywhere(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert set(active_kernels().values()) == {"reference"}

    def test_quantizer_routes_through_registry(self, monkeypatch):
        rng = np.random.default_rng(3)
        x = rng.normal(size=256)
        quantizer = QUQQuantizer(6).fit(x)
        KERNELS.reset_counters()
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        fast = quantizer.fake_quantize(x)
        assert KERNELS.counters.get("quq.fake_quantize:fused") == 1
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        ref = quantizer.fake_quantize(x)
        assert KERNELS.counters.get("quq.fake_quantize:reference") == 1
        np.testing.assert_array_equal(fast, ref)

    def test_fused_encoder_memo_shared(self):
        rng = np.random.default_rng(5)
        params = QUQQuantizer(6).fit(rng.normal(size=256)).params
        clear_kernel_caches()
        KERNELS.reset_counters()
        first = fused_encoder(params, 6)
        second = fused_encoder(params, 6)
        assert first is second
        assert KERNELS.counters["qub.encode:cache_miss"] == 1
        assert KERNELS.counters["qub.encode:cache_hit"] == 1
        assert kernel_cache_info()["fused_encoders"] >= 1

    def test_lut_cache_shared_and_counted(self):
        from repro.quant.qub import FCRegisters

        rng = np.random.default_rng(6)
        params = QUQQuantizer(6).fit(rng.normal(size=256)).params
        registers = FCRegisters.from_params(params)
        clear_kernel_caches()
        KERNELS.reset_counters()
        cached = get_kernel("qub.decode_lut")
        first = cached(registers, 6)
        second = cached(registers, 6)
        assert first is second
        assert not first.flags.writeable
        assert KERNELS.counters["qub.decode_lut:cache_miss"] == 1
        assert KERNELS.counters["qub.decode_lut:cache_hit"] == 1
        reference = get_kernel("qub.decode_lut", "reference")(registers, 6)
        np.testing.assert_array_equal(np.asarray(first), reference)

    def test_snapshot_serializable(self):
        import json

        json.dumps(kernels_snapshot())
