"""Tests for the sharded multi-process cluster engine.

The stub servable below lives at module scope so forked shard processes
inherit it (and the loader closure) by address-space copy — no pickling,
no model build inside the child, instant spawn.
"""

import numpy as np
import pytest

from repro.resilience import ResiliencePolicy
from repro.resilience.faults import (
    BATCH_EXCEPTION,
    QUEUE_SPIKE,
    STALL,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.soak import ChaosSoakConfig, run_chaos_soak
from repro.serve import BatchPolicy, ClusterEngine, ClusterPolicy, ModelKey

SPEC = "vit_s/quq/6"
FULL_SPEC = ModelKey.parse(SPEC).spec  # normalized lane/registry key
IMAGE = np.zeros((16, 16, 3), dtype=np.float32)


class StubServable:
    """Deterministic fake model: logits depend only on the input mean."""

    quantized = True
    classes = 10

    def predict(self, images, recorder=None):
        n = len(images)
        logits = np.zeros((n, self.classes), dtype=np.float32)
        logits[:, 1] = np.asarray(images).reshape(n, -1).mean(axis=1) + 1.0
        return logits

    def predict_float(self, images):
        return self.predict(images)


def stub_loader(spec):
    return StubServable()


def make_engine(shards=2, stall_s=0.3, **kwargs):
    return ClusterEngine(
        loader=stub_loader,
        policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0, max_queue=64,
                           timeout_ms=5000.0),
        cluster=ClusterPolicy(shards=shards, image_hw=16, max_classes=16),
        resilience=ResiliencePolicy(watchdog_stall_s=stall_s),
        **kwargs,
    )


class TestClusterLifecycle:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClusterPolicy(shards=0)
        with pytest.raises(ValueError):
            ClusterPolicy(max_redispatch=-1)

    def test_serves_requests_through_shard_processes(self):
        with make_engine() as engine:
            engine.warm(SPEC)
            handles = [engine.submit(SPEC, IMAGE) for _ in range(20)]
            results = [h.result(timeout=30.0) for h in handles]
            snap = engine.snapshot()
        assert all(r.label == 1 for r in results)
        assert all(r.quantized for r in results)
        assert snap["counters"]["responses_total"] == 20
        assert snap["counters"]["requests_total"] == 20
        lane = snap["lanes"][FULL_SPEC]
        assert len(lane["shards"]) == 2
        assert all(s["alive"] for s in lane["shards"])

    def test_loader_failure_surfaces_at_warm(self):
        def broken_loader(spec):
            raise RuntimeError("artifact missing")

        engine = ClusterEngine(
            loader=broken_loader,
            policy=BatchPolicy(max_batch_size=4),
            cluster=ClusterPolicy(shards=1, image_hw=16),
        )
        try:
            with pytest.raises(RuntimeError, match="artifact missing"):
                engine.warm(SPEC)
        finally:
            engine.stop()

    def test_rejects_images_that_do_not_fit_the_rings(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            with pytest.raises(ValueError, match="shared"):
                engine.submit(SPEC, np.zeros((32, 32, 3), dtype=np.float32))

    def test_stop_is_idempotent_and_reports_registry(self):
        engine = make_engine(shards=1)
        engine.warm(SPEC)
        view = engine.registry.snapshot()
        assert view["entries"] == [FULL_SPEC]
        assert len(view["shards"][FULL_SPEC]) == 1
        engine.stop()
        engine.stop()


class TestClusterSupervision:
    def test_shard_kill_recovers_without_silent_loss(self):
        with make_engine() as engine:
            engine.warm(SPEC)
            handles = [engine.submit(SPEC, IMAGE) for _ in range(12)]
            engine.kill_shard(SPEC, index=0)
            handles += [engine.submit(SPEC, IMAGE) for _ in range(12)]
            results = [h.result(timeout=30.0) for h in handles]
            snap = engine.snapshot()
        # Zero silent loss: every admitted request got a real answer.
        assert len(results) == 24
        assert snap["counters"]["responses_total"] == 24
        assert snap["counters"]["shard_restarts_total"] >= 1
        assert snap["counters"]["shard_crashes_total"] >= 1
        assert all(s["alive"] for s in snap["lanes"][FULL_SPEC]["shards"])

    def test_idle_crash_is_respawned_by_check_watchdog(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            engine.kill_shard(SPEC, index=0)
            key = ModelKey.parse(SPEC)
            with engine._lock:
                shard = engine._lanes[key].shards[0]
            shard.process.join(timeout=5.0)
            restarted = engine.check_watchdog()
            assert restarted == [FULL_SPEC]
            result = engine.submit(SPEC, IMAGE).result(timeout=30.0)
        assert result.label == 1

    def test_injected_stall_trips_the_watchdog_restart(self):
        plan = FaultPlan([FaultSpec(STALL, start=1, count=1, stall_s=2.0)])
        with make_engine(stall_s=0.25, faults=plan) as engine:
            engine.warm(SPEC)
            handles = [engine.submit(SPEC, IMAGE) for _ in range(12)]
            results = [h.result(timeout=30.0) for h in handles]
            snap = engine.snapshot()
        assert len(results) == 12
        assert snap["counters"]["watchdog_restarts_total"] >= 1
        assert snap["counters"]["reroutes_total"] >= 1
        assert snap["counters"]["responses_total"] == 12

    def test_batch_exception_fails_over_to_float(self):
        plan = FaultPlan([FaultSpec(BATCH_EXCEPTION, start=0, count=1)])
        with make_engine(shards=1, faults=plan) as engine:
            engine.warm(SPEC)
            result = engine.submit(SPEC, IMAGE).result(timeout=30.0)
            snap = engine.snapshot()
        assert result.quantized is False
        assert snap["counters"]["failovers_total"] >= 1

    def test_degraded_lane_serves_the_float_path(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            lane = engine._lane(ModelKey.parse(SPEC))
            lane.degrade(engine.clock() + 100.0)
            result = engine.submit(SPEC, IMAGE).result(timeout=30.0)
            snap = engine.snapshot()
        assert result.quantized is False
        assert snap["counters"]["degraded_batches_total"] >= 1
        assert snap["lanes"][FULL_SPEC]["degraded"] is True

    def test_registry_invalidate_rolls_the_shards(self):
        with make_engine() as engine:
            engine.warm(SPEC)
            assert engine.registry.invalidate(SPEC) is True
            snap = engine.registry.snapshot()
            result = engine.submit(SPEC, IMAGE).result(timeout=30.0)
        assert all(s["restarts"] >= 1 for s in snap["shards"][FULL_SPEC])
        assert result.label == 1


class TestClusterChaosSoak:
    def test_soak_rides_through_spikes_and_stalls(self):
        """Satellite: the PR 2 chaos harness audits the process topology
        unchanged — availability floor holds and nothing non-finite or
        silently dropped survives a queue spike plus a shard stall."""
        plan = FaultPlan([
            FaultSpec(QUEUE_SPIKE, start=10, count=2, spike=16),
            FaultSpec(STALL, start=4, count=1, stall_s=1.5),
        ])
        engine = make_engine(stall_s=0.25, faults=plan)
        config = ChaosSoakConfig(
            spec=SPEC, requests=48, rate=400.0, seed=0,
            availability_floor=0.5, image_size=16,
            watchdog_every=8, settle_s=15.0,
        )
        try:
            report = run_chaos_soak(engine, plan, config)
        finally:
            engine.stop()
        assert report["passed"], report["faults"]
        assert report["nonfinite_served"] == 0
        assert report["deadlock_free"] is True
        assert report["availability"] >= config.availability_floor
        assert report["faults"][STALL]["recovered"] is True
        assert report["faults"][QUEUE_SPIKE]["recovered"] is True
        # Ledger: every offered request was answered or explicitly refused.
        assert (report["completed"] + report["failed"] + report["rejected"]
                == report["offered"])


class TestScaleBenchmarkSmoke:
    def test_trace_replay_passes_all_gates(self):
        from repro.analysis.scale import (
            ScaleBenchConfig,
            format_scale_report,
            run_scale_benchmark,
        )
        from repro.serve import (
            AdmissionController,
            AdmissionPolicy,
            TraceConfig,
            tenant_mix,
        )

        trace = TraceConfig(
            duration_s=1.5, base_rate=200.0, seed=0, tenants=3,
            flash_multiplier=3.0,
        )
        admission = AdmissionController(
            AdmissionPolicy(tenant_weights=tenant_mix(trace))
        )
        engine = make_engine(admission=admission)
        config = ScaleBenchConfig(
            spec=SPEC, trace=trace, kill_shard_at=0.5, settle_s=10.0
        )
        try:
            report = run_scale_benchmark(engine, config)
        finally:
            engine.stop()
        assert report["schema_version"] == 2
        assert report["passed"], {
            key: report[key]
            for key in ("availability", "no_silent_drop", "fairness_ok",
                        "deadlock_free", "recovery_ok")
        }
        # Zero-silent-drop ledger.
        assert report["offered"] == report["admitted"] + report["rejected"]
        assert report["admitted"] == report["completed"] + report["failed"]
        assert report["nonfinite_served"] == 0
        # The mid-trace SIGKILL must have been noticed and repaired.
        assert report["recovery"]["killed_pid"] is not None
        assert report["recovery"]["shard_restarts_total"] >= 1
        rendered = format_scale_report(report)
        assert "Scale benchmark" in rendered
        assert "Shard-loss recovery" in rendered
        assert "Gates" in rendered


class TestElasticCluster:
    """The add/retire/quarantine surface the autoscaler drives."""

    def test_add_shard_grows_the_pool_and_serves(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            assert engine.shard_count(SPEC) == 1
            assert engine.add_shard(SPEC) is True
            assert engine.shard_count(SPEC) == 2
            handles = [engine.submit(SPEC, IMAGE) for _ in range(12)]
            results = [h.result(timeout=30.0) for h in handles]
            snap = engine.snapshot()
        assert all(r.label == 1 for r in results)
        shards = snap["lanes"][FULL_SPEC]["shards"]
        assert len(shards) == 2 and all(s["alive"] for s in shards)
        assert snap["counters"]["scale_ups_total"] == 1
        assert snap["gauges"][f'shards_live{{spec="{FULL_SPEC}"}}'] == 2

    def test_retire_drains_in_flight_work_without_loss(self):
        with make_engine(shards=2) as engine:
            engine.warm(SPEC)
            # Work in flight while the retire fences and drains.
            handles = [engine.submit(SPEC, IMAGE) for _ in range(24)]
            assert engine.retire_shard(SPEC) is True
            results = [h.result(timeout=30.0) for h in handles]
            more = [engine.submit(SPEC, IMAGE) for _ in range(8)]
            results += [h.result(timeout=30.0) for h in more]
            snap = engine.snapshot()
        # Zero losses across the drain: every request completed.
        assert len(results) == 32
        assert all(r.label == 1 for r in results)
        assert snap["counters"]["responses_total"] == 32
        assert snap["counters"]["scale_downs_total"] == 1
        assert len(snap["lanes"][FULL_SPEC]["shards"]) == 1

    def test_retire_never_removes_the_last_shard(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            assert engine.retire_shard(SPEC) is False
            assert engine.shard_count(SPEC) == 1

    def test_lane_stats_expose_controller_signals(self):
        with make_engine(shards=2) as engine:
            engine.warm(SPEC)
            stats = engine.lane_stats(SPEC)
        assert stats["shards"] == 2 and stats["shards_alive"] == 2
        assert stats["queue_capacity"] == 64
        assert stats["quarantined"] is False
        assert stats["crash_times"] == []
        assert engine.lane_stats("vit_s/quq/8") is None
        assert engine.lane_specs() == [FULL_SPEC]

    def test_quarantine_serves_float_in_parent_and_recovers(self):
        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            assert engine.quarantine_lane(SPEC) is True
            # Kill the only shard: the quarantined lane must not respawn
            # it, and must keep answering via the in-parent float path.
            engine.kill_shard(SPEC, 0)
            handles = [engine.submit(SPEC, IMAGE) for _ in range(6)]
            results = [h.result(timeout=30.0) for h in handles]
            assert all(r.label == 1 for r in results)
            assert all(not r.quantized for r in results)
            mid = engine.snapshot()
            assert mid["counters"]["quarantine_batches_total"] >= 1
            assert mid["gauges"][f'lane_quarantined{{spec="{FULL_SPEC}"}}'] == 1
            # Probe: clear the quarantine, let the watchdog respawn, and
            # the lane returns to quantized shard serving.
            assert engine.clear_quarantine(SPEC) is True
            engine.check_watchdog()
            back = [engine.submit(SPEC, IMAGE) for _ in range(4)]
            results = [h.result(timeout=30.0) for h in back]
            snap = engine.snapshot()
        assert all(r.quantized for r in results)
        assert snap["gauges"][f'lane_quarantined{{spec="{FULL_SPEC}"}}'] == 0
        assert snap["counters"]["quarantines_total"] == 1

    def test_crash_history_is_recorded_for_the_breaker(self):
        with make_engine(shards=2) as engine:
            engine.warm(SPEC)
            engine.kill_shard(SPEC, 0)
            handles = [engine.submit(SPEC, IMAGE) for _ in range(8)]
            for handle in handles:
                handle.result(timeout=30.0)
            stats = engine.lane_stats(SPEC)
        assert len(stats["crash_times"]) >= 1


class TestClusterDeadlines:
    def test_late_completion_is_withheld_with_typed_error(self):
        from repro.serve import DeadlineExceededError

        with make_engine(shards=1) as engine:
            engine.warm(SPEC)
            # A deadline far tighter than a shard round trip can meet.
            handle = engine.submit(SPEC, IMAGE, deadline_ms=0.001)
            with pytest.raises(DeadlineExceededError) as info:
                handle.result(timeout=30.0)
            snap = engine.snapshot()
        assert getattr(info.value, "reason", None) == "deadline"
        counters = snap["counters"]
        assert counters["deadline_misses_total"] >= 1
        assert counters['rejections_total{reason="deadline"}'] >= 1


class TestClusterBorrowReturn:
    def test_shard_moves_between_lanes_and_back(self):
        """Cluster-level loan: the exact retire+add sequence the
        autoscaler's borrow pass performs, against real processes —
        capacity moves to the hot lane and returns, serving throughout."""
        hot, idle = SPEC, "vit_s/quq/4"
        hot_key = FULL_SPEC
        idle_key = ModelKey.parse(idle).spec
        with make_engine(shards=2) as engine:
            engine.warm(hot)
            engine.warm(idle)
            # Borrow: drain a shard out of the idle lane, respawn on hot.
            assert engine.retire_shard(idle) is True
            assert engine.add_shard(hot) is True
            assert engine.shard_count(hot) == 3
            assert engine.shard_count(idle) == 1
            handles = [engine.submit(hot, IMAGE) for _ in range(12)]
            handles += [engine.submit(idle, IMAGE) for _ in range(4)]
            results = [h.result(timeout=30.0) for h in handles]
            # Return: unwind the loan.
            assert engine.retire_shard(hot) is True
            assert engine.add_shard(idle) is True
            assert engine.shard_count(hot) == 2
            assert engine.shard_count(idle) == 2
            handles = [engine.submit(s, IMAGE) for s in (hot, idle)]
            results += [h.result(timeout=30.0) for h in handles]
            snap = engine.snapshot()
        assert len(results) == 18
        assert all(r.label == 1 for r in results)
        assert snap["counters"]["responses_total"] == 18
        assert snap["gauges"][f'shards_live{{spec="{hot_key}"}}'] == 2
        assert snap["gauges"][f'shards_live{{spec="{idle_key}"}}'] == 2
