"""Tests for the integer-only special-function kernels (I-BERT/I-ViT style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erf

from repro.hw import i_exp, i_gelu, i_layernorm, i_softmax, i_sqrt


class TestISqrt:
    def test_exact_small_values(self):
        n = np.arange(0, 200)
        np.testing.assert_array_equal(i_sqrt(n), np.floor(np.sqrt(n)).astype(np.int64))

    @given(st.integers(0, 2**52))
    @settings(max_examples=200, deadline=None)
    def test_property_floor_sqrt(self, n):
        root = int(i_sqrt(np.array([n]))[0])
        assert root * root <= n
        assert (root + 1) * (root + 1) > n

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            i_sqrt(np.array([-1]))


class TestIExp:
    def test_matches_float_exp(self, rng):
        x = -np.abs(rng.normal(size=500)) * 4
        scale = 2.0**-12
        q = np.rint(x / scale).astype(np.int64)
        q_out, s_out = i_exp(q, scale)
        err = np.abs(q_out * s_out - np.exp(x))
        assert err.max() < 0.02

    def test_rejects_positive_inputs(self):
        with pytest.raises(ValueError):
            i_exp(np.array([1]), 0.01)

    def test_monotone(self, rng):
        x = -np.sort(np.abs(rng.normal(size=100)) * 3)[::-1]  # ascending
        scale = 2.0**-12
        q = np.rint(x / scale).astype(np.int64)
        q_out, _ = i_exp(q, scale)
        assert (np.diff(q_out) >= 0).all()


class TestISoftmax:
    def test_close_to_float_softmax(self, rng):
        x = rng.normal(size=(8, 32)) * 4
        scale = 2.0**-10
        q = np.rint(x / scale).astype(np.int64)
        q_out, s_out = i_softmax(q, scale)
        ref = np.exp(x - x.max(-1, keepdims=True))
        ref /= ref.sum(-1, keepdims=True)
        assert np.abs(q_out * s_out - ref).max() < 0.01

    def test_rows_sum_close_to_one(self, rng):
        x = rng.normal(size=(4, 16))
        q = np.rint(x / 2.0**-10).astype(np.int64)
        q_out, s_out = i_softmax(q, 2.0**-10)
        sums = (q_out * s_out).sum(-1)
        np.testing.assert_allclose(sums, np.ones(4), atol=0.01)

    def test_output_codes_fit_declared_width(self, rng):
        x = rng.normal(size=(4, 16)) * 5
        q = np.rint(x / 2.0**-10).astype(np.int64)
        q_out, _ = i_softmax(q, 2.0**-10, out_bits=8)
        assert q_out.min() >= 0 and q_out.max() <= 255


class TestIGelu:
    def test_matches_float_gelu(self, rng):
        x = rng.normal(size=1000) * 2
        scale = 2.0**-10
        q = np.rint(x / scale).astype(np.int64)
        q_out, s_out = i_gelu(q, scale)
        ref = x * 0.5 * (1 + erf(x / np.sqrt(2)))
        assert np.abs(q_out * s_out - ref).max() < 0.05

    def test_saturates_correctly_at_extremes(self):
        scale = 2.0**-10
        q = np.rint(np.array([8.0, -8.0]) / scale).astype(np.int64)
        q_out, s_out = i_gelu(q, scale)
        values = q_out * s_out
        assert values[0] == pytest.approx(8.0, abs=0.1)
        assert values[1] == pytest.approx(0.0, abs=0.1)

    def test_reflection_identity(self, rng):
        # gelu(x) + gelu(-x) == x * erf(x / sqrt(2)) for the exact function;
        # the integer approximation must preserve it within its error budget.
        x = np.abs(rng.normal(size=200))
        scale = 2.0**-10
        qp, sp = i_gelu(np.rint(x / scale).astype(np.int64), scale)
        qn, sn = i_gelu(np.rint(-x / scale).astype(np.int64), scale)
        identity = x * erf(x / np.sqrt(2))
        np.testing.assert_allclose(qp * sp + qn * sn, identity, atol=0.05)


class TestILayerNorm:
    def test_matches_float_layernorm(self, rng):
        x = rng.normal(size=(16, 64)) * 3 + 2
        scale = 2.0**-14
        q = np.rint(x / scale).astype(np.int64)
        q_out, s_out = i_layernorm(q, scale, out_bits=12)
        ref = (x - x.mean(-1, keepdims=True)) / x.std(-1, keepdims=True)
        assert np.abs(q_out * s_out - ref).max() < 0.05

    def test_affine_folding(self, rng):
        x = rng.normal(size=(4, 32))
        weight = rng.uniform(0.5, 1.5, size=32)
        bias = rng.normal(size=32)
        scale = 2.0**-14
        q = np.rint(x / scale).astype(np.int64)
        q_out, s_out = i_layernorm(q, scale, weight=weight, bias=bias, out_bits=12)
        ref = (x - x.mean(-1, keepdims=True)) / x.std(-1, keepdims=True) * weight + bias
        assert np.abs(q_out * s_out - ref).max() < 0.1
