"""Integration tests: every fault class, injected and recovered from.

Each test drives the serving engine with a :class:`FaultPlan` window for
one fault class and asserts the full resilience contract:

* no deadlock — every submitted request resolves (the conftest timeout
  guard turns a hang into a failure);
* no bad payloads — no completed :class:`ServeResult` ever carries
  NaN/Inf logits;
* observability — the matching metric/stat incremented;
* recovery — the lane serves normally once the window has passed.

The engine runs on a fake clock (idle dispatch serves each request the
moment the worker is free, and breaker/watchdog transitions are driven
by explicit ``advance`` calls); the retry policy uses a no-op sleep.
"""

import time

import numpy as np
import pytest

from repro.resilience import (
    BATCH_EXCEPTION,
    CLOSED,
    LOAD_ERROR,
    NUMERIC,
    OPEN,
    QUEUE_SPIKE,
    STALL,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    NumericGuardError,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.faults import FAULT_KINDS
from repro.resilience.soak import ChaosSoakConfig, format_soak_report, run_chaos_soak
from repro.serve import BatchPolicy, ModelRegistry, QueueFullError, ServeEngine
from repro.serve.registry import ModelKey
from tests.test_serve_registry import tiny_loader

SPEC = "vit_s/quq/4"
LANE = ModelKey.parse(SPEC).spec  # canonical lane label in snapshots


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_registry(tmp_path, calib_images, plan, attempts=4):
    return ModelRegistry(
        capacity=2,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
        retry=RetryPolicy(attempts=attempts, backoff_s=0.01, sleep=lambda s: None),
        faults=plan,
    )


def make_engine(registry, plan, clock, **policy_kwargs):
    defaults = dict(breaker_failures=2, breaker_cooldown_s=5.0, watchdog_stall_s=2.0)
    defaults.update(policy_kwargs)
    return ServeEngine(
        registry,
        BatchPolicy(max_batch_size=4, max_wait_ms=5.0, max_queue=64),
        clock=clock,
        resilience=ResiliencePolicy(**defaults),
        faults=plan,
    )


def serve_one(engine, image, timeout=30.0):
    result = engine.submit(SPEC, image).result(timeout=timeout)
    assert np.isfinite(result.logits).all()  # the no-bad-payloads contract
    return result


class TestLoadErrorRecovery:
    def test_retry_absorbs_transient_window(self, tmp_path, calib_images):
        plan = FaultPlan([FaultSpec(LOAD_ERROR, start=0, count=2)])
        registry = make_registry(tmp_path, calib_images, plan)
        servable = registry.get(SPEC)
        assert servable.quantized
        snap = registry.snapshot()
        assert snap["retries"] == 2 and snap["load_failures"] == 0
        assert plan.injected(LOAD_ERROR) == 2

    def test_exhausted_retries_fail_batch_then_lane_recovers(
        self, tmp_path, calib_images, tiny_data
    ):
        # Four injected failures against a three-attempt budget: the first
        # get() fails; its request is failed (not hung); the next get()
        # retries through the tail of the window and recovers.
        plan = FaultPlan([FaultSpec(LOAD_ERROR, start=0, count=4)])
        registry = make_registry(tmp_path, calib_images, plan, attempts=3)
        clock = FakeClock()
        _, val_set = tiny_data
        with make_engine(registry, plan, clock) as engine:
            handle = engine.submit(SPEC, val_set.images[0])
            with pytest.raises(FaultInjected):
                handle.result(timeout=30.0)
            assert registry.snapshot()["load_failures"] == 1
            assert engine.snapshot()["counters"]["errors_total"] == 1
            result = serve_one(engine, val_set.images[1])  # recovery
            assert result.quantized
        assert registry.snapshot()["retries"] == 3  # 2 + 1 across both gets


class TestCorruptStateRecovery:
    def test_checksum_reject_forces_recalibration(
        self, tmp_path, calib_images, tiny_data
    ):
        plan = FaultPlan([FaultSpec("corrupt_state", start=0, count=1)])
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(registry, plan, clock) as engine:
            first = serve_one(engine, val_set.images[0])
            assert first.quantized
            # Drop the cached entry: the rebuild hits the (now tampered)
            # on-disk artifact, rejects it by checksum, and recalibrates.
            assert engine.registry.invalidate(SPEC)
            second = serve_one(engine, val_set.images[1])
            assert second.quantized
        snap = registry.snapshot()
        assert snap["checksum_rejects"] == 1
        assert snap["calibrations"] == 2  # initial + post-reject
        assert snap["fallbacks"] == 0  # recovered, not degraded
        assert plan.injected("corrupt_state") == 1


class TestBatchExceptionRecovery:
    def test_breaker_trips_to_float_then_probes_back(
        self, tmp_path, calib_images, tiny_data
    ):
        plan = FaultPlan([FaultSpec(BATCH_EXCEPTION, start=0, count=2)])
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(registry, plan, clock, breaker_failures=2) as engine:
            engine.warm(SPEC)
            # Two injected batch exceptions: both fail over to float (the
            # requests still succeed), and the second trips the breaker.
            assert not serve_one(engine, val_set.images[0]).quantized
            assert not serve_one(engine, val_set.images[1]).quantized
            lane = engine.snapshot()["lanes"][LANE]
            assert lane["breaker"]["state"] == OPEN
            assert lane["breaker"]["trips"] == 1
            # Open: quantized path not even attempted, still serving float.
            assert not serve_one(engine, val_set.images[2]).quantized
            # Cooldown elapses on the fake clock: the half-open probe runs
            # the (now healthy) quantized path and closes the breaker.
            clock.advance(5.0)
            assert serve_one(engine, val_set.images[3]).quantized
            lane = engine.snapshot()["lanes"][LANE]
            assert lane["breaker"]["state"] == CLOSED
            assert lane["breaker"]["recoveries"] == 1
        counters = engine.snapshot()["counters"]
        assert counters["failovers_total"] == 2
        assert counters.get("errors_total", 0) == 0  # nothing user-visible failed


class TestNumericGuard:
    @pytest.mark.parametrize("mode", ["nan", "inf", "overflow"])
    def test_polluted_logits_fail_over_to_float(
        self, tmp_path, calib_images, tiny_data, mode
    ):
        plan = FaultPlan([FaultSpec(NUMERIC, start=0, count=1, mode=mode)])
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(registry, plan, clock, breaker_failures=3) as engine:
            engine.warm(SPEC)
            first = serve_one(engine, val_set.images[0])
            assert not first.quantized  # guard caught it; float answered
            second = serve_one(engine, val_set.images[1])
            assert second.quantized  # window passed: quantized path back
        counters = engine.snapshot()["counters"]
        assert counters["guard_trips_total"] == 1
        assert counters["failovers_total"] == 1
        assert plan.injected(NUMERIC) == 1

    def test_bad_on_both_paths_is_failed_never_served(
        self, tmp_path, calib_images, tiny_data
    ):
        # A saturation limit below any real logit makes both the quantized
        # and the float path fail the scan — the batch must be failed.
        plan = FaultPlan()
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(
            registry, plan, clock, guard_saturation=1e-12
        ) as engine:
            handle = engine.submit(SPEC, val_set.images[0])
            with pytest.raises(NumericGuardError):
                handle.result(timeout=30.0)
        counters = engine.snapshot()["counters"]
        assert counters["guard_trips_total"] >= 1
        assert counters["errors_total"] == 1
        assert counters.get("responses_total", 0) == 0  # never served


class TestStallWatchdog:
    def test_watchdog_restarts_stalled_lane(self, tmp_path, calib_images, tiny_data):
        plan = FaultPlan([FaultSpec(STALL, start=0, count=1, stall_s=60.0)])
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(registry, plan, clock, watchdog_stall_s=2.0) as engine:
            engine.warm(SPEC)
            stuck = engine.submit(SPEC, val_set.images[0])
            # Wait (real time) until the worker is wedged inside the batch.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                lanes = engine.snapshot()["lanes"]
                if lanes and next(iter(lanes.values()))["queued"] == 0:
                    break
                time.sleep(0.005)
            clock.advance(2.0)  # past the stall threshold
            assert engine.check_watchdog() == [LANE]
            # The replacement worker keeps the lane serving while the
            # wedged one is still blocked.  The wedged batch keeps the
            # lane non-idle, so dispatch rides the batching timer — which
            # on the frozen clock needs an explicit advance.
            fresh_handle = engine.submit(SPEC, val_set.images[1])
            clock.advance(0.01)
            fresh = fresh_handle.result(timeout=30.0)
            assert np.isfinite(fresh.logits).all()
            assert fresh.quantized
            # Releasing the stall lets the wedged worker finish its batch.
            plan.release_stalls()
            result = stuck.result(timeout=30.0)
            assert np.isfinite(result.logits).all()
        counters = engine.snapshot()["counters"]
        assert counters["watchdog_restarts_total"] == 1
        lane = engine.snapshot()["lanes"][LANE]
        assert lane["watchdog_restarts"] == 1
        assert plan.injected(STALL) == 1

    def test_check_watchdog_ignores_idle_lanes(self, tmp_path, calib_images, tiny_data):
        plan = FaultPlan()
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        with make_engine(registry, plan, clock, watchdog_stall_s=2.0) as engine:
            serve_one(engine, val_set.images[0])
            clock.advance(100.0)  # ancient beat, but the lane is idle
            assert engine.check_watchdog() == []
        assert engine.snapshot()["counters"].get("watchdog_restarts_total", 0) == 0


class TestQueueSpike:
    def test_spike_is_bounded_and_fully_accounted(
        self, tmp_path, calib_images, tiny_data
    ):
        plan = FaultPlan([FaultSpec(QUEUE_SPIKE, start=1, count=1, spike=16)])
        registry = make_registry(tmp_path, calib_images, plan)
        _, val_set = tiny_data
        clock = FakeClock()
        engine = ServeEngine(
            registry,
            BatchPolicy(max_batch_size=2, max_wait_ms=5.0, max_queue=4),
            clock=clock,
            resilience=ResiliencePolicy(),
            faults=plan,
        )
        with engine:
            engine.warm(SPEC)
            handles, rejected, offered = [], 0, 0
            for index in range(3):
                spike = plan.fire(QUEUE_SPIKE, site=SPEC)
                burst = 1 + (spike.spike if spike is not None else 0)
                for _ in range(burst):
                    offered += 1
                    try:
                        handles.append(engine.submit(SPEC, val_set.images[index]))
                    except QueueFullError:
                        rejected += 1
            results = [h.result(timeout=30.0) for h in handles]
        assert plan.injected(QUEUE_SPIKE) == 1
        assert offered == 3 + 16
        assert rejected > 0  # a 16-burst cannot fit a queue of 4
        assert len(results) + rejected == offered  # nothing dropped silently
        for result in results:
            assert np.isfinite(result.logits).all()
        counters = engine.snapshot()["counters"]
        assert counters["rejected_total"] == rejected
        assert counters["requests_total"] == len(handles)


class TestChaosSoakMini:
    def test_seeded_soak_passes_end_to_end(self, tmp_path, calib_images):
        plan = FaultPlan.seeded(seed=0, kinds=FAULT_KINDS, horizon=8,
                                max_width=2, stall_s=0.1, spike=8)
        registry = ModelRegistry(
            capacity=2,
            artifact_dir=tmp_path,
            loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
            retry=RetryPolicy(attempts=4, backoff_s=0.01),
            faults=plan,
        )
        engine = ServeEngine(
            registry,
            BatchPolicy(max_batch_size=4, max_wait_ms=5.0, max_queue=64,
                        timeout_ms=10000.0),
            resilience=ResiliencePolicy(breaker_failures=2,
                                        breaker_cooldown_s=0.2,
                                        watchdog_stall_s=0.05),
            faults=plan,
        )
        config = ChaosSoakConfig(spec=SPEC, requests=64, rate=250.0, seed=0,
                                 availability_floor=0.5, image_size=16,
                                 settle_s=10.0)
        with engine:
            report = run_chaos_soak(engine, plan, config)
        assert report["deadlock_free"], report
        assert report["nonfinite_served"] == 0, report
        assert report["availability"] >= 0.5, report
        assert report["faults"], "the seeded plan injected nothing"
        for kind, entry in report["faults"].items():
            assert entry["injected"] >= 1
            assert entry["recovered"], (kind, report)
        assert report["passed"], report
        rendered = format_soak_report(report)
        assert "Chaos soak" in rendered and "PASS" in rendered
