"""Tests for drift-aware serving: monitor wiring, shadow recalibration,
canary gating, cooldown, and the engine integration."""

import numpy as np
import pytest

from repro.data import corrupt_images
from repro.quant.drift import DriftThresholds
from repro.serve import (
    BatchPolicy,
    DriftPolicy,
    ModelKey,
    ModelRegistry,
    RecalibrationManager,
    ServeEngine,
)
from repro.serve.metrics import Metrics
from tests.test_serve_registry import tiny_loader

SPEC = "vit_s/quq/4"


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=4,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


def make_policy(**overrides):
    # Tuned so the tiny fixtures can trigger every transition quickly.
    # The canary floor is 0.0 because the untrained tiny model's logits
    # are near-uniform, making quantized-vs-float agreement meaningless.
    defaults = dict(
        thresholds=DriftThresholds(consecutive=2, min_samples=16),
        sample_every=1,
        buffer_size=48,
        min_recalibration_images=16,
        canary_count=8,
        canary_agreement_floor=0.0,
        cooldown_s=100.0,
    )
    defaults.update(overrides)
    return DriftPolicy(**defaults)


def drifted_batches(images, count, batch=16, severity=5):
    for index in range(count):
        chunk = images[index * batch : (index + 1) * batch]
        yield corrupt_images(chunk, "gaussian_noise", severity, seed=index)


class TestRegistryShadowSwap:
    def test_shadow_build_leaves_serving_entry_alone(self, registry, calib_images):
        key = ModelKey.parse(SPEC)
        original = registry.get(key)
        candidate = registry.shadow_build(key, calib_images[:16])
        assert candidate is not original
        assert candidate.quantized and candidate.fingerprints
        assert registry.get(key) is original  # not installed yet
        assert registry.snapshot()["calibrations"] == 2

    def test_swap_installs_atomically_and_counts(self, registry, calib_images):
        key = ModelKey.parse(SPEC)
        registry.get(key)
        candidate = registry.shadow_build(key, calib_images[:16])
        registry.swap(key, candidate)
        assert registry.get(key) is candidate
        assert registry.snapshot()["swaps"] == 1

    def test_swap_rejects_mismatched_key(self, registry, calib_images):
        registry.get(SPEC)
        candidate = registry.shadow_build(ModelKey.parse(SPEC), calib_images[:16])
        with pytest.raises(ValueError, match="not"):
            registry.swap(ModelKey.parse("vit_s/quq/6"), candidate)

    def test_shadow_build_rejects_fp32(self, registry, calib_images):
        with pytest.raises(ValueError, match="fp32"):
            registry.shadow_build(ModelKey.parse("vit_s/fp32/32"), calib_images[:16])


class TestRecalibrationManager:
    def test_sustained_drift_swaps_and_resets(self, registry, tiny_data):
        _, val_set = tiny_data
        key = ModelKey.parse(SPEC)
        clock = FakeClock()
        metrics = Metrics()
        manager = RecalibrationManager(
            registry, make_policy(), metrics=metrics, clock=clock
        )
        original = registry.get(key)
        swapped_at = None
        for index, chunk in enumerate(drifted_batches(val_set.images, 4)):
            servable = registry.get(key)
            servable.predict(chunk, recorder=manager.recorder_for(key, servable))
            outcome = manager.finish_batch(key, servable, chunk)
            if outcome.swapped:
                swapped_at = index
                break
        assert swapped_at is not None
        replacement = registry.get(key)
        assert replacement is not original
        assert registry.snapshot()["swaps"] == 1
        assert metrics.counter("drift_alerts_total").value >= 1
        assert metrics.counter("recalibration_swaps_total").value == 1
        lane = manager.snapshot()[key.spec]
        assert lane["swaps"] == 1 and lane["attempts"] == 1
        # The swap reseeded the monitor: its streak state starts clean.
        assert lane["monitor"]["consecutive_drifted"] == 0

    def test_canary_reject_keeps_stale_entry(self, registry, tiny_data):
        _, val_set = tiny_data
        key = ModelKey.parse(SPEC)
        metrics = Metrics()
        manager = RecalibrationManager(
            registry,
            make_policy(canary_agreement_floor=1.0),  # untrained model: ~0
            metrics=metrics,
            clock=FakeClock(),
        )
        original = registry.get(key)
        outcomes = []
        for chunk in drifted_batches(val_set.images, 4):
            servable = registry.get(key)
            servable.predict(chunk, recorder=manager.recorder_for(key, servable))
            outcomes.append(manager.finish_batch(key, servable, chunk))
        assert any(o.rejected for o in outcomes)
        assert not any(o.swapped for o in outcomes)
        assert registry.get(key) is original
        assert registry.snapshot()["swaps"] == 0
        assert metrics.counter("recalibration_rejects_total").value >= 1

    def test_cooldown_blocks_immediate_retry(self, registry, tiny_data):
        _, val_set = tiny_data
        key = ModelKey.parse(SPEC)
        clock = FakeClock()
        manager = RecalibrationManager(
            registry,
            make_policy(canary_agreement_floor=1.0, cooldown_s=100.0),
            metrics=Metrics(),
            clock=clock,
        )
        outcomes = []
        for chunk in drifted_batches(val_set.images, 6):
            servable = registry.get(key)
            servable.predict(chunk, recorder=manager.recorder_for(key, servable))
            outcomes.append(manager.finish_batch(key, servable, chunk))
        attempts = [o for o in outcomes if o.attempted]
        assert len(attempts) == 1  # breaker-style: one attempt, then cooldown
        assert any(o.skip_reason == "cooldown" for o in outcomes)
        # After the cooldown elapses the next sustained batch retries.
        clock.advance(101.0)
        chunk = corrupt_images(val_set.images[:16], "gaussian_noise", 5, seed=99)
        servable = registry.get(key)
        outcome = manager.finish_batch(key, servable, chunk)
        assert outcome.attempted

    def test_unmonitored_lanes_return_none(self, registry, tiny_data):
        _, val_set = tiny_data
        manager = RecalibrationManager(registry, make_policy(), metrics=Metrics())
        key = ModelKey.parse("vit_s/fp32/32")
        servable = registry.get(key)
        assert manager.recorder_for(key, servable) is None
        assert manager.finish_batch(key, servable, val_set.images[:8]) is None
        assert manager.snapshot() == {}

    def test_clean_traffic_never_recalibrates(self, registry, tiny_data):
        _, val_set = tiny_data
        key = ModelKey.parse(SPEC)
        metrics = Metrics()
        manager = RecalibrationManager(
            registry, make_policy(), metrics=metrics, clock=FakeClock()
        )
        for start in range(0, 64, 16):
            chunk = val_set.images[start : start + 16]
            servable = registry.get(key)
            servable.predict(chunk, recorder=manager.recorder_for(key, servable))
            outcome = manager.finish_batch(key, servable, chunk)
            assert not outcome.verdict.sustained
        assert metrics.counter("recalibrations_total").value == 0
        assert registry.snapshot()["swaps"] == 0


class TestEngineIntegration:
    def test_drift_policy_wires_a_manager_into_the_loop(
        self, registry, tiny_data
    ):
        _, val_set = tiny_data
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=5.0, max_queue=128)
        drift = make_policy(
            thresholds=DriftThresholds(consecutive=1, min_samples=8),
            min_recalibration_images=8,
            canary_count=4,
            buffer_size=16,
            cooldown_s=0.0,
        )
        corrupted = corrupt_images(
            val_set.images[:48], "gaussian_noise", 5, seed=0
        )
        with ServeEngine(registry, policy, drift=drift) as engine:
            engine.warm(SPEC)
            handles = [engine.submit(SPEC, image) for image in corrupted]
            results = [h.result(timeout=30.0) for h in handles]
        assert all(r.quantized for r in results)
        snapshot = engine.snapshot()
        assert snapshot["counters"]["drift_alerts_total"] >= 1
        assert snapshot["counters"]["recalibration_swaps_total"] >= 1
        assert snapshot["registry"]["swaps"] >= 1
        lane = snapshot["drift"][ModelKey.parse(SPEC).spec]
        assert lane["swaps"] >= 1

    def test_engine_without_drift_reports_empty_section(self, registry, tiny_data):
        _, val_set = tiny_data
        with ServeEngine(registry) as engine:
            engine.submit(SPEC, val_set.images[0]).result(timeout=30.0)
        assert engine.snapshot()["drift"] == {}
