"""Exact-equality parity: vectorized int SFU kernels vs the references.

The vectorized kernels in :mod:`repro.backend.sfu` claim *integer
equality* with :mod:`repro.hw.int_sfu` — same algorithm, sequential
bottlenecks removed — so every test here uses ``assert_array_equal``,
never a tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import v_i_exp, v_i_gelu, v_i_layernorm, v_i_softmax, v_i_sqrt
from repro.hw.int_sfu import i_exp, i_gelu, i_layernorm, i_softmax, i_sqrt

SCALES = (2.0**-4, 2.0**-6, 2.0**-8, 2.0**-10)


class TestVISqrt:
    def test_exact_over_small_range(self):
        n = np.arange(0, 5000)
        np.testing.assert_array_equal(v_i_sqrt(n), i_sqrt(n))

    @given(st.integers(0, 2**52 - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_floor_sqrt(self, n):
        root = int(v_i_sqrt(np.array([n]))[0])
        assert root * root <= n < (root + 1) * (root + 1)

    def test_exact_around_perfect_squares(self):
        roots = np.array([1, 2, 255, 4096, 2**26 - 1], dtype=np.int64)
        squares = roots * roots
        for n in np.concatenate([squares - 1, squares, squares + 1]):
            if n >= 0:
                np.testing.assert_array_equal(
                    v_i_sqrt(np.array([n])), i_sqrt(np.array([n]))
                )

    def test_falls_back_above_float_exact_limit(self):
        n = np.array([2**60], dtype=np.int64)
        np.testing.assert_array_equal(v_i_sqrt(n), i_sqrt(n))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            v_i_sqrt(np.array([-1]))


class TestVIExp:
    @pytest.mark.parametrize("scale", SCALES)
    def test_equals_reference(self, rng, scale):
        x = -np.abs(rng.normal(size=500)) * 6
        q = np.rint(x / scale).astype(np.int64)
        q_v, s_v = v_i_exp(q, scale)
        q_r, s_r = i_exp(q, scale)
        np.testing.assert_array_equal(q_v, q_r)
        assert s_v == s_r

    def test_rejects_positive(self):
        with pytest.raises(ValueError):
            v_i_exp(np.array([1]), 0.01)


class TestVISoftmax:
    @pytest.mark.parametrize("scale", SCALES)
    def test_equals_reference(self, rng, scale):
        x = rng.normal(size=(8, 32)) * 4
        q = np.rint(x / scale).astype(np.int64)
        q_v, s_v = v_i_softmax(q, scale, out_bits=16)
        q_r, s_r = i_softmax(q, scale, out_bits=16)
        np.testing.assert_array_equal(q_v, q_r)
        assert s_v == s_r

    def test_equals_reference_other_axis_and_width(self, rng):
        q = np.rint(rng.normal(size=(3, 5, 7)) / 2.0**-8).astype(np.int64)
        q_v, _ = v_i_softmax(q, 2.0**-8, axis=1, out_bits=8)
        q_r, _ = i_softmax(q, 2.0**-8, axis=1, out_bits=8)
        np.testing.assert_array_equal(q_v, q_r)


class TestVIGelu:
    @pytest.mark.parametrize("scale", SCALES)
    def test_equals_reference(self, rng, scale):
        x = rng.normal(size=1000) * 3
        q = np.rint(x / scale).astype(np.int64)
        q_v, s_v = v_i_gelu(q, scale)
        q_r, s_r = i_gelu(q, scale)
        np.testing.assert_array_equal(q_v, q_r)
        assert s_v == s_r

    def test_equals_reference_at_saturation(self):
        scale = 2.0**-10
        q = np.rint(np.array([12.0, -12.0, 0.0]) / scale).astype(np.int64)
        q_v, _ = v_i_gelu(q, scale)
        q_r, _ = i_gelu(q, scale)
        np.testing.assert_array_equal(q_v, q_r)


class TestVILayerNorm:
    @pytest.mark.parametrize("scale", (2.0**-14, 2.0**-10))
    def test_equals_reference(self, rng, scale):
        x = rng.normal(size=(16, 64)) * 3 + 2
        q = np.rint(x / scale).astype(np.int64)
        q_v, s_v = v_i_layernorm(q, scale, out_bits=12)
        q_r, s_r = i_layernorm(q, scale, out_bits=12)
        np.testing.assert_array_equal(q_v, q_r)
        assert s_v == s_r

    def test_equals_reference_with_affine(self, rng):
        x = rng.normal(size=(4, 32))
        weight = rng.uniform(0.5, 1.5, size=32)
        bias = rng.normal(size=32)
        scale = 2.0**-14
        q = np.rint(x / scale).astype(np.int64)
        q_v, _ = v_i_layernorm(q, scale, weight=weight, bias=bias, out_bits=12)
        q_r, _ = i_layernorm(q, scale, weight=weight, bias=bias, out_bits=12)
        np.testing.assert_array_equal(q_v, q_r)

    @given(
        rows=st.lists(
            st.lists(st.integers(-(2**20), 2**20), min_size=4, max_size=4),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_equals_reference(self, rows):
        q = np.asarray(rows, dtype=np.int64)
        q_v, _ = v_i_layernorm(q, 2.0**-10, out_bits=8)
        q_r, _ = i_layernorm(q, 2.0**-10, out_bits=8)
        np.testing.assert_array_equal(q_v, q_r)
