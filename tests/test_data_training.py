"""Tests for the SynthShapes dataset and the training substrate."""

import numpy as np
import pytest

from repro.data import (
    CLASS_NAMES,
    batches,
    calibration_set,
    denormalize,
    generate,
    make_splits,
    normalize,
)
from repro.models.vit import build_vit
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.autograd import Tensor
from repro.training import (
    AdamW,
    SGD,
    TrainConfig,
    cosine_warmup,
    evaluate_top1,
    predict_logits,
    train_classifier,
)
from tests.conftest import TINY_VIT


class TestSynthShapes:
    def test_deterministic_generation(self):
        a = generate(64, size=16, seed=5)
        b = generate(64, size=16, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate(64, size=16, seed=5)
        b = generate(64, size=16, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_class_balance(self):
        ds = generate(100, size=16, seed=0)
        counts = np.bincount(ds.labels, minlength=len(CLASS_NAMES))
        assert counts.min() == counts.max() == 10

    def test_normalize_roundtrip(self, rng):
        images = rng.uniform(0, 1, size=(4, 8, 8, 3)).astype(np.float32)
        np.testing.assert_allclose(denormalize(normalize(images)), images, atol=1e-6)

    def test_subset_deterministic_and_sized(self):
        ds = generate(64, size=16, seed=0)
        sub = ds.subset(16, seed=1)
        assert len(sub) == 16
        np.testing.assert_array_equal(sub.labels, ds.subset(16, seed=1).labels)

    def test_subset_too_large_rejected(self):
        with pytest.raises(ValueError):
            generate(8, size=16).subset(9)

    def test_make_splits_disjoint_seeds(self):
        train, val = make_splits(train_count=32, val_count=32, size=16, seed=0)
        assert not np.array_equal(train.images[:32], val.images[:32])

    def test_images_normalized_float32(self):
        ds = generate(16, size=16, seed=0)
        assert ds.images.dtype == np.float32
        assert abs(float(ds.images.mean())) < 1.5


class TestLoader:
    def test_batches_cover_dataset(self):
        ds = generate(50, size=16, seed=0)
        seen = sum(len(lbl) for _, lbl in batches(ds, 16))
        assert seen == 50

    def test_drop_last(self):
        ds = generate(50, size=16, seed=0)
        seen = sum(len(lbl) for _, lbl in batches(ds, 16, drop_last=True))
        assert seen == 48

    def test_shuffle_changes_order_not_content(self):
        ds = generate(64, size=16, seed=0)
        plain = np.concatenate([lbl for _, lbl in batches(ds, 16)])
        shuffled = np.concatenate([lbl for _, lbl in batches(ds, 16, shuffle=True, seed=1)])
        assert not np.array_equal(plain, shuffled)
        np.testing.assert_array_equal(np.sort(plain), np.sort(shuffled))

    def test_calibration_set_size(self):
        ds = generate(64, size=16, seed=0)
        calib = calibration_set(ds, 32)
        assert calib.shape[0] == 32


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            p.grad = 2 * p.data
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_adamw_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = AdamW([p], lr=0.3, weight_decay=0.0)
        for _ in range(200):
            p.grad = 2 * p.data
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_adamw_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = AdamW([p], lr=0.01, weight_decay=0.5)
        for _ in range(10):
            p.grad = np.zeros(1, dtype=np.float32)
            opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        AdamW([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_zero_grad_clears(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        opt = SGD(layer.parameters(), lr=0.1)
        opt.zero_grad()
        assert layer.weight.grad is None


class TestSchedule:
    def test_warmup_ramps_linearly(self):
        assert cosine_warmup(0, 100, 1.0, warmup_steps=10) == pytest.approx(0.1)
        assert cosine_warmup(9, 100, 1.0, warmup_steps=10) == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        end = cosine_warmup(99, 100, 1.0, warmup_steps=0, min_lr=0.05)
        assert end == pytest.approx(0.05, abs=0.01)

    def test_monotone_decay_after_warmup(self):
        values = [cosine_warmup(s, 50, 1.0, warmup_steps=5) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            cosine_warmup(0, 0, 1.0)


class TestTrainer:
    def test_training_reduces_loss_and_beats_chance(self, tiny_data):
        train_set, val_set = tiny_data
        model = build_vit(TINY_VIT, seed=0)
        history = train_classifier(
            model, train_set, TrainConfig(epochs=2, batch_size=64, lr=2e-3)
        )
        assert history[-1] < history[0]
        acc = evaluate_top1(model, val_set)
        assert acc > 2 * 100.0 / 10  # comfortably above the 10% chance level

    def test_predict_logits_shape_and_batch_invariance(self, tiny_trained, tiny_data):
        _, val_set = tiny_data
        a = predict_logits(tiny_trained, val_set.images[:10], batch_size=3)
        b = predict_logits(tiny_trained, val_set.images[:10], batch_size=10)
        assert a.shape == (10, 10)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_model_left_in_eval_mode(self, tiny_trained):
        assert not tiny_trained.training
