"""Tests for the integer-native serving backend and its attestation."""

import numpy as np
import pytest

from repro.backend import (
    FloatFakeQuantBackend,
    IntNativeBackend,
    attest_int_backend,
    make_backend,
)
from repro.hw.executor import ModelExecutor
from repro.quant.qmodel import PTQPipeline


@pytest.fixture(scope="module")
def quantized():
    from repro.models.configs import ModelConfig
    from repro.models.vit import build_vit

    model = build_vit(ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2), seed=0)
    rng = np.random.default_rng(0)
    calib = rng.normal(size=(24, 16, 16, 3)).astype(np.float32)
    pipeline = PTQPipeline(model, method="quq", bits=8)
    pipeline.calibrate(calib)
    images = rng.normal(size=(4, 16, 16, 3)).astype(np.float32)
    return model, pipeline, images


class TestIntNativeBackend:
    @pytest.mark.parametrize("integer_sfu", [False, True])
    def test_bit_exact_with_reference_executor(self, quantized, integer_sfu):
        model, pipeline, images = quantized
        backend = IntNativeBackend(model, pipeline, integer_sfu=integer_sfu)
        executor = ModelExecutor(model, pipeline, bits=8, integer_sfu=integer_sfu)
        np.testing.assert_array_equal(backend.predict(images), executor.run(images))

    def test_float_parity_within_tolerance(self, quantized):
        model, pipeline, images = quantized
        report = attest_int_backend(model, pipeline, images)
        assert report["bit_exact"]
        # Fake-quant and integer stores round in different float orders,
        # so exact-zero divergence is not expected — but it must be tiny.
        assert report["float_max_abs_diff"] < 1e-4
        assert report["float_top1_agreement"] == 1.0

    def test_attest_reuses_provided_backend(self, quantized):
        model, pipeline, images = quantized
        backend = IntNativeBackend(model, pipeline)
        before = backend.counters()["batches_total"]
        report = attest_int_backend(model, pipeline, images, backend=backend)
        assert report["bit_exact"]
        assert backend.counters()["batches_total"] == before + 1

    def test_counters_track_kernel_calls(self, quantized):
        model, pipeline, images = quantized
        backend = IntNativeBackend(model, pipeline)
        backend.predict(images)
        counters = backend.counters()
        assert counters["batches_total"] == 1
        # Per batch: patch embed + head + 4 linears and 2 attention
        # matmuls per block (2 blocks) = 2 + 2*6 GEMMs.
        assert counters["int_gemm_calls"] == 14
        assert counters["int_sfu_calls"] > 0

    def test_memory_info_reports_packed_bytes(self, quantized):
        model, pipeline, _ = quantized
        backend = IntNativeBackend(model, pipeline)
        info = backend.memory_info()
        assert 0 < info["packed_weight_bytes"] < info["float_weight_bytes"]
        assert info["reduction"] > 1.0

    def test_recorder_sees_every_quantized_tap(self, quantized):
        model, pipeline, images = quantized

        class Recorder:
            def __init__(self):
                self.taps = []

            def record(self, name, data):
                self.taps.append(name)

        backend = IntNativeBackend(model, pipeline)
        recorder = Recorder()
        backend.predict(images, recorder=recorder)
        assert "tiny_vit.patch_embed.proj.input" in recorder.taps
        assert "tiny_vit.blocks.0.attn.scores" in recorder.taps
        assert "tiny_vit.blocks.1.mlp_residual" in recorder.taps
        assert "tiny_vit.final_norm_input" in recorder.taps

    def test_rejects_uncalibrated_pipeline(self, tiny_vit):
        pipeline = PTQPipeline(tiny_vit, method="quq", bits=8)
        with pytest.raises(RuntimeError, match="calibrated"):
            IntNativeBackend(tiny_vit, pipeline)

    def test_rejects_non_quq_pipeline(self, tiny_vit, calib_images):
        pipeline = PTQPipeline(tiny_vit, method="baseq", bits=8)
        pipeline.calibrate(calib_images[:8])
        with pytest.raises(ValueError, match="QUQ"):
            IntNativeBackend(tiny_vit, pipeline)

    def test_rejects_non_vit_topology(self, tiny_swin, calib_images):
        pipeline = PTQPipeline(tiny_swin, method="quq", bits=8)
        pipeline.calibrate(calib_images[:8])
        with pytest.raises(ValueError, match="ViT"):
            IntNativeBackend(tiny_swin, pipeline)

    def test_four_bit_model_halves_weight_storage(self):
        from repro.models.configs import ModelConfig
        from repro.models.vit import build_vit

        model = build_vit(
            ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2), seed=0
        )
        rng = np.random.default_rng(1)
        calib = rng.normal(size=(16, 16, 16, 3)).astype(np.float32)
        pipeline = PTQPipeline(model, method="quq", bits=4)
        pipeline.calibrate(calib)
        backend = IntNativeBackend(model, pipeline)
        info = backend.memory_info()
        assert info["reduction"] >= 2.0
        report = attest_int_backend(
            model, pipeline, calib[:2].astype(np.float32), backend=backend
        )
        assert report["bit_exact"]


class TestFloatFakeQuantBackend:
    def test_matches_model_forward(self, quantized):
        model, pipeline, images = quantized
        from repro.autograd import Tensor, no_grad

        backend = FloatFakeQuantBackend(model, pipeline)
        model.eval()
        with no_grad():
            expected = model(Tensor(images)).data
        np.testing.assert_array_equal(backend.predict(images), expected)
        assert backend.counters()["batches_total"] == 1

    def test_describe_merges_name_memory_counters(self, quantized):
        model, pipeline, _ = quantized
        backend = FloatFakeQuantBackend(model, pipeline)
        described = backend.describe()
        assert described["backend"] == "float"
        assert described["packed_weight_bytes"] == 0
        assert described["float_weight_bytes"] > 0
        assert described["batches_total"] == 0


class TestMakeBackend:
    def test_builds_by_name(self, quantized):
        model, pipeline, _ = quantized
        assert make_backend("float", model, pipeline).name == "float"
        assert make_backend("int", model, pipeline, bits=8).name == "int"

    def test_rejects_unknown_name(self, quantized):
        model, pipeline, _ = quantized
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", model, pipeline)
