"""Brute-force numerical equivalence checks for the trickiest kernels."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.hw import encode_tensor
from repro.models.swin import WindowAttention, _shift_attention_mask
from repro.nn import MultiHeadSelfAttention
from repro.quant import QuantEnv, UniformQuantizer


class TestAttentionBruteForce:
    def test_msa_matches_manual_computation(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        attn.eval()
        x = rng.normal(size=(1, 3, 8)).astype(np.float32)
        with no_grad():
            out = attn(Tensor(x)).data

        # Manual: qkv -> per-head softmax(QK^T/sqrt(d))V -> proj.
        qkv = x @ attn.qkv.weight.data + attn.qkv.bias.data
        q, k, v = np.split(qkv, 3, axis=-1)

        def heads(t):
            return t.reshape(1, 3, 2, 4).transpose(0, 2, 1, 3)

        q, k, v = heads(q), heads(k), heads(v)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(4)
        probs = np.exp(scores - scores.max(-1, keepdims=True))
        probs = probs / probs.sum(-1, keepdims=True)
        ctx = (probs @ v).transpose(0, 2, 1, 3).reshape(1, 3, 8)
        expected = ctx @ attn.proj.weight.data + attn.proj.bias.data
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-6)

    def test_window_attention_equals_msa_when_unmasked(self, rng):
        """With the bias table zeroed and no mask, window attention over a
        full-grid window is ordinary self-attention."""
        window = WindowAttention(8, window_size=2, num_heads=2, rng=rng)
        window.relative_bias_table.data[:] = 0.0
        msa = MultiHeadSelfAttention(8, 2, rng=rng)
        # Share weights.
        msa.qkv.weight.data = window.qkv.weight.data.copy()
        msa.qkv.bias.data = window.qkv.bias.data.copy()
        msa.proj.weight.data = window.proj.weight.data.copy()
        msa.proj.bias.data = window.proj.bias.data.copy()

        x = rng.normal(size=(2, 4, 8)).astype(np.float32)  # one 2x2 window
        with no_grad():
            np.testing.assert_allclose(
                window(Tensor(x)).data, msa(Tensor(x)).data, rtol=1e-4, atol=1e-6
            )

    def test_shift_mask_matches_region_map(self):
        """The additive mask must block exactly cross-region pairs of the
        rolled image — verified against a brute-force region labeling."""
        resolution, window, shift = 8, 4, 2
        mask = _shift_attention_mask(resolution, window, shift)
        # Rebuild region ids exactly as Swin does.
        img = np.zeros((resolution, resolution), dtype=int)
        slices = (slice(0, -window), slice(-window, -shift), slice(-shift, None))
        region = 0
        for hs in slices:
            for ws in slices:
                img[hs, ws] = region
                region += 1
        # Partition and compare pairwise.
        for wi in range(mask.shape[0]):
            wy, wx = divmod(wi, resolution // window)
            patch = img[
                wy * window : (wy + 1) * window, wx * window : (wx + 1) * window
            ].reshape(-1)
            expected = patch[:, None] != patch[None, :]
            np.testing.assert_array_equal(mask[wi], expected)


class TestStraightThroughInPipeline:
    def test_gradients_flow_through_quantize_phase(self, rng):
        env = QuantEnv()
        env.phase = "quantize"
        env.quantizers["a"] = UniformQuantizer(4).fit(rng.normal(size=100))
        x = Tensor(rng.normal(size=(5,)).astype(np.float32), requires_grad=True)
        out = env.tap("a", x)
        out.backward(np.ones(5, dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.ones(5))  # STE: identity grad


class TestEncodedTensorTransposed:
    def test_transpose_is_pure_relabeling(self, rng):
        x = rng.normal(size=(3, 5))
        encoded = encode_tensor(x, 6)
        transposed = encoded.transposed()
        np.testing.assert_allclose(transposed.to_float(), encoded.to_float().T)
        assert transposed.base_delta == encoded.base_delta


class TestDeiTLossPath:
    def test_dual_head_loss_averages(self, tiny_deit, rng):
        from repro.training.trainer import _loss_for
        from repro.nn import cross_entropy

        images = rng.normal(size=(4, 16, 16, 3)).astype(np.float32)
        labels = np.array([0, 1, 2, 3])
        tiny_deit.train()
        logits = tiny_deit(Tensor(images))
        combined = _loss_for(logits, labels, 0.0)
        separate = 0.5 * (
            float(cross_entropy(logits[:, 0], labels).data)
            + float(cross_entropy(logits[:, 1], labels).data)
        )
        assert float(combined.data) == pytest.approx(separate, rel=1e-5)
