"""Property-based parity: every registry pair, hypothesis-driven inputs.

The deterministic harness (``repro.kernels.parity``) runs the same pairs
in CI environments without hypothesis; this suite fuzzes deeper — float
strategies with NaN/±inf/denormals enabled, random shapes including
zero-size, all bit-widths — and pins that the deterministic harness
itself passes and stays deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import get_kernel, kernel_pairs, run_kernel_parity
from repro.kernels.parity import fitted_params_pool
from repro.quant.quq import QUQQuantizer, quantize_with_params

BITS = (4, 6, 8)


@pytest.fixture(scope="module")
def params_pool():
    return fitted_params_pool(seed=0)


def _params_for(params_pool, bits):
    return [p for _, b, p in params_pool if b == bits]


FLOATS = st.floats(
    min_value=-1e6, max_value=1e6, allow_subnormal=True, width=64,
)
ADVERSARIAL = st.sampled_from([
    np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324, -5e-324, 1e-310,
])
ELEMENTS = st.one_of(FLOATS, ADVERSARIAL)
FLOAT_ARRAYS = st.lists(ELEMENTS, min_size=0, max_size=64).map(
    lambda values: np.array(values, dtype=np.float64)
)


class TestFloatOpPairs:
    @pytest.mark.parametrize("bits", BITS)
    @settings(max_examples=40, deadline=None)
    @given(x=FLOAT_ARRAYS, index=st.integers(0, 4))
    def test_fake_quantize(self, params_pool, bits, x, index):
        params = _params_for(params_pool, bits)[index]
        fast = get_kernel("quq.fake_quantize", "fused")(x, params)
        ref = get_kernel("quq.fake_quantize", "reference")(x, params)
        np.testing.assert_array_equal(fast, ref)

    @pytest.mark.parametrize("bits", BITS)
    @settings(max_examples=40, deadline=None)
    @given(x=FLOAT_ARRAYS, index=st.integers(0, 4))
    def test_encode(self, params_pool, bits, x, index):
        params = _params_for(params_pool, bits)[index]
        fast_q, fast_r, fast_d = get_kernel("qub.encode", "fused")(x, params, bits)
        ref_q, ref_r, ref_d = get_kernel("qub.encode", "reference")(x, params, bits)
        np.testing.assert_array_equal(fast_q, ref_q)
        assert fast_r == ref_r
        assert fast_d == ref_d

    @pytest.mark.parametrize("bits", BITS)
    @settings(max_examples=20, deadline=None)
    @given(
        chunks=st.lists(FLOAT_ARRAYS, min_size=1, max_size=5),
        index=st.integers(0, 4),
    )
    def test_encode_batch(self, params_pool, bits, chunks, index):
        params = _params_for(params_pool, bits)[index]
        tensors = [quantize_with_params(chunk, params) for chunk in chunks]
        fast_out, fast_r = get_kernel("qub.encode_batch", "fused")(tensors)
        ref_out, ref_r = get_kernel("qub.encode_batch", "reference")(tensors)
        assert fast_r == ref_r
        assert len(fast_out) == len(ref_out)
        for fast_arr, ref_arr in zip(fast_out, ref_out):
            np.testing.assert_array_equal(fast_arr, ref_arr)


class TestIntOpPairs:
    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.integers(1, 16),
        words=st.data(),
    )
    def test_pack(self, bits, words):
        values = words.draw(st.lists(
            st.integers(0, 2**bits - 1), min_size=0, max_size=80
        ))
        qubs = np.array(values, dtype=np.uint32)
        fast = get_kernel("qub.pack", "packbits")(qubs, bits)
        ref = get_kernel("qub.pack", "reference")(qubs, bits)
        np.testing.assert_array_equal(fast, ref)

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(0, 6), k=st.integers(0, 32), n=st.integers(0, 6),
        scale=st.sampled_from([1, 1 << 10, 1 << 14, 1 << 30, 1 << 40]),
        seed=st.integers(0, 2**16),
    )
    def test_gemm(self, m, k, n, scale, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-scale, scale + 1, size=(m, k))
        w = rng.integers(-scale, scale + 1, size=(k, n))
        fast = get_kernel("gemm.int", "blas_f64")(x, w)
        ref = get_kernel("gemm.int", "reference")(x, w)
        np.testing.assert_array_equal(fast, ref)
        assert fast.dtype == ref.dtype == np.int64

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(0, (1 << 53) - 1), min_size=0, max_size=32)
    )
    def test_sqrt(self, values):
        q = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(
            get_kernel("sfu.sqrt", "vector")(q),
            get_kernel("sfu.sqrt", "reference")(q),
        )

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(-(1 << 14), 0), min_size=1, max_size=32),
        scale=st.sampled_from([2.0**-8, 2.0**-10, 2.0**-12]),
    )
    def test_exp(self, values, scale):
        q = np.array(values, dtype=np.int64)
        fast_q, fast_s = get_kernel("sfu.exp", "vector")(q, scale)
        ref_q, ref_s = get_kernel("sfu.exp", "reference")(q, scale)
        np.testing.assert_array_equal(fast_q, ref_q)
        assert fast_s == ref_s

    @pytest.mark.parametrize("out_bits", [12, 16])
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 4), cols=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    def test_softmax(self, out_bits, rows, cols, seed):
        rng = np.random.default_rng(seed)
        q = rng.integers(-(1 << 12), 1 << 12, size=(rows, cols))
        fast_q, fast_s = get_kernel("sfu.softmax", "vector")(
            q, 2.0**-10, out_bits=out_bits
        )
        ref_q, ref_s = get_kernel("sfu.softmax", "reference")(
            q, 2.0**-10, out_bits=out_bits
        )
        np.testing.assert_array_equal(fast_q, ref_q)
        assert fast_s == ref_s

    @settings(max_examples=20, deadline=None)
    @given(size=st.integers(0, 48), seed=st.integers(0, 2**16))
    def test_gelu(self, size, seed):
        rng = np.random.default_rng(seed)
        q = rng.integers(-(1 << 12), 1 << 12, size=size)
        fast_q, fast_s = get_kernel("sfu.gelu", "vector")(q, 2.0**-10)
        ref_q, ref_s = get_kernel("sfu.gelu", "reference")(q, 2.0**-10)
        np.testing.assert_array_equal(fast_q, ref_q)
        assert fast_s == ref_s

    @pytest.mark.parametrize("affine", [False, True])
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 4), cols=st.integers(1, 24),
        seed=st.integers(0, 2**16),
    )
    def test_layernorm(self, affine, rows, cols, seed):
        rng = np.random.default_rng(seed)
        q = rng.integers(-(1 << 12), 1 << 12, size=(rows, cols))
        kwargs = {"out_bits": 12}
        if affine:
            kwargs["weight"] = rng.normal(1.0, 0.1, size=cols)
            kwargs["bias"] = rng.normal(0.0, 0.1, size=cols)
        fast_q, fast_s = get_kernel("sfu.layernorm", "vector")(
            q, 2.0**-14, **kwargs
        )
        ref_q, ref_s = get_kernel("sfu.layernorm", "reference")(
            q, 2.0**-14, **kwargs
        )
        np.testing.assert_array_equal(fast_q, ref_q)
        assert fast_s == ref_s


class TestHarness:
    def test_deterministic_harness_passes(self):
        report = run_kernel_parity(seed=0, cases=2)
        assert report["passed"]
        assert report["source"] == "kernel-registry"
        assert report["pairs_checked"] == len(kernel_pairs())
        assert report["failures"] == 0

    def test_harness_deterministic(self):
        first = run_kernel_parity(seed=3, cases=2)
        second = run_kernel_parity(seed=3, cases=2)
        assert first == second

    def test_one_sided_negative_params_covered(self, params_pool):
        kinds = {kind for kind, _, _ in params_pool}
        assert "negative_one_sided" in kinds
        assert "positive_softmax" in kinds

    @pytest.mark.parametrize("bits", BITS)
    def test_all_negative_one_sided_nan(self, bits):
        """Regression pin for the one-sided NaN int64-garbage bug."""
        rng = np.random.default_rng(9)
        params = QUQQuantizer(bits).fit(
            -np.abs(rng.normal(size=512)) - 1e-3
        ).params
        x = np.array([np.nan, -1.0, np.nan, -0.5, np.inf, -np.inf])
        fast = get_kernel("quq.fake_quantize", "fused")(x, params)
        ref = get_kernel("quq.fake_quantize", "reference")(x, params)
        np.testing.assert_array_equal(fast, ref)
        assert np.isfinite(ref).all()
