"""Tests for the CNN extension (conv layer + MiniConvNet + quantization)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, unfold_windows
from repro.models.cnn import CNN_MINI, CNNConfig, build_cnn
from repro.nn import Conv2d, GlobalAveragePool
from repro.quant import PTQPipeline, TapKind, classify_tap
from repro.training import TrainConfig, evaluate_top1, train_classifier


class TestUnfoldWindows:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 8, 8, 3)).astype(np.float32))
        out = unfold_windows(x, kernel=3, stride=2, padding=1)
        assert out.shape == (2, 16, 27)  # 4x4 positions, 3*3*3 window

    def test_stride_one_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = unfold_windows(Tensor(x), kernel=1)
        np.testing.assert_allclose(out.data.reshape(-1), x.reshape(-1))

    def test_gradients(self, rng):
        check_gradients(
            lambda a: unfold_windows(a, 3, 2, 1), [rng.normal(size=(1, 6, 6, 2))]
        )

    def test_rejects_bad_args(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 4, 1)).astype(np.float32))
        with pytest.raises(ValueError):
            unfold_windows(x, kernel=0)
        with pytest.raises(ValueError):
            unfold_windows(x, kernel=8)  # larger than padded input


class TestConv2d:
    def test_matches_direct_convolution(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        out = conv(Tensor(x)).data
        # Direct reference computation at one output position.
        w = conv.proj.weight.data.reshape(3, 3, 2, 3)
        padded = np.pad(x[0], ((1, 1), (1, 1), (0, 0)))
        # Output (i, j) sees padded[i : i+3, j : j+3].
        expected = (
            np.einsum("hwc,hwco->o", padded[2:5, 2:5], w) + conv.proj.bias.data
        )
        np.testing.assert_allclose(out[0, 2, 2], expected, rtol=1e-4, atol=1e-6)

    def test_strided_output_size(self, rng):
        conv = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 8, 8, 3)).astype(np.float32)))
        assert out.shape == (2, 4, 4, 8)

    def test_channel_mismatch_rejected(self, rng):
        conv = Conv2d(3, 8, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 8, 8, 4)).astype(np.float32)))

    def test_gradients_flow(self, rng):
        conv = Conv2d(2, 4, kernel_size=3, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 4, 4, 2)).astype(np.float32)))
        out.sum().backward()
        assert conv.proj.weight.grad is not None

    def test_gap(self, rng):
        x = rng.normal(size=(2, 4, 4, 8)).astype(np.float32)
        out = GlobalAveragePool()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(1, 2)), rtol=1e-5)


class TestMiniConvNet:
    def test_forward_shape(self, rng):
        model = build_cnn()
        out = model(Tensor(rng.normal(size=(4, 32, 32, 3)).astype(np.float32)))
        assert out.shape == (4, CNN_MINI.num_classes)

    def test_taps_classifiable(self, rng):
        model = build_cnn()
        from repro.quant import QuantEnv

        env = QuantEnv()
        model.set_tap_dispatcher(env)
        model(Tensor(rng.normal(size=(1, 32, 32, 3)).astype(np.float32)))
        model.set_tap_dispatcher(None)
        kinds = {classify_tap(name) for name in env.seen_taps}
        assert TapKind.WEIGHT in kinds
        assert TapKind.GEMM_INPUT in kinds
        assert TapKind.GELU_INPUT in kinds

    def test_trains_above_chance(self):
        from repro.data import make_splits

        train_set, val_set = make_splits(train_count=256, val_count=128, size=32, seed=2)
        model = build_cnn(CNNConfig("tiny_cnn", 32, 3, 10, (8, 16)), seed=0)
        train_classifier(model, train_set, TrainConfig(epochs=2, batch_size=64, lr=2e-3))
        assert evaluate_top1(model, val_set) > 20.0

    def test_quantizes_with_full_pipeline(self, rng):
        # The whole PTQ machinery must apply to CNNs unchanged.
        model = build_cnn(CNNConfig("tiny_cnn2", 32, 3, 10, (8, 16)), seed=0)
        calib = rng.normal(size=(16, 32, 32, 3)).astype(np.float32)
        pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
        pipeline.calibrate(calib)
        out = model(Tensor(calib[:4]))
        assert np.isfinite(out.data).all()
        pipeline.detach()
