"""Tests for the QUQ quantizer (Eq. 3) and its structural guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erf

from repro.quant import (
    Mode,
    QUQParams,
    QUQQuantizer,
    SUBRANGE_IDS,
    Subrange,
    SubrangeSpec,
    UniformQuantizer,
    quantize_with_params,
)


def _gelu(x):
    return x * 0.5 * (1 + erf(x / np.sqrt(2)))


@pytest.fixture(scope="module")
def distributions():
    rng = np.random.default_rng(42)
    return {
        "long_tail": rng.standard_t(df=2.5, size=20000) * 0.1,
        "softmax": rng.dirichlet(np.ones(64), size=200).reshape(-1),
        "gelu": _gelu(rng.normal(size=20000)),
        "gauss": rng.normal(size=20000) * 0.02,
    }


class TestQUQParams:
    def test_encoding_budget_enforced(self):
        with pytest.raises(ValueError):
            QUQParams(
                4,
                f_neg=SubrangeSpec(1.0, 4),
                f_pos=SubrangeSpec(1.0, 4),
                c_neg=SubrangeSpec(4.0, 4),
                c_pos=None,  # only 12 of 16 levels
            )

    def test_eq4_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            QUQParams(
                4,
                f_neg=SubrangeSpec(1.0, 4),
                f_pos=SubrangeSpec(3.0, 4),  # 3.0 is not a power-of-two multiple
                c_neg=SubrangeSpec(4.0, 4),
                c_pos=SubrangeSpec(4.0, 4),
            )

    def test_per_space_level_cap(self):
        with pytest.raises(ValueError):
            QUQParams(4, f_neg=None, f_pos=SubrangeSpec(1.0, 16), c_neg=None, c_pos=None)

    def test_shift_values(self):
        params = QUQParams(
            4,
            f_neg=SubrangeSpec(1.0, 4),
            f_pos=SubrangeSpec(1.0, 4),
            c_neg=SubrangeSpec(4.0, 4),
            c_pos=SubrangeSpec(8.0, 4),
        )
        assert params.shift(Subrange.F_POS) == 0
        assert params.shift(Subrange.C_NEG) == 2
        assert params.shift(Subrange.C_POS) == 3

    def test_quantization_points_sorted_unique(self):
        params = QUQParams(
            4,
            f_neg=SubrangeSpec(1.0, 4),
            f_pos=SubrangeSpec(1.0, 4),
            c_neg=SubrangeSpec(4.0, 4),
            c_pos=SubrangeSpec(4.0, 4),
        )
        points = params.quantization_points()
        assert (np.diff(points) > 0).all()
        assert 0.0 in points

    def test_mode_classification(self):
        quad = SubrangeSpec(1.0, 4)
        coarse = SubrangeSpec(4.0, 4)
        half = SubrangeSpec(1.0, 8)
        assert QUQParams(4, quad, quad, coarse, coarse).mode is Mode.A
        assert QUQParams(4, None, half, None, half).mode is Mode.B
        assert QUQParams(4, quad, quad, None, SubrangeSpec(2.0, 8)).mode is Mode.C
        assert QUQParams(4, None, half, SubrangeSpec(1.0, 8), None).mode is Mode.D

    def test_describe_mentions_mode(self):
        half = SubrangeSpec(1.0, 8)
        assert "Mode B" in QUQParams(4, None, half, None, half).describe()


class TestQuantizeWithParams:
    def test_subrange_assignment_by_magnitude(self):
        params = QUQParams(
            4,
            f_neg=SubrangeSpec(0.1, 4),
            f_pos=SubrangeSpec(0.1, 4),
            c_neg=SubrangeSpec(0.8, 4),
            c_pos=SubrangeSpec(0.8, 4),
        )
        qt = quantize_with_params(np.array([0.05, 0.25, 2.0, -0.15, -0.38, -2.0]), params)
        ids = qt.subranges
        assert ids[0] == SUBRANGE_IDS[Subrange.F_POS]
        assert ids[1] == SUBRANGE_IDS[Subrange.F_POS]
        assert ids[2] == SUBRANGE_IDS[Subrange.C_POS]
        assert ids[3] == SUBRANGE_IDS[Subrange.F_NEG]
        assert ids[4] == SUBRANGE_IDS[Subrange.F_NEG]
        assert ids[5] == SUBRANGE_IDS[Subrange.C_NEG]

    def test_coarse_clipping_at_extremes(self):
        params = QUQParams(
            4,
            f_neg=SubrangeSpec(0.1, 4),
            f_pos=SubrangeSpec(0.1, 4),
            c_neg=SubrangeSpec(0.8, 4),
            c_pos=SubrangeSpec(0.8, 4),
        )
        qt = quantize_with_params(np.array([100.0, -100.0]), params)
        np.testing.assert_allclose(qt.dequantize(), [0.8 * 3, -0.8 * 4])

    def test_zero_maps_to_positive_space(self):
        params = QUQParams(
            4,
            f_neg=SubrangeSpec(0.1, 4),
            f_pos=SubrangeSpec(0.1, 4),
            c_neg=SubrangeSpec(0.8, 4),
            c_pos=SubrangeSpec(0.8, 4),
        )
        qt = quantize_with_params(np.array([0.0, -0.01]), params)
        assert qt.codes[0] == 0
        # -0.01 rounds to zero; it must be re-homed to the positive space.
        assert qt.subranges[1] in (
            SUBRANGE_IDS[Subrange.F_POS],
            SUBRANGE_IDS[Subrange.C_POS],
        )

    def test_positive_clip_under_negative_only_params(self):
        half = SubrangeSpec(0.1, 8)
        params = QUQParams(4, half, None, SubrangeSpec(0.8, 8), None)
        qt = quantize_with_params(np.array([0.5]), params)
        # Positive values clip to the closest representable value (zero).
        assert qt.codes[0] == 0
        assert qt.dequantize()[0] == 0.0


class TestNaNParity:
    """Regression: fake_quantize and quantize(...).dequantize() must park
    NaN at the same representable value, for every parameter shape."""

    def _param_sets(self):
        two_sided = QUQParams(
            4,
            f_neg=SubrangeSpec(0.1, 4),
            f_pos=SubrangeSpec(0.1, 4),
            c_neg=SubrangeSpec(0.8, 4),
            c_pos=SubrangeSpec(0.8, 4),
        )
        negative_only = QUQParams(
            4, SubrangeSpec(0.1, 8), None, SubrangeSpec(0.8, 8), None
        )
        positive_only = QUQParams(
            4, None, SubrangeSpec(0.1, 8), None, SubrangeSpec(0.8, 8)
        )
        return {
            "two_sided": two_sided,
            "negative_only": negative_only,
            "positive_only": positive_only,
        }

    @pytest.mark.parametrize(
        "kind", ["two_sided", "negative_only", "positive_only"]
    )
    def test_fake_quantize_matches_roundtrip(self, kind):
        from repro.quant.quq import fake_quantize_with_params

        params = self._param_sets()[kind]
        x = np.array([np.nan, 0.3, np.nan, -0.3, np.inf, -np.inf, 0.0])
        fused = fake_quantize_with_params(x, params)
        roundtrip = quantize_with_params(x, params).dequantize()
        np.testing.assert_array_equal(fused, roundtrip)
        # NaN is parked at a finite representable value, never propagated.
        assert np.isfinite(fused).all()

    @pytest.mark.parametrize(
        "kind", ["two_sided", "negative_only", "positive_only"]
    )
    def test_nan_park_value_matches_codes(self, kind):
        from repro.quant.quq import nan_park_value

        params = self._param_sets()[kind]
        x = np.array([np.nan])
        parked = quantize_with_params(x, params).dequantize()[0]
        assert parked == nan_park_value(params)

    def test_one_sided_nan_codes_stay_in_range(self):
        """The original bug: NaN in the one-sided mask cast to int64
        garbage and produced out-of-range codes."""
        params = self._param_sets()["negative_only"]
        qt = quantize_with_params(
            np.array([np.nan, -0.5, np.nan]), params
        )
        assert abs(int(qt.codes.min())) <= 2 ** (params.bits - 1)
        assert np.isfinite(qt.dequantize()).all()


class TestQUQQuantizer:
    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            QUQQuantizer(6).fake_quantize(np.zeros(3))

    @pytest.mark.parametrize("name", ["long_tail", "softmax", "gelu", "gauss"])
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_never_worse_than_uniform(self, distributions, name, bits):
        """The paper's Table 1 claim: QUQ MSE <= uniform MSE (all types)."""
        x = distributions[name]
        quq = QUQQuantizer(bits).fit(x)
        uni = UniformQuantizer(bits).fit(x)
        mse_quq = np.mean((quq.fake_quantize(x) - x) ** 2)
        mse_uni = np.mean((uni.fake_quantize(x) - x) ** 2)
        assert mse_quq <= mse_uni * 1.02  # 2% tolerance for rounding ties

    def test_wins_big_on_long_tails(self, distributions):
        x = distributions["long_tail"]
        quq = QUQQuantizer(6).fit(x)
        uni = UniformQuantizer(6).fit(x)
        mse_quq = np.mean((quq.fake_quantize(x) - x) ** 2)
        mse_uni = np.mean((uni.fake_quantize(x) - x) ** 2)
        assert mse_quq < mse_uni / 2

    def test_idempotent_quantization(self, distributions):
        x = distributions["long_tail"]
        q = QUQQuantizer(6).fit(x)
        once = q.fake_quantize(x)
        twice = q.fake_quantize(once)
        np.testing.assert_allclose(twice, once)

    def test_scaled_preserves_structure(self, distributions):
        q = QUQQuantizer(6).fit(distributions["long_tail"])
        s = q.scaled(0.75)
        assert s.params.mode == q.params.mode
        assert s.params.base_delta == pytest.approx(0.75 * q.params.base_delta)
        for (sub_a, spec_a), (sub_b, spec_b) in zip(q.params.active(), s.params.active()):
            assert sub_a == sub_b
            assert spec_a.levels == spec_b.levels

    def test_scaled_rejects_nonpositive(self, distributions):
        q = QUQQuantizer(6).fit(distributions["gauss"])
        with pytest.raises(ValueError):
            q.scaled(0.0)

    @given(st.integers(0, 1000), st.sampled_from([4, 6, 8]))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_stability(self, seed, bits):
        """fake_quantize is a projection: applying twice equals once."""
        rng = np.random.default_rng(seed)
        x = rng.standard_t(df=3, size=2000) * rng.uniform(0.01, 10)
        q = QUQQuantizer(bits).fit(x)
        once = q.fake_quantize(x)
        np.testing.assert_allclose(q.fake_quantize(once), once, atol=1e-6)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_error_bounded_by_coarsest_delta(self, seed):
        """In-range values err by at most half the coarsest step."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=2000)
        q = QUQQuantizer(6).fit(x)
        coarsest = max(spec.delta for _, spec in q.params.active())
        err = np.abs(q.fake_quantize(x) - x)
        assert err.max() <= coarsest / 2 + 1e-6
