"""Tests for uniform quantizers (BaseQ and the FQ-ViT variants)."""

import numpy as np
import pytest

from repro.quant import (
    AsymmetricUniformQuantizer,
    RowwiseUniformQuantizer,
    UniformQuantizer,
    symmetric_uniform_dequantize,
    symmetric_uniform_quantize,
)


class TestEquation1:
    def test_rounding_to_nearest(self):
        codes = symmetric_uniform_quantize(np.array([0.0, 0.49, 0.51, -1.49]), 1.0, 8)
        np.testing.assert_array_equal(codes, [0, 0, 1, -1])

    def test_clipping_range(self):
        codes = symmetric_uniform_quantize(np.array([1000.0, -1000.0]), 1.0, 4)
        np.testing.assert_array_equal(codes, [7, -8])

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            symmetric_uniform_quantize(np.zeros(1), 0.0, 8)

    def test_dequantize_inverts_in_range(self, rng):
        x = rng.uniform(-3, 3, size=100)
        codes = symmetric_uniform_quantize(x, 0.1, 8)
        recon = symmetric_uniform_dequantize(codes, 0.1)
        assert np.abs(recon - x).max() <= 0.05 + 1e-9


class TestUniformQuantizer:
    def test_fit_covers_absmax(self, rng):
        x = rng.normal(size=1000)
        q = UniformQuantizer(8).fit(x)
        assert q.delta == pytest.approx(np.abs(x).max() / 127)

    def test_unfitted_use_rejected(self):
        with pytest.raises(RuntimeError):
            UniformQuantizer(8).fake_quantize(np.zeros(3))

    def test_fake_quantize_error_bound(self, rng):
        x = rng.normal(size=1000)
        q = UniformQuantizer(8).fit(x)
        err = np.abs(q.fake_quantize(x) - x)
        assert err.max() <= q.delta / 2 + 1e-6

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=2000)
        errs = [
            np.mean((UniformQuantizer(b).fit(x).fake_quantize(x) - x) ** 2)
            for b in (4, 6, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_percentile_clips_outliers(self, rng):
        x = np.concatenate([rng.normal(size=1000), [100.0]])
        full = UniformQuantizer(8).fit(x)
        clipped = UniformQuantizer(8, percentile=99.0).fit(x)
        assert clipped.delta < full.delta

    def test_scaled_copy(self, rng):
        q = UniformQuantizer(8).fit(rng.normal(size=100))
        s = q.scaled(2.0)
        assert s.delta == pytest.approx(2 * q.delta)
        assert s is not q

    def test_all_zero_input(self):
        q = UniformQuantizer(8).fit(np.zeros(10))
        np.testing.assert_array_equal(q.fake_quantize(np.zeros(10)), np.zeros(10))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(1)
        with pytest.raises(ValueError):
            UniformQuantizer(8, percentile=0.0)


class TestAsymmetricUniformQuantizer:
    def test_one_sided_range_fully_used(self, rng):
        x = rng.uniform(0, 1, size=1000)
        q = AsymmetricUniformQuantizer(8).fit(x)
        # Affine quantization over [0, 1] gets ~2x the resolution of
        # symmetric quantization (which wastes the negative half).
        sym = UniformQuantizer(8).fit(x)
        assert q.delta < sym.delta

    def test_zero_exactly_representable(self, rng):
        x = rng.uniform(-0.3, 1.0, size=500)
        q = AsymmetricUniformQuantizer(8).fit(x)
        assert q.fake_quantize(np.zeros(1))[0] == pytest.approx(0.0, abs=1e-7)

    def test_roundtrip_error_bound(self, rng):
        x = rng.uniform(-2, 5, size=500)
        q = AsymmetricUniformQuantizer(8).fit(x)
        assert np.abs(q.fake_quantize(x) - x).max() <= q.delta / 2 + 1e-6


class TestRowwiseUniformQuantizer:
    def test_per_row_scales(self):
        # Row 0 tiny, row 1 huge: row-wise keeps both accurate.
        w = np.stack([np.linspace(-0.01, 0.01, 8), np.linspace(-10, 10, 8)])
        q = RowwiseUniformQuantizer(8, axis=0).fit(w.T)  # (in=8, out=2), per column
        recon = q.fake_quantize(w.T)
        rel_err = np.abs(recon - w.T) / np.abs(w.T).max(axis=0)
        assert rel_err.max() < 0.01

    def test_beats_per_tensor_on_heterogeneous_rows(self):
        w = np.stack([np.linspace(-0.01, 0.01, 64), np.linspace(-10, 10, 64)]).T
        row = RowwiseUniformQuantizer(4, axis=0).fit(w)
        tensor = UniformQuantizer(4).fit(w)
        err_row = np.mean((row.fake_quantize(w) - w) ** 2)
        err_tensor = np.mean((tensor.fake_quantize(w) - w) ** 2)
        assert err_row < err_tensor

    def test_bits_per_element_includes_scale_overhead(self, rng):
        q = RowwiseUniformQuantizer(8, axis=0).fit(rng.normal(size=(16, 4)))
        assert q.bits_per_element() > 8.0

    def test_row_count_mismatch_rejected(self, rng):
        q = RowwiseUniformQuantizer(8, axis=0).fit(rng.normal(size=(16, 4)))
        with pytest.raises(ValueError):
            q.fake_quantize(rng.normal(size=(16, 5)))

    def test_scaled_copy(self, rng):
        q = RowwiseUniformQuantizer(8, axis=0).fit(rng.normal(size=(8, 4)))
        s = q.scaled(0.5)
        np.testing.assert_allclose(s.deltas, q.deltas * 0.5)
