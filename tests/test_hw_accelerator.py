"""Tests for the QUA behavioral model: bit-exact datapath, QU, SFU, cycles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import QUA, EncodedTensor, encode_tensor, gemm_cycles
from repro.quant import progressive_relaxation


class TestEncodedTensor:
    def test_to_float_matches_dequantized(self, rng):
        x = rng.standard_t(df=3, size=(8, 16)) * 0.5
        encoded = encode_tensor(x, 6)
        recon = encoded.to_float()
        # Quantization error is bounded by half the coarsest active step.
        assert np.abs(recon - x).max() < 1.0
        assert recon.shape == x.shape

    def test_explicit_params_are_legalized(self, rng):
        x = np.concatenate([rng.normal(size=5000) * 1e-5, rng.normal(size=4) * 10])
        params = progressive_relaxation(x, 8)
        encoded = encode_tensor(x, 8, params=params)
        _, n_sh = encoded.decoded()
        assert n_sh.max() <= 7


class TestIntegerGEMM:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_bit_exact_vs_dequantized_reference(self, rng, bits):
        x = rng.standard_t(df=4, size=(16, 32)) * 0.3
        w = rng.normal(size=(32, 24)) * 0.05
        ex, ew = encode_tensor(x, bits), encode_tensor(w, bits)
        qua = QUA()
        hw = qua.gemm(ex, ew)
        ref = ex.to_float() @ ew.to_float()
        np.testing.assert_allclose(hw, ref, rtol=1e-12, atol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        ex = encode_tensor(rng.normal(size=(4, 5)), 6)
        ew = encode_tensor(rng.normal(size=(6, 4)), 6)
        with pytest.raises(ValueError):
            QUA().integer_gemm(ex, ew)

    def test_accumulators_are_integers(self, rng):
        ex = encode_tensor(rng.normal(size=(4, 8)), 6)
        ew = encode_tensor(rng.normal(size=(8, 4)), 6)
        acc = QUA().integer_gemm(ex, ew)
        assert acc.dtype == np.int64

    @given(st.integers(0, 300), st.sampled_from([4, 6, 8]))
    @settings(max_examples=25, deadline=None)
    def test_property_bit_exactness(self, seed, bits):
        rng = np.random.default_rng(seed)
        x = rng.standard_t(df=3, size=(6, 10)) * rng.uniform(0.01, 10)
        w = rng.normal(size=(10, 7)) * rng.uniform(0.001, 1)
        ex, ew = encode_tensor(x, bits), encode_tensor(w, bits)
        hw = QUA().gemm(ex, ew)
        ref = ex.to_float() @ ew.to_float()
        np.testing.assert_allclose(hw, ref, rtol=1e-10, atol=1e-12)

    def test_gemm_approximates_float(self, rng):
        x = rng.normal(size=(32, 64)) * 0.5
        w = rng.normal(size=(64, 32)) * 0.05
        hw = QUA().gemm(encode_tensor(x, 8), encode_tensor(w, 8))
        exact = x @ w
        correlation = np.corrcoef(hw.reshape(-1), exact.reshape(-1))[0, 1]
        assert correlation > 0.999


class TestQuantizationUnit:
    def test_requantize_matches_direct_quantization(self, rng):
        x = rng.normal(size=(8, 16)) * 0.3
        w = rng.normal(size=(16, 8)) * 0.05
        ex, ew = encode_tensor(x, 8), encode_tensor(w, 8)
        qua = QUA()
        acc = qua.integer_gemm(ex, ew)
        out_values = acc.astype(np.float64) * ex.base_delta * ew.base_delta
        out_params = progressive_relaxation(out_values, 8)
        qt = qua.requantize(acc, ex.base_delta * ew.base_delta, out_params)
        err = np.abs(qt.dequantize() - out_values)
        coarsest = max(s.delta for _, s in qt.params.active())
        assert err.max() <= coarsest / 2 + 1e-9

    def test_full_pipeline_produces_encoded_tensor(self, rng):
        x = rng.normal(size=(8, 16)) * 0.3
        w = rng.normal(size=(16, 8)) * 0.05
        ex, ew = encode_tensor(x, 6), encode_tensor(w, 6)
        qua = QUA()
        acc = qua.integer_gemm(ex, ew)
        out_params = progressive_relaxation(
            acc.astype(np.float64) * ex.base_delta * ew.base_delta, 6
        )
        out = qua.gemm_requantized(ex, ew, out_params)
        assert isinstance(out, EncodedTensor)
        assert out.shape == (8, 8)


class TestSFU:
    def test_softmax_rows_sum_to_one(self, rng):
        encoded = encode_tensor(rng.normal(size=(4, 8)), 8)
        out = QUA().sfu(encoded, "softmax")
        np.testing.assert_allclose(out.sum(-1), np.ones(4), rtol=1e-9)

    def test_gelu_matches_reference(self, rng):
        from scipy.special import erf

        x = rng.normal(size=(4, 8))
        encoded = encode_tensor(x, 8)
        out = QUA().sfu(encoded, "gelu")
        decoded = encoded.to_float()
        np.testing.assert_allclose(
            out, decoded * 0.5 * (1 + erf(decoded / np.sqrt(2))), rtol=1e-9
        )

    def test_layernorm_statistics(self, rng):
        encoded = encode_tensor(rng.normal(size=(4, 16)) * 3, 8)
        out = QUA().sfu(encoded, "layernorm")
        np.testing.assert_allclose(out.mean(-1), np.zeros(4), atol=1e-6)

    def test_add_combines_tensors(self, rng):
        a = encode_tensor(rng.normal(size=(4,)), 8)
        b = encode_tensor(rng.normal(size=(4,)), 8)
        out = QUA().sfu(a, "add", other=b)
        np.testing.assert_allclose(out, a.to_float() + b.to_float(), rtol=1e-12)

    def test_unknown_function_rejected(self, rng):
        encoded = encode_tensor(rng.normal(size=(4,)), 8)
        with pytest.raises(ValueError):
            QUA().sfu(encoded, "sigmoid")


class TestCycleModel:
    def test_single_tile(self):
        assert gemm_cycles(16, 16, 16, 16) == 32  # one tile: m + fill

    def test_tiles_scale_with_k_and_n(self):
        base = gemm_cycles(16, 16, 16, 16)
        assert gemm_cycles(16, 32, 16, 16) == 2 * base
        assert gemm_cycles(16, 16, 32, 16) == 2 * base

    def test_bigger_array_fewer_cycles(self):
        small = gemm_cycles(128, 128, 128, 16)
        large = gemm_cycles(128, 128, 128, 64)
        assert large < small

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            gemm_cycles(0, 4, 4, 4)


class TestEncodedTensorCaching:
    """decoded()/transposed() are memoized: verification passes re-decode
    the same packed weights many times, and the second pass must be a
    cache hit rather than another full DU sweep."""

    def test_decoded_is_cached(self, rng):
        encoded = encode_tensor(rng.normal(size=(8, 8)), 8)
        first = encoded.decoded()
        assert encoded.decoded() is first

    def test_decoded_values_unchanged_by_caching(self, rng):
        from repro.quant.qub import decode

        encoded = encode_tensor(rng.normal(size=(8, 8)), 8)
        d, n_sh = encoded.decoded()
        d_ref, n_ref = decode(encoded.qubs, encoded.registers, encoded.bits)
        np.testing.assert_array_equal(d, d_ref)
        np.testing.assert_array_equal(n_sh, n_ref)

    def test_transposed_is_cached_and_involutive(self, rng):
        encoded = encode_tensor(rng.normal(size=(4, 6)), 8)
        flipped = encoded.transposed()
        assert encoded.transposed() is flipped
        assert flipped.transposed() is encoded

    def test_transposed_shares_decode_as_views(self, rng):
        encoded = encode_tensor(rng.normal(size=(4, 6)), 8)
        d, n_sh = encoded.decoded()
        flipped_d, flipped_n = encoded.transposed().decoded()
        np.testing.assert_array_equal(flipped_d, np.swapaxes(d, -1, -2))
        np.testing.assert_array_equal(flipped_n, np.swapaxes(n_sh, -1, -2))

    def test_transposed_to_float_matches_swapaxes(self, rng):
        encoded = encode_tensor(rng.normal(size=(4, 6)), 8)
        np.testing.assert_array_equal(
            encoded.transposed().to_float(), np.swapaxes(encoded.to_float(), -1, -2)
        )

    def test_caches_do_not_affect_equality_or_repr(self, rng):
        x = rng.normal(size=(3, 3))
        a = encode_tensor(x, 8)
        b = encode_tensor(x, 8)
        a.decoded()
        a.transposed()
        assert "decoded" not in repr(a)
        np.testing.assert_array_equal(a.qubs, b.qubs)
