"""Tests for the alternative range-calibration strategies."""

import numpy as np
import pytest

from repro.quant import (
    CALIBRATION_STRATEGIES,
    UniformQuantizer,
    absmax_bound,
    calibrated_uniform,
    kl_bound,
    mse_bound,
    mse,
    percentile_bound,
)


@pytest.fixture(scope="module")
def long_tail():
    return np.random.default_rng(0).standard_t(df=2, size=50000)


class TestBounds:
    def test_absmax_is_max(self, long_tail):
        assert absmax_bound(long_tail, 8) == pytest.approx(np.abs(long_tail).max())

    def test_percentile_below_max(self, long_tail):
        assert percentile_bound(long_tail, 8, 99.9) < absmax_bound(long_tail, 8)

    def test_mse_bound_clips_heavy_tails(self, long_tail):
        assert mse_bound(long_tail, 4) < absmax_bound(long_tail, 4)

    def test_kl_bound_within_range(self, long_tail):
        bound = kl_bound(long_tail, 8)
        assert 0 < bound <= np.abs(long_tail).max() * 1.001

    def test_degenerate_inputs(self):
        for fn in (absmax_bound, percentile_bound, mse_bound, kl_bound):
            assert fn(np.zeros(10), 8) > 0
            assert fn(np.array([]), 8) > 0

    @pytest.mark.parametrize(
        "data",
        [
            np.full(64, 3.5),  # constant
            np.full(64, -2.0),  # constant negative
            np.full(64, 1e-300),  # denormal-scale constant
            np.array([np.inf, -np.inf, np.nan, 1.0, -1.0] * 8),  # non-finite mix
            np.array([np.inf] * 16),  # all non-finite
            np.array([np.nan] * 16),
        ],
        ids=["constant", "negative", "denormal", "mixed", "all-inf", "all-nan"],
    )
    def test_hostile_inputs_yield_positive_finite_bounds(self, data):
        """Calibration on degenerate data must never produce a zero, NaN,
        or infinite bound (a zero bound would divide the quantizer's step
        computation by zero; an Inf bound would silently disable it)."""
        import warnings

        for fn in (absmax_bound, percentile_bound, mse_bound, kl_bound):
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # div-by-zero etc. are bugs
                bound = fn(data, 8)
            assert np.isfinite(bound) and bound > 0, (fn.__name__, bound)

    def test_finite_values_dominate_nonfinite_neighbours(self):
        # An Inf outlier must not drag the bound to Inf: the finite mass
        # defines the range.
        data = np.concatenate([np.random.default_rng(0).normal(size=1000),
                               [np.inf, -np.inf, np.nan]])
        for fn in (absmax_bound, percentile_bound, mse_bound, kl_bound):
            bound = fn(data, 8)
            assert np.isfinite(bound)
            assert bound <= np.abs(data[np.isfinite(data)]).max() * 1.001

    def test_calibrated_uniform_survives_hostile_inputs(self):
        for data in (np.zeros(32), np.full(32, np.inf), np.full(32, 1e-300)):
            for strategy in sorted(CALIBRATION_STRATEGIES):
                quantizer = calibrated_uniform(data, 6, strategy)
                out = quantizer.fake_quantize(np.zeros(8))
                assert np.isfinite(out).all()


class TestCalibratedUniform:
    def test_absmax_matches_default_fit(self, long_tail):
        via_strategy = calibrated_uniform(long_tail, 8, "absmax")
        via_fit = UniformQuantizer(8).fit(long_tail)
        assert via_strategy.delta == pytest.approx(via_fit.delta)

    @pytest.mark.parametrize("strategy", sorted(CALIBRATION_STRATEGIES))
    def test_all_strategies_produce_working_quantizer(self, long_tail, strategy):
        quantizer = calibrated_uniform(long_tail, 6, strategy)
        out = quantizer.fake_quantize(long_tail)
        assert out.shape == long_tail.shape
        assert np.isfinite(out).all()

    def test_clipping_strategies_beat_absmax_on_heavy_tails(self, long_tail):
        # MSE/percentile help at low precision; KL (which matches the
        # distribution rather than the squared error) at higher precision.
        base4 = mse(long_tail, calibrated_uniform(long_tail, 4, "absmax").fake_quantize(long_tail))
        for strategy in ("mse", "percentile"):
            err = mse(
                long_tail,
                calibrated_uniform(long_tail, 4, strategy).fake_quantize(long_tail),
            )
            assert err < base4
        # KL optimizes distribution match, not MSE: assert its structural
        # behaviour instead — it clips, but only a small mass fraction.
        bound = kl_bound(long_tail, 8)
        assert bound < absmax_bound(long_tail, 8)
        clipped_fraction = float(np.mean(np.abs(long_tail) > bound))
        assert clipped_fraction < 0.15

    def test_unknown_strategy_rejected(self, long_tail):
        with pytest.raises(ValueError):
            calibrated_uniform(long_tail, 8, "entropy2")
