"""Property tests: the fast fake-quantization path equals the code path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erf

from repro.quant import QUQQuantizer
from repro.quant.quq import fake_quantize_with_params, quantize_with_params


def _sample(kind: str, seed: int, size: int = 3000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if kind == "long_tail":
        return rng.standard_t(df=2.5, size=size) * rng.uniform(1e-3, 10)
    if kind == "gauss":
        return rng.normal(size=size) * rng.uniform(1e-3, 10)
    if kind == "nonneg":
        return np.abs(rng.standard_t(df=3, size=size))
    if kind == "nonpos":
        return -np.abs(rng.standard_t(df=3, size=size))
    g = rng.normal(size=size)
    return g * 0.5 * (1 + erf(g / np.sqrt(2)))  # gelu


class TestFastPathEquivalence:
    @given(
        st.sampled_from(["long_tail", "gauss", "nonneg", "nonpos", "gelu"]),
        st.integers(0, 10_000),
        st.sampled_from([4, 6, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_code_path(self, kind, seed, bits):
        x = _sample(kind, seed)
        params = QUQQuantizer(bits).fit(x).params
        slow = quantize_with_params(x, params).dequantize()
        fast = fake_quantize_with_params(x, params)
        np.testing.assert_allclose(fast, slow, atol=1e-6, rtol=1e-6)

    def test_preserves_dtype_and_shape(self):
        x = np.random.default_rng(0).normal(size=(7, 9)).astype(np.float32)
        params = QUQQuantizer(6).fit(x).params
        out = fake_quantize_with_params(x, params)
        assert out.dtype == np.float32
        assert out.shape == (7, 9)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_projection_property(self, seed):
        x = _sample("long_tail", seed)
        params = QUQQuantizer(6).fit(x).params
        once = fake_quantize_with_params(x, params)
        np.testing.assert_allclose(
            fake_quantize_with_params(once, params), once, atol=1e-6
        )
