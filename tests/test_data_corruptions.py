"""Tests for the SynthShapes-C corruption suite.

The golden digests pin byte-exact determinism of the renderer and every
corruption op at every severity: any change to the seeded RNG streams,
the op order in ``CORRUPTIONS``, or the op math shows up here as a hash
mismatch instead of silently invalidating previously published sweeps.
"""

import numpy as np
import pytest

from repro.data import (
    CORRUPTIONS,
    SEVERITIES,
    corrupt_dataset,
    corrupt_images,
    corrupt_pixels,
    denormalize,
    generate,
    images_digest,
    synthshapes_c,
)

# SHA-256 prefixes of the float32 image bytes (see images_digest).
GENERATE_16_16_3 = "115abecfde2ffe87"
GENERATE_8_32_0 = "d8b38a2e70e12449"

CORRUPTION_DIGESTS = {
    ("gaussian_noise", 1): "bdb32dbc17c44191",
    ("gaussian_noise", 2): "711b350a518fa2ca",
    ("gaussian_noise", 3): "10e01ca8670bc7aa",
    ("gaussian_noise", 4): "65548b59be52878c",
    ("gaussian_noise", 5): "ac8af9d65e6c12e2",
    ("impulse_noise", 1): "b250da234a101027",
    ("impulse_noise", 2): "3843dcb179106788",
    ("impulse_noise", 3): "7b473a736805654a",
    ("impulse_noise", 4): "52c2bcdfbd247a1f",
    ("impulse_noise", 5): "2b03cd04fadd2b14",
    ("blur", 1): "ef98f85533a467bd",
    ("blur", 2): "4327e7634157c936",
    ("blur", 3): "276c67a01e0ce965",
    ("blur", 4): "a97dfadd3437cacd",
    ("blur", 5): "dcc2556299191b69",
    ("brightness", 1): "b0c213235642b2f2",
    ("brightness", 2): "c5da002d3694d79e",
    ("brightness", 3): "a660c5f6c4609a46",
    ("brightness", 4): "240a308d6ea00e59",
    ("brightness", 5): "3173ab88dc3f65bd",
    ("contrast", 1): "3f9e3c8a6b9c47c2",
    ("contrast", 2): "67a64b5b1de17d33",
    ("contrast", 3): "a01121ec0cfc26f5",
    ("contrast", 4): "6d33d22981024f3b",
    ("contrast", 5): "97ee48076447353d",
    ("occlusion", 1): "c63e8b2eb15b1006",
    ("occlusion", 2): "96c55e229dc1db13",
    ("occlusion", 3): "ed43a7c0cb87adaa",
    ("occlusion", 4): "60eba6111cf77e81",
    ("occlusion", 5): "62e371b48af3ddf6",
    ("saturate", 1): "00ac94128ef6a5d2",
    ("saturate", 2): "a04782f22da6e22f",
    ("saturate", 3): "f197ebdd06ba2291",
    ("saturate", 4): "91125b3c4e599671",
    ("saturate", 5): "7f0eb11cfb7fc43d",
}


@pytest.fixture(scope="module")
def small_set():
    return generate(16, 16, seed=3)


class TestGoldenDigests:
    def test_generator_is_pinned(self, small_set):
        assert images_digest(small_set.images)[:16] == GENERATE_16_16_3
        assert images_digest(generate(8, 32, seed=0).images)[:16] == GENERATE_8_32_0

    def test_digest_table_covers_the_whole_suite(self):
        assert set(CORRUPTION_DIGESTS) == {
            (name, severity) for name in CORRUPTIONS for severity in SEVERITIES
        }

    @pytest.mark.parametrize(
        "name,severity", sorted(CORRUPTION_DIGESTS), ids=lambda v: str(v)
    )
    def test_each_op_is_pinned(self, small_set, name, severity):
        corrupted = corrupt_images(small_set.images, name, severity, seed=0)
        assert images_digest(corrupted)[:16] == CORRUPTION_DIGESTS[(name, severity)]


class TestCorruptionProperties:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_deterministic_and_effective(self, small_set, name):
        first = corrupt_images(small_set.images, name, 3, seed=0)
        again = corrupt_images(small_set.images, name, 3, seed=0)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, small_set.images)
        other_seed = corrupt_images(small_set.images, name, 3, seed=1)
        if name not in ("brightness", "contrast", "saturate", "blur"):
            # Stochastic ops draw from the seeded stream; photometric ops
            # and blur are deliberately seed-independent transforms.
            assert not np.array_equal(first, other_seed)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_severity_is_monotone_in_distortion(self, small_set, name):
        distortion = [
            float(np.mean(np.abs(
                corrupt_images(small_set.images, name, severity, seed=0)
                - small_set.images
            )))
            for severity in SEVERITIES
        ]
        assert distortion[0] < distortion[-1]

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_pixel_space_stays_in_unit_range(self, small_set, name):
        pixels = denormalize(small_set.images)
        corrupted = corrupt_pixels(pixels, name, 5, seed=0)
        assert corrupted.min() >= 0.0 and corrupted.max() <= 1.0
        assert np.isfinite(corrupted).all()

    def test_corrupt_dataset_shares_labels(self, small_set):
        corrupted = corrupt_dataset(small_set, "impulse_noise", 4, seed=0)
        np.testing.assert_array_equal(corrupted.labels, small_set.labels)
        assert corrupted.images.shape == small_set.images.shape
        assert corrupted.images.dtype == np.float32

    def test_synthshapes_c_builds_the_full_grid(self, small_set):
        suite = synthshapes_c(small_set, severities=(1, 3))
        assert set(suite) == {(n, s) for n in CORRUPTIONS for s in (1, 3)}
        for split in suite.values():
            np.testing.assert_array_equal(split.labels, small_set.labels)

    def test_unknown_op_and_severity_rejected(self, small_set):
        with pytest.raises(ValueError, match="corruption"):
            corrupt_images(small_set.images, "fog", 3)
        with pytest.raises(ValueError, match="severity"):
            corrupt_images(small_set.images, "blur", 6)
        with pytest.raises(ValueError):
            corrupt_pixels(small_set.images[0], "blur", 3)  # not (N,H,W,3)
