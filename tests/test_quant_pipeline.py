"""Tests for tap classification, QuantEnv and the PTQ pipeline."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.quant import (
    METHODS,
    PTQPipeline,
    QuantEnv,
    TapKind,
    UniformQuantizer,
    classify_tap,
    hessian_refine,
    make_quantizer,
    taps_for_coverage,
)
from repro.quant.baselines.fqvit import Log2Quantizer
from repro.quant.baselines.ptq4vit import TwinUniformQuantizer
from repro.quant.uniform import RowwiseUniformQuantizer
from repro.training import evaluate_top1
from repro import quantize_model


class TestTapClassification:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("m.blocks.0.attn.qkv.weight", TapKind.WEIGHT),
            ("m.blocks.0.attn.qkv.input", TapKind.GEMM_INPUT),
            ("m.blocks.0.attn.q", TapKind.GEMM_INPUT),
            ("m.blocks.0.attn.probs", TapKind.GEMM_INPUT),
            ("m.blocks.0.attn.scores", TapKind.SOFTMAX_INPUT),
            ("m.blocks.0.mlp.act.input", TapKind.GELU_INPUT),
            ("m.final_norm_input", TapKind.NORM_INPUT),
            ("m.merges.0.merge_norm_input", TapKind.NORM_INPUT),
            ("m.blocks.0.block_input", TapKind.RESIDUAL),
            ("m.blocks.0.attn_residual", TapKind.RESIDUAL),
            ("m.head.input", TapKind.GEMM_INPUT),
        ],
    )
    def test_classification(self, name, kind):
        assert classify_tap(name) is kind

    def test_unknown_tap_rejected(self):
        with pytest.raises(ValueError):
            classify_tap("m.unknown_tap")

    def test_partial_coverage_is_gemm_only(self):
        assert taps_for_coverage(TapKind.WEIGHT, "partial")
        assert taps_for_coverage(TapKind.GEMM_INPUT, "partial")
        assert not taps_for_coverage(TapKind.SOFTMAX_INPUT, "partial")
        assert not taps_for_coverage(TapKind.RESIDUAL, "partial")

    def test_full_coverage_covers_everything(self):
        assert all(taps_for_coverage(kind, "full") for kind in TapKind)

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            taps_for_coverage(TapKind.WEIGHT, "half")


class TestQuantEnv:
    def test_observe_records_copies(self):
        env = QuantEnv()
        env.phase = "observe"
        value = Tensor(np.ones((2, 3), dtype=np.float32))
        env.tap("a", value)
        value.data[:] = 7.0
        np.testing.assert_allclose(env.observed("a"), np.ones(6))

    def test_quantize_phase_applies_quantizer(self, rng):
        env = QuantEnv()
        env.phase = "quantize"
        env.quantizers["a"] = UniformQuantizer(4).fit(rng.normal(size=100))
        x = Tensor(rng.normal(size=(5,)).astype(np.float32))
        out = env.tap("a", x)
        assert not np.allclose(out.data, x.data)

    def test_unregistered_tap_passthrough(self, rng):
        env = QuantEnv()
        env.phase = "quantize"
        x = Tensor(rng.normal(size=(5,)).astype(np.float32))
        assert env.tap("unseen", x) is x

    def test_watch_filter(self):
        env = QuantEnv()
        env.phase = "observe"
        env.watched = {"a"}
        env.tap("b", Tensor(np.ones(3)))
        with pytest.raises(KeyError):
            env.observed("b")

    def test_grad_capture(self):
        env = QuantEnv()
        env.phase = "observe"
        env.capture_grads = True
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = env.tap("a", x)
        (out * 2.0).backward()
        np.testing.assert_allclose(env.observed_gradients("a"), [2.0, 2.0, 2.0])


class TestMakeQuantizer:
    def test_method_specific_choices(self):
        assert isinstance(
            make_quantizer("fqvit", TapKind.WEIGHT, "m.qkv.weight", 6),
            RowwiseUniformQuantizer,
        )
        assert isinstance(
            make_quantizer("fqvit", TapKind.GEMM_INPUT, "m.attn.probs", 6),
            Log2Quantizer,
        )
        assert isinstance(
            make_quantizer("ptq4vit", TapKind.GEMM_INPUT, "m.attn.probs", 6),
            TwinUniformQuantizer,
        )
        assert isinstance(
            make_quantizer("ptq4vit", TapKind.GEMM_INPUT, "m.mlp.fc2.input", 6),
            TwinUniformQuantizer,
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_quantizer("awq", TapKind.WEIGHT, "w", 6)


class TestPTQPipeline:
    @pytest.mark.parametrize("method", METHODS)
    def test_calibrate_all_methods(self, method, tiny_trained, calib_images, tiny_data):
        pipeline = PTQPipeline(tiny_trained, method=method, bits=8, coverage="full")
        pipeline.calibrate(calib_images)
        assert pipeline.calibrated
        assert len(pipeline.tap_names()) > 10
        _, val_set = tiny_data
        acc = evaluate_top1(tiny_trained, val_set)
        assert acc > 15.0  # 8-bit must stay far above the 10% chance level
        pipeline.detach()

    def test_partial_covers_fewer_taps(self, tiny_trained, calib_images):
        full = PTQPipeline(tiny_trained, "baseq", 8, "full").calibrate(calib_images)
        n_full = len(full.tap_names())
        full.detach()
        partial = PTQPipeline(tiny_trained, "baseq", 8, "partial").calibrate(calib_images)
        n_partial = len(partial.tap_names())
        partial.detach()
        assert n_partial < n_full
        assert all(
            classify_tap(n) in (TapKind.WEIGHT, TapKind.GEMM_INPUT)
            for n in partial.tap_names()
        )

    def test_detach_restores_float(self, tiny_trained, calib_images, tiny_data):
        _, val_set = tiny_data
        reference = evaluate_top1(tiny_trained, val_set)
        pipeline = PTQPipeline(tiny_trained, "baseq", 4, "full").calibrate(calib_images)
        quantized = evaluate_top1(tiny_trained, val_set)
        pipeline.detach()
        restored = evaluate_top1(tiny_trained, val_set)
        assert restored == pytest.approx(reference)
        assert quantized != pytest.approx(reference)

    def test_attach_after_detach(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "baseq", 6, "full").calibrate(calib_images)
        pipeline.detach()
        pipeline.attach()
        assert pipeline.env.phase == "quantize"
        pipeline.detach()

    def test_invalid_args_rejected(self, tiny_trained):
        with pytest.raises(ValueError):
            PTQPipeline(tiny_trained, method="gptq")
        with pytest.raises(ValueError):
            PTQPipeline(tiny_trained, coverage="most")

    def test_average_bits_accounting(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "fqvit", 6, "full").calibrate(calib_images)
        # Row-wise weights push the average above the nominal bit-width.
        assert pipeline.average_bits_per_element() > 6.0
        pipeline.detach()

    def test_quantizer_for_unknown_tap(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "baseq", 6, "full").calibrate(calib_images)
        with pytest.raises(KeyError):
            pipeline.quantizer_for("nonexistent")
        pipeline.detach()

    def test_quantizer_for_suggests_nearest_taps(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "baseq", 6, "full").calibrate(calib_images)
        existing = pipeline.tap_names()[0]
        with pytest.raises(KeyError) as excinfo:
            pipeline.quantizer_for(existing + "x")  # near miss
        message = str(excinfo.value)
        assert "nearest taps" in message and existing in message
        pipeline.detach()

    def test_calibrate_is_idempotent(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "baseq", 6, "full")
        pipeline.calibrate(calib_images)
        first = {n: pipeline.quantizer_for(n).delta for n in pipeline.tap_names()}
        pipeline.calibrate(calib_images)
        second = {n: pipeline.quantizer_for(n).delta for n in pipeline.tap_names()}
        assert first == second  # same data -> identical refit
        assert not pipeline.env.records  # observations cleared
        # Every quantizer object was replaced, not reused.
        pipeline.env.quantizers[pipeline.tap_names()[0]].delta = -1.0
        pipeline.calibrate(calib_images)
        third = {n: pipeline.quantizer_for(n).delta for n in pipeline.tap_names()}
        assert third == first
        pipeline.detach()


class TestHessianRefine:
    def test_refine_returns_alpha_per_tap(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "quq", 6, "full").calibrate(calib_images)
        chosen = hessian_refine(pipeline, calib_images)
        assert set(chosen) == set(pipeline.tap_names())
        assert all(0.4 <= a <= 1.3 for a in chosen.values())
        pipeline.detach()

    def test_refine_requires_calibration(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, "quq", 6, "full")
        with pytest.raises(RuntimeError):
            hessian_refine(pipeline, calib_images)

    def test_refine_does_not_hurt_low_bit_accuracy(
        self, tiny_trained, calib_images, tiny_data
    ):
        _, val_set = tiny_data
        pipeline = PTQPipeline(tiny_trained, "baseq", 4, "full").calibrate(calib_images)
        before = evaluate_top1(tiny_trained, val_set.subset(64, seed=0))
        hessian_refine(pipeline, calib_images)
        after = evaluate_top1(tiny_trained, val_set.subset(64, seed=0))
        pipeline.detach()
        assert after >= before - 5.0  # refinement must not collapse accuracy


class TestQuantizeModelAPI:
    def test_end_to_end(self, tiny_trained, calib_images, tiny_data):
        _, val_set = tiny_data
        pipeline = quantize_model(
            tiny_trained, calib_images, method="quq", bits=8, coverage="full"
        )
        acc = evaluate_top1(tiny_trained, val_set)
        pipeline.detach()
        assert acc > 15.0
